#![warn(missing_docs)]

//! # inplane-isl
//!
//! Meta-crate for the reproduction of *"Optimizing and Auto-Tuning
//! Iterative Stencil Loops for GPUs with the In-Plane Method"* (Tang et
//! al., IPPS 2013). Re-exports the public API of every workspace crate so
//! downstream users (and the examples and integration tests in this
//! repository) need a single dependency.
//!
//! ## Crate map
//!
//! * [`grid`] — 3-D grids, the star stencil of Eqn (1), CPU references.
//! * [`sim`] — the deterministic GPU execution/timing simulator standing
//!   in for the GTX580 / GTX680 / Tesla C2070 hardware.
//! * [`core`] — the paper's contribution: forward-plane (*nvstencil*) and
//!   in-plane kernel variants, register tiling, vector-load planning.
//! * [`autotune`] — exhaustive and model-based (Eqns 6–14) auto-tuning.
//! * [`apps`] — the six application stencils of Table V.
//! * [`codegen`] — CUDA C source generation for the tuned kernels.
//! * [`temporal`] — the 3.5-D temporal-blocking baseline (§II/§V-B).
//! * [`multigpu`] — z-slab domain decomposition with halo exchange.
//!
//! ## Quickstart
//!
//! ```
//! use inplane_isl::prelude::*;
//!
//! // A 4th-order single-precision stencil on a small grid, tuned and run
//! // on the simulated GTX580.
//! let device = DeviceSpec::gtx580();
//! let stencil = StarStencil::<f32>::from_order(4);
//! let kernel = KernelSpec::inplane(Variant::FullSlice, &stencil);
//! let config = LaunchConfig::new(32, 4, 1, 4);
//! let report = simulate_star_kernel(&device, &kernel, &config, GridDims::new(64, 64, 32));
//! assert!(report.mpoints_per_s() > 0.0);
//! ```

pub use gpu_sim as sim;
pub use inplane_core as core;
pub use stencil_apps as apps;
pub use stencil_autotune as autotune;
pub use stencil_codegen as codegen;
pub use stencil_grid as grid;
pub use stencil_multigpu as multigpu;
pub use stencil_temporal as temporal;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use gpu_sim::{DeviceSpec, GridDims, SimOptions};
    pub use inplane_core::{
        simulate_star_kernel, CacheStats, EvalContext, KernelSpec, LaunchConfig, Method, PlanKey,
        Variant,
    };
    pub use stencil_autotune::{exhaustive_tune, model_based_tune, ParameterSpace, TuneOutcome};
    pub use stencil_grid::{
        apply_reference, iterate_stencil_loop, Boundary, FillPattern, Grid3, Precision, Real,
        StarStencil,
    };
}
