//! Physics validation: the emulated kernels don't just match the CPU
//! reference — the simulations they run obey the PDEs' analytic
//! behaviour. This is the level of checking a scientific user applies
//! before trusting a stencil library.

use inplane_isl::core::execute_step;
use inplane_isl::core::Method;
use inplane_isl::prelude::*;
use stencil_grid::total;

/// Diffusion of a sine mode decays geometrically with the stencil's
/// eigenvalue for that mode.
#[test]
fn diffusion_eigenmode_decays_at_the_analytic_rate() {
    use std::f64::consts::PI;
    let n = 32usize;
    let stencil = StarStencil::<f64>::diffusion(1);
    // Eigenfunction of the periodic operator; with Dirichlet ring the
    // interior still tracks the eigenvalue for several steps.
    let initial: Grid3<f64> = FillPattern::SineProduct {
        fx: 1.0,
        fy: 1.0,
        fz: 1.0,
    }
    .build(n, n, n);
    // Eigenvalue of c0 + c1 * (2cos kx + 2cos ky + 2cos kz) at k = 2π/n.
    let k = 2.0 * PI / n as f64;
    let lambda = 0.5 + (0.5 / 6.0) * (2.0 * k.cos()) * 3.0;

    let config = LaunchConfig::new(16, 8, 1, 1);
    let steps = 4;
    let (out, _) = iterate_stencil_loop(initial.clone(), 1, steps, |inp, o| {
        execute_step(
            Method::InPlane(Variant::FullSlice),
            &stencil,
            &config,
            inp,
            o,
            Boundary::CopyInput,
        );
    });
    // Probe deep interior points (away from the Dirichlet ring).
    let probe = [(n / 4, n / 4, n / 4), (n / 4 + 3, n / 2 - 5, n / 4 + 2)];
    for (i, j, k3) in probe {
        let expect = initial.get(i, j, k3) * lambda.powi(steps as i32);
        let got = out.get(i, j, k3);
        assert!(
            (got - expect).abs() < 0.02 * initial.get(i, j, k3).abs().max(0.05),
            "({i},{j},{k3}): got {got:.5}, analytic {expect:.5}"
        );
    }
}

/// Diffusion with an insulated interior conserves total heat up to
/// boundary leakage; with the pulse far from the boundary, leakage over
/// a few steps is negligible.
#[test]
fn diffusion_conserves_mass_before_boundary_contact() {
    let n = 40usize;
    let stencil = StarStencil::<f64>::diffusion(1);
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 1.0,
        sigma: 0.05,
    }
    .build(n, n, n);
    let mass0 = total(&initial);
    let config = LaunchConfig::new(8, 8, 1, 2);
    let (out, _) = iterate_stencil_loop(initial, 1, 5, |inp, o| {
        execute_step(
            Method::ForwardPlane,
            &stencil,
            &config,
            inp,
            o,
            Boundary::CopyInput,
        );
    });
    let mass1 = total(&out);
    assert!(
        (mass1 - mass0).abs() < 1e-6 * mass0.abs().max(1.0),
        "mass {mass0:.6} -> {mass1:.6}"
    );
}

/// The diffusion operator satisfies a discrete maximum principle:
/// iterating never creates new extrema in the interior.
#[test]
fn diffusion_maximum_principle() {
    let n = 20usize;
    let stencil = StarStencil::<f64>::diffusion(2);
    let initial: Grid3<f64> = FillPattern::Random {
        lo: -1.0,
        hi: 1.0,
        seed: 31,
    }
    .build(n, n, n);
    let config = LaunchConfig::new(8, 4, 1, 1);
    let mut grid = initial;
    let mut out = Grid3::new(n, n, n);
    for _ in 0..6 {
        let before_max = grid.iter_logical().map(|(_, v)| v).fold(f64::MIN, f64::max);
        let before_min = grid.iter_logical().map(|(_, v)| v).fold(f64::MAX, f64::min);
        execute_step(
            Method::InPlane(Variant::Horizontal),
            &stencil,
            &config,
            &grid,
            &mut out,
            Boundary::CopyInput,
        );
        let after_max = out.iter_logical().map(|(_, v)| v).fold(f64::MIN, f64::max);
        let after_min = out.iter_logical().map(|(_, v)| v).fold(f64::MAX, f64::min);
        assert!(
            after_max <= before_max + 1e-12,
            "max grew: {before_max} -> {after_max}"
        );
        assert!(
            after_min >= before_min - 1e-12,
            "min fell: {before_min} -> {after_min}"
        );
        std::mem::swap(&mut grid, &mut out);
    }
}

/// Both method families produce the same physics: the decay of a pulse's
/// peak matches between forward-plane and in-plane runs to rounding.
#[test]
fn methods_agree_on_long_horizons() {
    let n = 24usize;
    let stencil = StarStencil::<f64>::diffusion(1);
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 50.0,
        sigma: 0.1,
    }
    .build(n, n, n);
    let config = LaunchConfig::new(8, 8, 1, 1);
    let run = |method| {
        let (g, _) = iterate_stencil_loop(initial.clone(), 1, 25, |inp, o| {
            execute_step(method, &stencil, &config, inp, o, Boundary::CopyInput);
        });
        g
    };
    let fwd = run(Method::ForwardPlane);
    let inp = run(Method::InPlane(Variant::Vertical));
    assert!(stencil_grid::max_abs_diff(&fwd, &inp) < 1e-9);
    // And the physics happened: the pulse decayed substantially.
    let peak = |g: &Grid3<f64>| g.iter_logical().map(|(_, v)| v).fold(f64::MIN, f64::max);
    assert!(peak(&fwd) < 0.5 * 50.0);
}
