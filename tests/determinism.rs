//! Reproducibility: the whole stack is a pure function of its inputs —
//! two runs of any experiment produce identical results, and different
//! seeds only perturb within the declared noise amplitude.

use inplane_isl::core::simulate::measure_kernel;
use inplane_isl::core::Method;
use inplane_isl::prelude::*;
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;

fn kernel() -> KernelSpec {
    KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single)
}

#[test]
fn simulation_is_deterministic() {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let c = LaunchConfig::new(64, 4, 1, 2);
    let a = simulate_star_kernel(&dev, &kernel(), &c, dims);
    let b = simulate_star_kernel(&dev, &kernel(), &c, dims);
    assert_eq!(a, b);
}

#[test]
fn measurement_noise_is_seeded_not_random() {
    let dev = DeviceSpec::gtx680();
    let dims = GridDims::paper();
    let c = LaunchConfig::new(64, 4, 1, 2);
    let t1 = measure_kernel(&dev, &kernel(), &c, dims, 42).time_s;
    let t2 = measure_kernel(&dev, &kernel(), &c, dims, 42).time_s;
    assert_eq!(t1, t2);
    let t3 = measure_kernel(&dev, &kernel(), &c, dims, 43).time_s;
    assert_ne!(t1, t3, "different seeds should jitter");
    assert!(
        (t3 / t1 - 1.0).abs() < 0.025,
        "jitter bounded by noise amplitude"
    );
}

#[test]
fn tuning_outcome_is_reproducible() {
    let dev = DeviceSpec::c2070();
    let dims = GridDims::new(256, 256, 32);
    let k = kernel();
    let space = ParameterSpace::quick_space(&dev, &k, &dims);
    let a = exhaustive_tune(&dev, &k, dims, &space, 5);
    let b = exhaustive_tune(&dev, &k, dims, &space, 5);
    assert_eq!(a.best, b.best);
    assert_eq!(a.samples, b.samples);
    let ma = model_based_tune(&dev, &k, dims, &space, 5.0, 5);
    let mb = model_based_tune(&dev, &k, dims, &space, 5.0, 5);
    assert_eq!(ma, mb);
}

#[test]
fn functional_execution_is_deterministic() {
    use inplane_isl::core::execute_step;
    let stencil = StarStencil::<f32>::from_order(4);
    let input: Grid3<f32> = FillPattern::Random {
        lo: -1.0,
        hi: 1.0,
        seed: 9,
    }
    .build(16, 16, 16);
    let c = LaunchConfig::new(8, 4, 1, 1);
    let mut a = Grid3::new(16, 16, 16);
    let mut b = Grid3::new(16, 16, 16);
    execute_step(
        Method::InPlane(Variant::Vertical),
        &stencil,
        &c,
        &input,
        &mut a,
        Boundary::CopyInput,
    );
    execute_step(
        Method::InPlane(Variant::Vertical),
        &stencil,
        &c,
        &input,
        &mut b,
        Boundary::CopyInput,
    );
    assert_eq!(a, b);
}
