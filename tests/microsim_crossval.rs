//! Cross-validation: the analytic timing engine versus the event-driven
//! microsimulator, on the *actual* kernel plans of the evaluation. The
//! analytic engine drives the auto-tuner; this test is the evidence that
//! its closed-form plane costs track a mechanistic execution model.

use gpu_sim::{simulate_block_plane, DeviceSpec, GridDims};
use inplane_isl::core::simulate::build_block_plan;
use inplane_isl::core::Method;
use inplane_isl::prelude::*;
use stencil_grid::Precision;

fn plans() -> Vec<(String, gpu_sim::BlockPlan)> {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let mut out = Vec::new();
    for (method, label) in [
        (Method::ForwardPlane, "nvstencil"),
        (Method::InPlane(Variant::FullSlice), "full-slice"),
        (Method::InPlane(Variant::Vertical), "vertical"),
    ] {
        for order in [2usize, 8] {
            for config in [
                LaunchConfig::new(64, 8, 1, 1),
                LaunchConfig::new(128, 4, 1, 2),
            ] {
                let spec = KernelSpec::star_order(method, order, Precision::Single);
                out.push((
                    format!("{label} order {order} at {config}"),
                    build_block_plan(&dev, &spec, &config, dims),
                ));
            }
        }
    }
    out
}

#[test]
fn analytic_engine_tracks_the_microsim_on_real_plans() {
    let dev = DeviceSpec::gtx580();
    for (label, plan) in plans() {
        for resident in [1usize, 3] {
            let micro = simulate_block_plane(&dev, &plan, resident);
            let (analytic, _) = gpu_sim::timing::plane_cycles(&dev, &plan, resident);
            let ratio = micro.cycles / analytic;
            assert!(
                (0.4..3.0).contains(&ratio),
                "{label}, {resident} resident: microsim {:.0} vs analytic {analytic:.0} (ratio {ratio:.2})",
                micro.cycles
            );
        }
    }
}

#[test]
fn both_models_rank_full_slice_above_nvstencil() {
    // The ranking that drives every conclusion in the paper must not
    // depend on which of our two execution models is asked.
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let config = LaunchConfig::new(128, 4, 1, 2);
    let plan_of = |method| {
        let spec = KernelSpec::star_order(method, 2, Precision::Single);
        build_block_plan(&dev, &spec, &config, dims)
    };
    let nv = plan_of(Method::ForwardPlane);
    let fs = plan_of(Method::InPlane(Variant::FullSlice));
    let micro_nv = simulate_block_plane(&dev, &nv, 3).cycles;
    let micro_fs = simulate_block_plane(&dev, &fs, 3).cycles;
    assert!(
        micro_fs < micro_nv,
        "microsim: full-slice {micro_fs:.0} must beat nvstencil {micro_nv:.0}"
    );
    let (ana_nv, _) = gpu_sim::timing::plane_cycles(&dev, &nv, 3);
    let (ana_fs, _) = gpu_sim::timing::plane_cycles(&dev, &fs, 3);
    assert!(ana_fs < ana_nv, "analytic: full-slice must beat nvstencil");
}

#[test]
fn microsim_byte_counts_match_the_plan() {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let spec = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let plan = build_block_plan(&dev, &spec, &LaunchConfig::new(64, 8, 1, 1), dims);
    let micro = simulate_block_plane(&dev, &plan, 2);
    let mut ctr = gpu_sim::MemCounters::default();
    ctr.record_all(&plan.plane.loads, dev.segment_bytes);
    ctr.record_all(&plan.plane.stores, dev.segment_bytes);
    assert!((micro.mem_bytes - 2.0 * ctr.transferred_bytes as f64).abs() < 1e-6);
}
