//! Smoke tests for every table/figure experiment entry point (quick
//! mode): the binaries' library backends must run to completion and
//! produce structurally valid output.

use stencil_bench::exp;
use stencil_bench::RunOpts;

fn quick() -> RunOpts {
    RunOpts {
        quick: true,
        seed: 1,
        csv_dir: None,
        tune_store: None,
    }
}

#[test]
fn table1_and_table2_are_exact() {
    assert_eq!(exp::table1::compute(), exp::table1::PAPER.to_vec());
    assert_eq!(exp::table2::compute(), exp::table2::PAPER.to_vec());
    assert!(!exp::table1::render().is_empty());
    assert!(!exp::table2::render().is_empty());
}

#[test]
fn table3_runs() {
    let rows = exp::table3::compute();
    assert_eq!(rows.len(), 3);
    assert!(!exp::table3::render().is_empty());
}

#[test]
fn fig7_runs() {
    let cells = exp::fig7::compute(&quick());
    assert_eq!(cells.len(), 18);
    assert_eq!(exp::fig7::render(&cells).len(), 18);
}

#[test]
fn fig8_runs() {
    let panels = exp::fig8::compute(&quick());
    assert_eq!(panels.len(), 2);
    for p in &panels {
        assert_eq!(p.points.len(), 16);
        assert!(p.peak().mpoints > 0.0);
    }
}

#[test]
fn table4_runs() {
    let cells = exp::table4::compute(&quick());
    assert_eq!(cells.len(), 2 * 6 * 3); // precisions x orders x devices
    assert!(cells.iter().all(|c| c.mpoints > 0.0));
    assert!(!exp::table4::render(&cells).is_empty());
}

#[test]
fn fig9_runs() {
    let cells = exp::fig9::compute(&quick());
    assert_eq!(cells.len(), 18);
}

#[test]
fn fig10_runs() {
    let cells = exp::fig10::compute(&quick());
    assert_eq!(cells.len(), 18);
    let (total, from_fs, from_rb) = exp::fig10::summary(&cells);
    assert!(total > 0.0 && from_fs.is_finite() && from_rb.is_finite());
}

#[test]
fn fig11_runs() {
    let results = exp::fig11::compute(&quick());
    assert_eq!(results.len(), 6); // 3 devices x 2 precisions
    for r in &results {
        assert_eq!(r.apps.len(), 6);
    }
}

#[test]
fn fig12_runs() {
    let cells = exp::fig12::compute(&quick(), 5.0);
    assert_eq!(cells.len(), 18);
    let (mean, worst) = exp::fig12::gap_stats(&cells);
    assert!(mean >= 0.0 && worst >= mean);
}

#[test]
fn litcompare_runs() {
    let rows = exp::litcompare::compute(&quick());
    assert_eq!(rows.len(), 4);
}

#[test]
fn ablation_runs() {
    let rows = exp::ablation::compute(&quick());
    assert_eq!(rows.len(), 5);
    assert!(!exp::ablation::render(&rows).is_empty());
}

#[test]
fn temporal_comparison_runs() {
    let cells = exp::temporal_cmp::compute(&quick());
    assert_eq!(cells.len(), 3 * 5); // 3 orders x (in-plane + 4 depths)
    assert!(!exp::temporal_cmp::render(&cells).is_empty());
}

#[test]
fn csv_rendering_roundtrips_structure() {
    let t = exp::table1::render();
    let csv = t.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 7); // header + 6 orders
    assert!(lines[0].contains("Order"));
    assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
}
