//! End-to-end check of the memoizing evaluation pipeline: repeating a
//! full tuning sweep against a warm [`EvalContext`] must be dominated by
//! cache hits and dramatically faster than the cold sweep that populated
//! it, while returning bit-identical results.

use std::time::Instant;

use inplane_isl::autotune::{exhaustive_tune_with, ParameterSpace};
use inplane_isl::prelude::*;

#[test]
fn warm_sweep_is_cached_and_much_faster() {
    let dev = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
    let dims = GridDims::paper();
    let space = ParameterSpace::paper_space(&dev, &kernel, &dims);
    assert!(
        space.len() > 100,
        "need a non-trivial sweep, got {}",
        space.len()
    );

    let ctx = EvalContext::new();
    let t0 = Instant::now();
    let cold = exhaustive_tune_with(&ctx, &dev, &kernel, dims, &space, 42);
    let cold_time = t0.elapsed();
    let after_cold = ctx.stats();
    assert_eq!(after_cold.hits, 0, "a fresh context cannot hit");
    assert_eq!(after_cold.misses, space.len() as u64);

    // Warm repeats: same sweep, same seed. Best of three absorbs
    // scheduler jitter; correctness is asserted on every repeat.
    let mut warm_time = None;
    for _ in 0..3 {
        let t1 = Instant::now();
        let warm = exhaustive_tune_with(&ctx, &dev, &kernel, dims, &space, 42);
        let dt = t1.elapsed();
        warm_time = Some(warm_time.map_or(dt, |w: std::time::Duration| w.min(dt)));
        assert_eq!(warm.best.config, cold.best.config);
        assert_eq!(warm.best.mpoints.to_bits(), cold.best.mpoints.to_bits());
        for (a, b) in warm.samples.iter().zip(&cold.samples) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.mpoints.to_bits(), b.mpoints.to_bits());
        }
    }
    let warm_time = warm_time.unwrap();

    // The warm passes performed no new pricing work at all.
    let after_warm = ctx.stats();
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm sweeps must not miss"
    );
    assert_eq!(after_warm.inserts, after_cold.inserts);
    let warm_lookups =
        (after_warm.hits + after_warm.misses) - (after_cold.hits + after_cold.misses);
    let warm_hit_rate = (after_warm.hits - after_cold.hits) as f64 / warm_lookups as f64;
    assert!(warm_hit_rate > 0.95, "warm hit rate {warm_hit_rate:.3}");

    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64();
    assert!(
        speedup >= 5.0,
        "warm sweep only {speedup:.1}x faster (cold {cold_time:?}, warm {warm_time:?})"
    );
}
