//! End-to-end checks of the paper's headline claims, run on the full
//! evaluation grid (512×512×256) with reduced search spaces so the suite
//! stays fast.

use inplane_isl::prelude::*;
use inplane_isl::sim::measure_achieved_bandwidth;
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;

fn tune(dev: &DeviceSpec, kernel: &KernelSpec, dims: GridDims, register_blocking: bool) -> f64 {
    let space = ParameterSpace::quick_space(dev, kernel, &dims);
    let space = if register_blocking {
        space
    } else {
        ParameterSpace::from_configs(
            space
                .configs()
                .iter()
                .copied()
                .filter(|c| !c.has_register_blocking())
                .collect(),
        )
    };
    exhaustive_tune(dev, kernel, dims, &space, 1).best.mpoints
}

#[test]
fn abstract_claim_speedup_near_2x_exists() {
    // "Our results show that a speedup of nearly 2x can be achieved
    // compared to Nvidia's implementation."
    let dims = GridDims::paper();
    let mut best = 0.0f64;
    for dev in DeviceSpec::paper_devices() {
        let nv = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::ForwardPlane,
                2,
                Precision::Single,
            ),
            dims,
            false,
        );
        let fs = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::InPlane(Variant::FullSlice),
                2,
                Precision::Single,
            ),
            dims,
            true,
        );
        best = best.max(fs / nv);
    }
    assert!(
        best > 1.6,
        "best order-2 speedup {best:.2} should approach 2x"
    );
    assert!(best < 2.8, "speedup {best:.2} implausibly high");
}

#[test]
fn table4_gtx580_sp_absolute_rates_within_band() {
    // Tuned full-slice MPoint/s within ±40% of the paper's Table IV
    // values on GTX580 SP.
    let paper = [(2usize, 17294.0), (4, 14348.6), (8, 9254.5), (12, 6503.6)];
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    for (order, expect) in paper {
        let got = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            ),
            dims,
            true,
        );
        let ratio = got / expect;
        assert!(
            (0.6..1.4).contains(&ratio),
            "order {order}: {got:.0} vs paper {expect:.0} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn measured_bandwidths_match_section_iv_a() {
    let cases = [
        (DeviceSpec::gtx580(), 161.0),
        (DeviceSpec::gtx680(), 150.0),
        (DeviceSpec::c2070(), 117.5),
    ];
    for (dev, expect) in cases {
        let got = measure_achieved_bandwidth(&dev);
        assert!(
            (got - expect).abs() / expect < 0.03,
            "{}: {got:.1}",
            dev.name
        );
    }
}

#[test]
fn speedup_decreases_with_stencil_order() {
    // §IV-C: "the speedup generally decreases as the order of the
    // stencil is increased" — compare the low-order and high-order means.
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let speedup = |order: usize| {
        let nv = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::ForwardPlane,
                order,
                Precision::Single,
            ),
            dims,
            false,
        );
        let fs = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            ),
            dims,
            true,
        );
        fs / nv
    };
    let low = (speedup(2) + speedup(4)) / 2.0;
    let high = (speedup(10) + speedup(12)) / 2.0;
    assert!(
        low > high,
        "low-order mean {low:.2} vs high-order mean {high:.2}"
    );
}

#[test]
fn dp_speedups_are_smaller_than_sp_on_gtx680() {
    // §IV-C: "for the DP case, only marginal speedup is achieved for
    // high order stencils on GTX580 and GTX680".
    let dev = DeviceSpec::gtx680();
    let dims = GridDims::paper();
    let speedup = |order: usize, prec: Precision| {
        let nv = tune(
            &dev,
            &KernelSpec::star_order(inplane_isl::core::Method::ForwardPlane, order, prec),
            dims,
            false,
        );
        let fs = tune(
            &dev,
            &KernelSpec::star_order(
                inplane_isl::core::Method::InPlane(Variant::FullSlice),
                order,
                prec,
            ),
            dims,
            true,
        );
        fs / nv
    };
    let sp = speedup(10, Precision::Single);
    let dp = speedup(10, Precision::Double);
    assert!(
        dp < sp,
        "order-10 GTX680: DP {dp:.2} should trail SP {sp:.2}"
    );
    assert!(
        dp < 1.45,
        "high-order DP speedup should be marginal, got {dp:.2}"
    );
}

#[test]
fn c2070_supports_very_high_orders() {
    // §IV-C: "for Tesla C2070 ... speedups can be achieved for up to
    // 32nd order for SP stencils". Verify the machinery handles order 32
    // and still favours the in-plane method.
    let dev = DeviceSpec::c2070();
    let dims = GridDims::paper();
    let nv = tune(
        &dev,
        &KernelSpec::star_order(
            inplane_isl::core::Method::ForwardPlane,
            32,
            Precision::Single,
        ),
        dims,
        false,
    );
    let fs = tune(
        &dev,
        &KernelSpec::star_order(
            inplane_isl::core::Method::InPlane(Variant::FullSlice),
            32,
            Precision::Single,
        ),
        dims,
        true,
    );
    let hz = tune(
        &dev,
        &KernelSpec::star_order(
            inplane_isl::core::Method::InPlane(Variant::Horizontal),
            32,
            Precision::Single,
        ),
        dims,
        true,
    );
    assert!(nv > 0.0 && fs > 0.0 && hz > 0.0);
    // At radius 16 the full-slice 4r² corner overhead is punishing in a
    // pure-traffic model; the corner-free horizontal variant carries the
    // in-plane win at extreme orders (see EXPERIMENTS.md).
    let best_inplane = fs.max(hz);
    assert!(
        best_inplane / nv > 1.0,
        "order-32 SP speedup {:.2}",
        best_inplane / nv
    );
    assert!(
        fs / nv > 0.8,
        "full-slice should remain competitive, got {:.2}",
        fs / nv
    );
}
