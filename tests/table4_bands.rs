//! Full Table IV band check: every one of the 36 cells (2 precisions ×
//! 6 orders × 3 devices), tuned on a reduced space over the full paper
//! grid, compared against the paper's reported MPoint/s within a wide
//! band and against shape invariants (speedup ≥ ~1, SP > DP, decreasing
//! with order on Fermi).

use stencil_bench::exp::table4;
use stencil_bench::RunOpts;
use stencil_grid::Precision;

fn cells() -> Vec<table4::Cell> {
    // Quick space over the full 512x512x256 grid: the absolute rates are
    // grid-scale-sensitive, the search-space reduction is not.
    table4::compute(&RunOpts {
        quick: true,
        seed: 1,
        csv_dir: None,
        tune_store: None,
    })
    .into_iter()
    .collect()
}

#[test]
fn all_36_cells_within_factor_two_of_paper() {
    let cells = cells();
    assert_eq!(cells.len(), 36);
    for c in &cells {
        assert!(
            c.mpoints > 0.0,
            "{} {} order {}: infeasible",
            c.precision,
            c.device,
            c.order
        );
        let ratio = c.mpoints / c.paper.1;
        assert!(
            (0.5..2.2).contains(&ratio),
            "{} {} order {}: {:.0} vs paper {:.0} (x{ratio:.2})",
            c.precision.label(),
            c.device,
            c.order,
            c.mpoints,
            c.paper.1
        );
    }
}

#[test]
fn every_cell_speeds_up_or_is_marginal() {
    for c in cells() {
        assert!(
            c.speedup > 0.95,
            "{} {} order {}: speedup {:.2}",
            c.precision.label(),
            c.device,
            c.order,
            c.speedup
        );
    }
}

#[test]
fn sp_beats_dp_per_device_and_order() {
    let cells = cells();
    for dev in ["GTX580", "GTX680", "C2070"] {
        for order in [2usize, 4, 6, 8, 10, 12] {
            let rate = |p: Precision| {
                cells
                    .iter()
                    .find(|c| c.precision == p && c.device.contains(dev) && c.order == order)
                    .unwrap()
                    .mpoints
            };
            assert!(
                rate(Precision::Single) > rate(Precision::Double),
                "{dev} order {order}: SP must out-rate DP"
            );
        }
    }
}

#[test]
fn fermi_speedups_decrease_from_low_to_high_orders() {
    let cells = cells();
    for dev in ["GTX580", "C2070"] {
        let speedup = |order: usize| {
            cells
                .iter()
                .find(|c| {
                    c.precision == Precision::Single && c.device.contains(dev) && c.order == order
                })
                .unwrap()
                .speedup
        };
        let low = (speedup(2) + speedup(4)) / 2.0;
        let high = (speedup(10) + speedup(12)) / 2.0;
        assert!(
            low > high,
            "{dev}: low-order mean {low:.2} vs high-order {high:.2}"
        );
    }
}

#[test]
fn high_order_dp_register_blocks_collapse() {
    // Table IV's DP order-10/12 optima have RX·RY ≤ 2 on every device —
    // the register-pressure signature the paper highlights.
    for c in cells() {
        if c.precision == Precision::Double && c.order >= 10 {
            assert!(
                c.config.points_per_thread() <= 2,
                "{} order {}: optimal {} register-blocks too aggressively",
                c.device,
                c.order,
                c.config
            );
        }
    }
}
