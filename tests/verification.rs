//! Cross-crate functional verification: the paper's own correctness
//! protocol — "the output of each kernel is verified to be consistent
//! with the result from the CPU-computed stencil output" — run across
//! every method, loading variant, stencil order, precision and a spread
//! of launch configurations, including multi-step iterative runs.

use inplane_isl::core::execute_step;
use inplane_isl::prelude::*;
use stencil_grid::{
    apply_reference, apply_reference_inplane_order, default_tolerance, max_abs_diff, verify_close,
};

fn configs() -> Vec<LaunchConfig> {
    vec![
        LaunchConfig::new(4, 4, 1, 1),
        LaunchConfig::new(16, 2, 1, 1),
        LaunchConfig::new(8, 8, 2, 1),
        LaunchConfig::new(5, 3, 1, 2), // deliberately awkward tile
    ]
}

#[test]
fn every_method_every_order_sp() {
    for method in [
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ] {
        for order in [2usize, 4, 6] {
            let stencil = StarStencil::<f32>::from_order(order);
            let n = order + 9;
            let input: Grid3<f32> = FillPattern::Random {
                lo: -1.0,
                hi: 1.0,
                seed: order as u64,
            }
            .build(n, n, n);
            for config in configs() {
                let mut got = Grid3::new(n, n, n);
                execute_step(
                    method,
                    &stencil,
                    &config,
                    &input,
                    &mut got,
                    Boundary::CopyInput,
                );
                let mut golden = Grid3::new(n, n, n);
                match method {
                    Method::ForwardPlane => {
                        apply_reference(&stencil, &input, &mut golden, Boundary::CopyInput)
                    }
                    Method::InPlane(_) => apply_reference_inplane_order(
                        &stencil,
                        &input,
                        &mut golden,
                        Boundary::CopyInput,
                    ),
                }
                assert_eq!(
                    max_abs_diff(&got, &golden),
                    0.0,
                    "{method} order {order} at {config} must be bit-exact vs its reference"
                );
            }
        }
    }
}

#[test]
fn multi_step_iteration_stays_verified_dp() {
    let stencil = StarStencil::<f64>::from_order(4);
    let n = 20;
    let steps = 8;
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 10.0,
        sigma: 0.15,
    }
    .build(n, n, n);

    let (cpu, _) = iterate_stencil_loop(initial.clone(), 2, steps, |inp, out| {
        apply_reference(&stencil, inp, out, Boundary::CopyInput);
    });
    let config = LaunchConfig::new(8, 4, 1, 1);
    for method in [Method::ForwardPlane, Method::InPlane(Variant::FullSlice)] {
        let (gpu, stats) = iterate_stencil_loop(initial.clone(), 2, steps, |inp, out| {
            execute_step(method, &stencil, &config, inp, out, Boundary::CopyInput);
        });
        assert_eq!(stats.steps, steps);
        let rep = verify_close(&gpu, &cpu, default_tolerance(Precision::Double, steps));
        assert!(
            rep.passed(),
            "{method}: max |err| {:.2e} at {:?} after {steps} steps",
            rep.max_abs,
            rep.worst_at
        );
    }
}

#[test]
fn high_order_stencils_verify() {
    // Orders beyond the evaluation range still work (the paper mentions
    // running up to 32nd order on the C2070).
    for order in [14usize, 20] {
        let r = order / 2;
        let stencil = StarStencil::<f64>::from_order(order);
        let n = 2 * r + 5;
        let input: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 77,
        }
        .build(n, n, n);
        let mut got = Grid3::new(n, n, n);
        execute_step(
            Method::InPlane(Variant::FullSlice),
            &stencil,
            &LaunchConfig::new(8, 8, 1, 1),
            &input,
            &mut got,
            Boundary::CopyInput,
        );
        let mut golden = Grid3::new(n, n, n);
        apply_reference_inplane_order(&stencil, &input, &mut golden, Boundary::CopyInput);
        assert_eq!(max_abs_diff(&got, &golden), 0.0, "order {order}");
    }
}

#[test]
fn forward_and_inplane_agree_across_methods() {
    // The two method families use different summation orders; they must
    // agree to rounding, which is how a user would cross-check them.
    let stencil = StarStencil::<f64>::from_order(6);
    let n = 16;
    let input: Grid3<f64> = FillPattern::HashNoise.build(n, n, n);
    let config = LaunchConfig::new(8, 2, 1, 4);
    let mut a = Grid3::new(n, n, n);
    let mut b = Grid3::new(n, n, n);
    execute_step(
        Method::ForwardPlane,
        &stencil,
        &config,
        &input,
        &mut a,
        Boundary::CopyInput,
    );
    execute_step(
        Method::InPlane(Variant::Horizontal),
        &stencil,
        &config,
        &input,
        &mut b,
        Boundary::CopyInput,
    );
    assert!(max_abs_diff(&a, &b) < 1e-13);
}
