//! End-to-end persistence: a tuning sweep resolved through a
//! [`TuneService`] backed by a [`JsonlDiskStore`] must (a) be served
//! bit-identically from disk on a repeat run with zero re-search, and
//! (b) degrade to a full re-tune — never a panic — when the store file
//! is corrupted wholesale.
//!
//! CI runs `store_cold_then_warm_is_bit_identical` twice against one
//! shared tmpdir by setting `INPLANE_TUNE_STORE` to the same path for
//! both invocations; the second invocation additionally sets
//! `INPLANE_TUNE_STORE_EXPECT_WARM=1`, which asserts that the sweep was
//! actually served from the persisted records of the first.

use std::path::PathBuf;
use std::sync::Arc;

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{ParameterSpace, Provenance};
use stencil_grid::Precision;
use stencil_tunestore::{JsonlDiskStore, TuneRequest, TuneResponse, TuneService, TunerSpec};

fn scratch_path(tag: &str) -> PathBuf {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir()
        .join(format!("tune-store-it-{tag}-{}-{t}", std::process::id()))
        .join("store.jsonl")
}

/// A small but real sweep: two devices x two orders, exhaustive and
/// model-based, over the quick space.
fn sweep(svc: &TuneService) -> Vec<TuneResponse> {
    let dims = GridDims::new(256, 256, 32);
    let mut out = Vec::new();
    for dev in [DeviceSpec::gtx580(), DeviceSpec::gtx680()] {
        for order in [2usize, 4] {
            let kernel = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let space = ParameterSpace::quick_space(&dev, &kernel, &dims);
            for tuner in [
                TunerSpec::Exhaustive,
                TunerSpec::ModelBased { beta_percent: 5.0 },
            ] {
                out.push(svc.resolve(&TuneRequest {
                    device: dev.clone(),
                    kernel: kernel.clone(),
                    dims,
                    space: space.clone(),
                    tuner,
                    seed: 1,
                }));
            }
        }
    }
    out
}

fn service_over(path: &PathBuf) -> TuneService {
    TuneService::with_global_ctx(Arc::new(
        JsonlDiskStore::open(path).expect("store must open"),
    ))
}

#[test]
fn store_cold_then_warm_is_bit_identical() {
    let env_path = std::env::var("INPLANE_TUNE_STORE")
        .ok()
        .filter(|p| !p.is_empty());
    let expect_warm = std::env::var("INPLANE_TUNE_STORE_EXPECT_WARM").as_deref() == Ok("1");
    let (path, from_env) = match env_path {
        Some(p) => (PathBuf::from(p), true),
        None => (scratch_path("coldwarm"), false),
    };

    // First pass: resolves either compute (cold store) or hit records a
    // previous process persisted (warm CI re-run).
    let first = service_over(&path);
    let first_responses = sweep(&first);
    assert!(!first_responses.is_empty());
    if expect_warm {
        assert!(
            first.store().stats().hits >= 1,
            "warm re-run must be served from the persisted store, got {:?}",
            first.store().stats()
        );
        assert!(
            first_responses
                .iter()
                .all(|r| r.provenance == Provenance::Store),
            "warm re-run must not re-search"
        );
    }

    // Second pass, fresh service over the same file: every result is
    // served from disk, bit-identical, with zero re-search.
    let second = service_over(&path);
    let second_responses = sweep(&second);
    assert_eq!(second.stats().computed, 0, "no re-search on a warm store");
    assert_eq!(
        second.stats().served_from_store,
        second_responses.len() as u64
    );
    for (a, b) in first_responses.iter().zip(&second_responses) {
        assert_eq!(b.provenance, Provenance::Store);
        assert_eq!(a.best.config, b.best.config, "best config must persist");
        assert_eq!(
            a.best.mpoints.to_bits(),
            b.best.mpoints.to_bits(),
            "stored throughput must round-trip bit-exactly"
        );
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.key_hash, b.key_hash);
    }

    if !from_env {
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

#[test]
fn corrupted_store_degrades_to_full_retune() {
    let path = scratch_path("corrupt");

    // Seed the store with a real sweep.
    let seeded = service_over(&path);
    let originals = sweep(&seeded);
    assert!(seeded.stats().computed > 0);

    // Trash every line: flip bytes in the middle of the file and append
    // garbage. Nothing parseable (or checksum-clean) remains.
    let mut bytes = std::fs::read(&path).unwrap();
    for b in bytes.iter_mut().skip(8).step_by(5) {
        *b = b'#';
    }
    bytes.extend_from_slice(b"\n{\"crc\":\"00\",\"rec\":{}}\nutter garbage\n");
    std::fs::write(&path, bytes).unwrap();

    // Reopen: the loader skips everything, counts it, and the service
    // recomputes the sweep from scratch — identical results, no panic.
    let recovered = service_over(&path);
    assert_eq!(recovered.store().len(), 0, "no corrupt record may load");
    assert!(recovered.store().stats().skipped() > 0);
    let recomputed = sweep(&recovered);
    assert_eq!(recovered.stats().served_from_store, 0);
    assert_eq!(
        recovered.stats().computed + recovered.stats().warm_started,
        recomputed.len() as u64
    );
    for (a, b) in originals.iter().zip(&recomputed) {
        assert_eq!(a.best.config, b.best.config);
        assert_eq!(
            a.best.mpoints.to_bits(),
            b.best.mpoints.to_bits(),
            "deterministic evaluation: a re-tune reproduces the same result"
        );
    }

    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
