#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Std-only benchmark-harness stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: one warm-up iteration, then
//! `sample_size` timed iterations; the harness reports min / mean /
//! max wall time per iteration on stdout. That is enough to compare
//! cold-cache and warm-cache sweeps, which is what the in-repo benches
//! assert on.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Run `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let n = bencher.samples_ns.len() as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples_ns.iter().cloned().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(e)) => format!("  {:.1} Melem/s", e as f64 / mean * 1e3),
        Some(Throughput::Bytes(b)) => format!("  {:.1} MB/s", b as f64 / mean * 1e3),
        None => String::new(),
    };
    println!(
        "{name:<50} [{} {} {}]{rate}",
        human(min),
        human(mean),
        human(max)
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| {
            count += 1;
            count
        });
        // One warm-up + 5 timed iterations.
        assert_eq!(count, 6);
        assert_eq!(b.samples_ns.len(), 5);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn groups_run_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("id", 1), &3usize, |b, &x| {
                b.iter(|| x * 2);
                ran = true;
            });
        group.finish();
        assert!(ran);
    }
}
