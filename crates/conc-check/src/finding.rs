//! Coded findings (`CCK-*`) and the per-check report.
//!
//! The numeric bands follow the house diagnostic convention
//! (`LNT-*`, `SRV-*`): 001–099 are errors (the schedule shown is a
//! real counterexample), 101–199 are warnings (suspicious but not a
//! safety violation on its own), 900+ are uncategorized model events
//! surfaced as errors so they are never silently swallowed.

use crate::trace::Trace;

/// Severity of a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The schedule in the finding is a counterexample to a safety
    /// property — the checked code is broken.
    Error,
    /// A suspicious pattern (e.g. a lock held across a compute
    /// region); not a violation by itself.
    Warning,
}

/// One catalog entry: a stable code with its meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable machine-readable code, e.g. `"CCK-001"`.
    pub code: &'static str,
    /// Severity band the code belongs to.
    pub severity: Severity,
    /// One-line meaning.
    pub summary: &'static str,
}

/// Every code the checker can emit, in catalog order. The registry
/// test asserts each emitted finding carries one of these codes.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: "CCK-001",
        severity: Severity::Error,
        summary: "deadlock: a lock-order cycle (or join cycle) with no runnable thread; \
                  the finding carries every party's held-lock acquisition points",
    },
    CodeInfo {
        code: "CCK-002",
        severity: Severity::Error,
        summary: "lost wakeup: a condvar waiter is stuck after every thread that could \
                  have notified it exited or blocked",
    },
    CodeInfo {
        code: "CCK-003",
        severity: Severity::Error,
        summary: "permit/resource leak: a pool or counter did not return to its idle \
                  value after all threads (including panicking ones) finished",
    },
    CodeInfo {
        code: "CCK-004",
        severity: Severity::Error,
        summary: "atomicity violation: a torn read-modify-write left a counter or stat \
                  inconsistent with the operations that ran",
    },
    CodeInfo {
        code: "CCK-005",
        severity: Severity::Error,
        summary: "non-linearizable single-flight: one key observed more than one compute \
                  (or a waiter observed a half-published result)",
    },
    CodeInfo {
        code: "CCK-101",
        severity: Severity::Warning,
        summary: "lock held across a compute region: a modeled lock was held while \
                  entering a region marked as long-running compute",
    },
    CodeInfo {
        code: "CCK-900",
        severity: Severity::Error,
        summary: "uncategorized model panic or resource cap (schedule depth, unexpected \
                  assertion) — always surfaced, never swallowed",
    },
];

/// Catalog lookup; `None` for unknown codes.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

/// One finding: a coded violation plus the deterministic schedule
/// that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable `CCK-*` code (always present in [`REGISTRY`]).
    pub code: String,
    /// Human-readable description, including held-lock acquisition
    /// points for deadlocks and the violated invariant otherwise.
    pub message: String,
    /// The schedule that produced the finding; replay it with
    /// [`Checker::replay`](crate::Checker::replay) for a step-by-step
    /// reproduction under the same seed.
    pub trace: Trace,
}

impl Finding {
    /// Severity from the catalog (unknown codes default to error).
    pub fn severity(&self) -> Severity {
        code_info(&self.code).map_or(Severity::Error, |c| c.severity)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} [trace {}]", self.code, self.message, self.trace)
    }
}

/// The outcome of one [`Checker::check`](crate::Checker::check) run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckReport {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// Schedules cut early because every available transition was in
    /// the sleep set (already covered through a commuted ordering).
    pub pruned: u64,
    /// True when the whole bounded space was explored; false when the
    /// schedule budget stopped exploration (or an error finding did).
    pub exhausted: bool,
    /// The deepest schedule (number of choice points) seen.
    pub max_depth: usize,
    /// Error and warning findings, in discovery order. Exploration
    /// stops at the first error; warnings accumulate (deduplicated by
    /// code + message).
    pub findings: Vec<Finding>,
    /// The seed exploration ran under (replays need it).
    pub seed: u64,
}

impl CheckReport {
    /// True when no error-severity finding was recorded.
    pub fn ok(&self) -> bool {
        !self
            .findings
            .iter()
            .any(|f| f.severity() == Severity::Error)
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
            .collect()
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity() == Severity::Warning)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_banded() {
        let mut seen = std::collections::HashSet::new();
        for info in REGISTRY {
            assert!(seen.insert(info.code), "duplicate code {}", info.code);
            let num: u32 = info.code[4..].parse().expect("numeric tail");
            let expect = if (100..900).contains(&num) {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(info.severity, expect, "band mismatch for {}", info.code);
        }
    }
}
