//! The controlled cooperative scheduler.
//!
//! One model execution runs the checked closure on real OS threads,
//! serialized by a baton: exactly one model thread runs at a time,
//! and it runs only until its next operation on a modeled primitive
//! (a *yield point*), where it announces the operation and parks.
//! The controller — the thread that called
//! [`Checker::check`](crate::Checker::check) — then picks which
//! announced operation runs next. The sequence of picks is the
//! schedule; the explorer in `checker.rs` drives a DFS over all of
//! them.
//!
//! Model-state effects (who holds which mutex, who waits on which
//! condvar) are applied by the controller at grant time under the
//! execution lock, so enabledness (can this `lock` proceed?) is
//! always judged against a consistent view. Real-world effects (the
//! actual `std` mutex acquisition, the actual atomic update) are
//! performed by the granted thread itself, which is safe because
//! grants serialize all model threads.
//!
//! Two scheduler-injected behaviours widen the explored space beyond
//! plain interleavings: condvar waiters can be woken *spuriously* (a
//! schedule choice, bounded per thread), and
//! [`fault::point`](crate::fault::point) sites can be driven into
//! their panic arm — so unwinding (RAII permit release, poisoned
//! locks) is explored like any other schedule.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::trace::{Step, StepKind, Trace};

/// Model thread id (dense, starting at 0 for the root closure).
pub(crate) type Tid = usize;
/// Model object id (dense per execution).
pub(crate) type ObjId = usize;

/// What a modeled operation does, for enabledness and independence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First announcement of a freshly spawned thread.
    Begin,
    Lock(ObjId),
    Unlock(ObjId),
    RwRead(ObjId),
    RwReadUnlock(ObjId),
    RwWrite(ObjId),
    RwWriteUnlock(ObjId),
    /// Atomically release the mutex and join the condvar's waiters.
    Wait {
        cv: ObjId,
        mutex: ObjId,
    },
    NotifyOne(ObjId),
    NotifyAll(ObjId),
    AtomicLoad(ObjId),
    AtomicStore(ObjId),
    /// Commuting read-modify-write (`fetch_add`/`fetch_sub`): two of
    /// these on the same object are independent for pruning.
    AtomicRmwCommute(ObjId),
    /// Non-commuting read-modify-write (`swap`, `compare_exchange*`).
    AtomicRmw(ObjId),
    /// A fault-injection site; has a normal arm and a panic arm.
    Fault(u32),
    /// Join on another model thread.
    Join(Tid),
}

/// One announced operation: the kind plus the `Ordering` the call
/// site used (tracked for trace rendering; execution is explored
/// under sequential consistency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub ord: Option<std::sync::atomic::Ordering>,
}

impl Op {
    pub(crate) fn new(kind: OpKind) -> Self {
        Op { kind, ord: None }
    }

    pub(crate) fn atomic(kind: OpKind, ord: std::sync::atomic::Ordering) -> Self {
        Op {
            kind,
            ord: Some(ord),
        }
    }

    /// The model object this op touches, in a namespace that keeps
    /// thread-join targets distinct from primitive objects.
    fn object(&self) -> Option<(u8, usize)> {
        match self.kind {
            OpKind::Begin => None,
            OpKind::Fault(_) => None,
            OpKind::Join(t) => Some((1, t)),
            OpKind::Lock(o)
            | OpKind::Unlock(o)
            | OpKind::RwRead(o)
            | OpKind::RwReadUnlock(o)
            | OpKind::RwWrite(o)
            | OpKind::RwWriteUnlock(o)
            | OpKind::NotifyOne(o)
            | OpKind::NotifyAll(o)
            | OpKind::AtomicLoad(o)
            | OpKind::AtomicStore(o)
            | OpKind::AtomicRmwCommute(o)
            | OpKind::AtomicRmw(o) => Some((0, o)),
            OpKind::Wait { cv, .. } => Some((0, cv)),
        }
    }

    /// True when reordering `self` and `other` cannot change any
    /// observable outcome — the independence relation the sleep-set
    /// pruning is built on. Conservative: unknown pairs are dependent.
    pub(crate) fn independent(&self, other: &Op) -> bool {
        let (a, b) = match (self.object(), other.object()) {
            (Some(a), Some(b)) => (a, b),
            // Begin/Fault are thread-local transitions.
            _ => return true,
        };
        if a != b {
            // Wait touches both its condvar and its mutex: treat a
            // Wait as dependent with any op on either object.
            if let OpKind::Wait { mutex, .. } = self.kind {
                if b == (0, mutex) {
                    return false;
                }
            }
            if let OpKind::Wait { mutex, .. } = other.kind {
                if a == (0, mutex) {
                    return false;
                }
            }
            return true;
        }
        matches!(
            (self.kind, other.kind),
            (OpKind::AtomicLoad(_), OpKind::AtomicLoad(_))
                | (OpKind::AtomicRmwCommute(_), OpKind::AtomicRmwCommute(_))
                | (OpKind::RwRead(_), OpKind::RwRead(_))
        )
    }
}

/// How a parked thread is told to proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Grant {
    /// Run the announced operation's normal arm.
    Proceed,
    /// Run the announced fault point's panic arm.
    Panic,
    /// The execution was cancelled; unwind quietly.
    Cancel,
}

/// Panic payload used to tear down model threads on cancellation.
pub(crate) struct Cancelled;

/// Panic payload of a fault point driven into its panic arm.
pub(crate) struct InjectedFault(pub u32);

/// Panic payload of [`violation`](crate::violation) — a coded
/// invariant failure the checker reports as a finding.
pub(crate) struct CodedViolation {
    pub code: String,
    pub message: String,
}

#[derive(Clone, Debug)]
pub(crate) enum ObjState {
    Mutex {
        held_by: Option<Tid>,
    },
    Cond {
        /// `(waiter, mutex to reacquire)` in wait order.
        waiters: Vec<(Tid, ObjId)>,
    },
    Rw {
        writer: Option<Tid>,
        readers: Vec<Tid>,
    },
    Atomic,
}

#[derive(Clone, Debug)]
pub(crate) struct ObjEntry {
    pub state: ObjState,
    pub name: String,
}

#[derive(Debug)]
pub(crate) enum TState {
    /// OS thread spawned but has not announced `Begin` yet.
    Starting,
    /// Announced `op` and parked, waiting for a grant.
    Pending(Op),
    /// Parked inside a condvar wait (no pending op until woken).
    CondWait,
    /// Granted and executing user code (holds the baton).
    Running,
    Finished,
    /// Unwound on a panic (injected fault, coded violation, or bug).
    Panicked,
}

pub(crate) struct ThreadSlot {
    pub state: TState,
    pub granted: Option<Grant>,
    pub name: String,
}

#[derive(Default)]
pub(crate) struct ExecInner {
    pub threads: Vec<ThreadSlot>,
    pub objects: Vec<ObjEntry>,
    pub active: Option<Tid>,
    pub cancelled: bool,
    /// `(mutex obj, trace step index at acquisition)` per thread —
    /// the acquisition stacks CCK-001 reports.
    pub held: Vec<Vec<(ObjId, usize)>>,
    pub spurious_used: Vec<u32>,
    /// First coded violation (or uncategorized panic) of this
    /// execution, taken by the controller at the next settle.
    pub violation: Option<(String, String)>,
    /// CCK-101-style warnings (code, message), deduplicated later.
    pub warnings: Vec<(String, String)>,
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
    pub steps_taken: usize,
}

/// One model execution's shared state.
pub(crate) struct Execution {
    pub inner: StdMutex<ExecInner>,
    pub cv: StdCondvar,
    /// Process-unique id; modeled primitives bind to it so objects
    /// created outside this execution fall back to plain `std` ops.
    pub id: u64,
}

static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current model context of this OS thread, if any.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<(Arc<Execution>, Tid)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Suppress the default "thread panicked" stderr spam for panics
/// raised inside model executions (cancellations, injected faults,
/// coded violations); panics outside any model keep the default hook.
pub(crate) fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                default(info);
            }
        }));
    });
}

impl Execution {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Execution {
            inner: StdMutex::new(ExecInner::default()),
            cv: StdCondvar::new(),
            id: NEXT_EXEC_ID.fetch_add(1, AOrd::Relaxed),
        })
    }

    /// Register a modeled primitive, returning its object id.
    pub(crate) fn register_object(&self, state: ObjState, name: String) -> ObjId {
        let mut inner = self.inner.lock().expect("execution state");
        inner.objects.push(ObjEntry { state, name });
        inner.objects.len() - 1
    }

    /// Spawn a model thread running `f`; returns its tid. The OS
    /// thread announces `Begin` and parks before touching `f`.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        name: String,
        f: impl FnOnce() + Send + 'static,
    ) -> Tid {
        let tid = {
            let mut inner = self.inner.lock().expect("execution state");
            inner.threads.push(ThreadSlot {
                state: TState::Starting,
                granted: None,
                name,
            });
            inner.held.push(Vec::new());
            inner.spurious_used.push(0);
            inner.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("cck-{}-{tid}", self.id))
            .stack_size(256 * 1024)
            .spawn(move || {
                set_current(Some((Arc::clone(&exec), tid)));
                let began = matches!(exec.op(tid, Op::new(OpKind::Begin)), Grant::Proceed);
                let outcome = if began {
                    Some(catch_unwind(AssertUnwindSafe(f)))
                } else {
                    None
                };
                set_current(None);
                let mut inner = exec.inner.lock().expect("execution state");
                inner.threads[tid].state = match outcome {
                    None | Some(Err(_)) if inner.cancelled => TState::Finished,
                    None => TState::Finished,
                    Some(Ok(())) => TState::Finished,
                    Some(Err(payload)) => classify_panic(&mut inner, payload),
                };
                if inner.active == Some(tid) {
                    inner.active = None;
                }
                exec.cv.notify_all();
            })
            .expect("spawn model thread");
        self.inner
            .lock()
            .expect("execution state")
            .os_handles
            .push(handle);
        tid
    }

    /// Announce `op` for `tid`, release the baton, and park until the
    /// controller resolves this thread's next grant.
    pub(crate) fn op(&self, tid: Tid, op: Op) -> Grant {
        let mut inner = self.inner.lock().expect("execution state");
        if inner.cancelled {
            return Grant::Cancel;
        }
        inner.threads[tid].state = TState::Pending(op);
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.cv.notify_all();
        loop {
            if let Some(g) = inner.threads[tid].granted.take() {
                return g;
            }
            if inner.cancelled {
                return Grant::Cancel;
            }
            inner = self.cv.wait(inner).expect("execution state");
        }
    }

    /// Park after a condvar `Wait` grant's cleanup (the real guard is
    /// already dropped); returns when the reacquire grant arrives.
    pub(crate) fn park_for_reacquire(&self, tid: Tid) -> Grant {
        let mut inner = self.inner.lock().expect("execution state");
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.cv.notify_all();
        loop {
            if let Some(g) = inner.threads[tid].granted.take() {
                return g;
            }
            if inner.cancelled {
                return Grant::Cancel;
            }
            inner = self.cv.wait(inner).expect("execution state");
        }
    }

    /// Block until the execution is settled: the baton is free, no
    /// thread is still starting up, and every `Begin` has been
    /// eagerly granted (thread startup is a local transition and
    /// never a choice point). Returns the state guard so the caller
    /// can compute choices and apply one atomically.
    pub(crate) fn settle(&self) -> std::sync::MutexGuard<'_, ExecInner> {
        let mut inner = self.inner.lock().expect("execution state");
        loop {
            if inner.active.is_none() {
                let begin = inner.threads.iter().position(
                    |t| matches!(t.state, TState::Pending(op) if op.kind == OpKind::Begin),
                );
                if let Some(tid) = begin {
                    inner.threads[tid].state = TState::Running;
                    inner.threads[tid].granted = Some(Grant::Proceed);
                    inner.active = Some(tid);
                    self.cv.notify_all();
                } else if !inner
                    .threads
                    .iter()
                    .any(|t| matches!(t.state, TState::Starting))
                {
                    return inner;
                }
            }
            inner = self.cv.wait(inner).expect("execution state");
        }
    }

    /// Cancel everything still live, join the OS threads, and return
    /// the warnings this execution accumulated.
    pub(crate) fn teardown(&self) -> Vec<(String, String)> {
        let handles = {
            let mut inner = self.inner.lock().expect("execution state");
            inner.cancelled = true;
            self.cv.notify_all();
            std::mem::take(&mut inner.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut inner = self.inner.lock().expect("execution state");
        std::mem::take(&mut inner.warnings)
    }

    /// Record a CCK-101-style warning from inside a model thread.
    pub(crate) fn warn(&self, code: &str, message: String) {
        let mut inner = self.inner.lock().expect("execution state");
        let entry = (code.to_string(), message);
        if !inner.warnings.contains(&entry) {
            inner.warnings.push(entry);
        }
    }

    /// The locks `tid` currently holds, as `(object name, step)`.
    pub(crate) fn held_by(&self, tid: Tid) -> Vec<(String, usize)> {
        let inner = self.inner.lock().expect("execution state");
        inner.held[tid]
            .iter()
            .map(|&(obj, step)| (inner.objects[obj].name.clone(), step))
            .collect()
    }
}

/// Map a caught panic payload to a thread state, recording coded
/// violations (and uncategorized panics as `CCK-900`).
fn classify_panic(inner: &mut ExecInner, payload: Box<dyn Any + Send>) -> TState {
    if payload.is::<Cancelled>() {
        return TState::Finished;
    }
    if let Some(InjectedFault(_tag)) = payload.downcast_ref::<InjectedFault>() {
        return TState::Panicked;
    }
    match payload.downcast::<CodedViolation>() {
        Ok(v) => {
            if inner.violation.is_none() {
                inner.violation = Some((v.code, v.message));
            }
            TState::Panicked
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            if inner.violation.is_none() {
                inner.violation = Some(("CCK-900".to_string(), format!("model panic: {msg}")));
            }
            TState::Panicked
        }
    }
}

/// Obey a grant on the thread side: proceed, raise the injected
/// fault, or unwind on cancellation (quietly if already unwinding).
pub(crate) fn obey(grant: Grant) {
    match grant {
        Grant::Proceed => {}
        Grant::Panic => std::panic::panic_any(InjectedFault(0)),
        Grant::Cancel => {
            if !std::thread::panicking() {
                std::panic::panic_any(Cancelled);
            }
        }
    }
}

/// One schedulable choice at a choice point.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Choice {
    pub tid: Tid,
    pub kind: StepKind,
    /// The pending op this choice would run (synthesized
    /// `Wait`-shaped op for spurious wakeups, for independence).
    pub op: Op,
}

impl Choice {
    pub(crate) fn step(&self) -> Step {
        Step {
            tid: self.tid,
            kind: self.kind,
        }
    }
}

/// Is `op` enabled under the current model state?
fn enabled(inner: &ExecInner, op: &Op) -> bool {
    match op.kind {
        OpKind::Lock(o) => matches!(inner.objects[o].state, ObjState::Mutex { held_by: None }),
        OpKind::RwRead(o) => {
            matches!(inner.objects[o].state, ObjState::Rw { writer: None, .. })
        }
        OpKind::RwWrite(o) => matches!(
            &inner.objects[o].state,
            ObjState::Rw {
                writer: None,
                readers,
            } if readers.is_empty()
        ),
        OpKind::Join(t) => matches!(inner.threads[t].state, TState::Finished | TState::Panicked),
        _ => true,
    }
}

/// The ordered choice list at the current settled state.
pub(crate) fn choices(inner: &ExecInner, spurious: bool, max_spurious: u32) -> Vec<Choice> {
    let mut out = Vec::new();
    for (tid, slot) in inner.threads.iter().enumerate() {
        if let TState::Pending(op) = &slot.state {
            if enabled(inner, op) {
                out.push(Choice {
                    tid,
                    kind: StepKind::Run,
                    op: *op,
                });
                if matches!(op.kind, OpKind::Fault(_)) {
                    out.push(Choice {
                        tid,
                        kind: StepKind::FaultPanic,
                        op: *op,
                    });
                }
            }
        }
    }
    if spurious {
        for (tid, slot) in inner.threads.iter().enumerate() {
            if matches!(slot.state, TState::CondWait) && inner.spurious_used[tid] < max_spurious {
                // Find the condvar this thread waits on for the op.
                for (obj, entry) in inner.objects.iter().enumerate() {
                    if let ObjState::Cond { waiters } = &entry.state {
                        if let Some(&(_, mutex)) = waiters.iter().find(|(t, _)| *t == tid) {
                            out.push(Choice {
                                tid,
                                kind: StepKind::Spurious,
                                op: Op::new(OpKind::Wait { cv: obj, mutex }),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Apply `choice`'s model-state effects and (for non-spurious
/// choices) hand the baton to its thread.
pub(crate) fn apply(exec: &Execution, inner: &mut ExecInner, choice: &Choice, step_idx: usize) {
    let tid = choice.tid;
    match choice.kind {
        StepKind::Spurious => {
            if let OpKind::Wait { cv, mutex } = choice.op.kind {
                if let ObjState::Cond { waiters } = &mut inner.objects[cv].state {
                    waiters.retain(|(t, _)| *t != tid);
                }
                inner.spurious_used[tid] += 1;
                inner.threads[tid].state = TState::Pending(Op::new(OpKind::Lock(mutex)));
            }
            // State-only transition: no thread wakes; the reacquire
            // becomes a normal choice at the next point.
            inner.steps_taken += 1;
            return;
        }
        StepKind::FaultPanic => {
            inner.threads[tid].state = TState::Running;
            inner.threads[tid].granted = Some(Grant::Panic);
        }
        StepKind::Run => {
            match choice.op.kind {
                OpKind::Lock(o) => {
                    if let ObjState::Mutex { held_by } = &mut inner.objects[o].state {
                        *held_by = Some(tid);
                    }
                    inner.held[tid].push((o, step_idx));
                }
                OpKind::Unlock(o) => {
                    if let ObjState::Mutex { held_by } = &mut inner.objects[o].state {
                        *held_by = None;
                    }
                    inner.held[tid].retain(|&(h, _)| h != o);
                }
                OpKind::RwRead(o) => {
                    if let ObjState::Rw { readers, .. } = &mut inner.objects[o].state {
                        readers.push(tid);
                    }
                    inner.held[tid].push((o, step_idx));
                }
                OpKind::RwReadUnlock(o) => {
                    if let ObjState::Rw { readers, .. } = &mut inner.objects[o].state {
                        if let Some(pos) = readers.iter().position(|&t| t == tid) {
                            readers.remove(pos);
                        }
                    }
                    inner.held[tid].retain(|&(h, _)| h != o);
                }
                OpKind::RwWrite(o) => {
                    if let ObjState::Rw { writer, .. } = &mut inner.objects[o].state {
                        *writer = Some(tid);
                    }
                    inner.held[tid].push((o, step_idx));
                }
                OpKind::RwWriteUnlock(o) => {
                    if let ObjState::Rw { writer, .. } = &mut inner.objects[o].state {
                        *writer = None;
                    }
                    inner.held[tid].retain(|&(h, _)| h != o);
                }
                OpKind::Wait { cv, mutex } => {
                    if let ObjState::Mutex { held_by } = &mut inner.objects[mutex].state {
                        *held_by = None;
                    }
                    inner.held[tid].retain(|&(h, _)| h != mutex);
                    if let ObjState::Cond { waiters } = &mut inner.objects[cv].state {
                        waiters.push((tid, mutex));
                    }
                    // The thread still gets the baton once, to drop
                    // its real guard, then parks for the reacquire.
                    inner.threads[tid].state = TState::CondWait;
                    inner.threads[tid].granted = Some(Grant::Proceed);
                    inner.active = Some(tid);
                    inner.steps_taken += 1;
                    exec.cv.notify_all();
                    return;
                }
                OpKind::NotifyOne(cv) => {
                    if let ObjState::Cond { waiters } = &mut inner.objects[cv].state {
                        if !waiters.is_empty() {
                            let (t, mutex) = waiters.remove(0);
                            inner.threads[t].state = TState::Pending(Op::new(OpKind::Lock(mutex)));
                        }
                    }
                }
                OpKind::NotifyAll(cv) => {
                    if let ObjState::Cond { waiters } = &mut inner.objects[cv].state {
                        for (t, mutex) in std::mem::take(waiters) {
                            inner.threads[t].state = TState::Pending(Op::new(OpKind::Lock(mutex)));
                        }
                    }
                }
                // Atomics, Begin, Fault (normal arm), Join: no model
                // state to update; the thread performs the real op.
                _ => {}
            }
            inner.threads[tid].state = TState::Running;
            inner.threads[tid].granted = Some(Grant::Proceed);
        }
    }
    inner.active = Some(tid);
    inner.steps_taken += 1;
    exec.cv.notify_all();
}

/// Why no choice is available at a settled, unfinished state.
pub(crate) struct Stuck {
    pub code: &'static str,
    pub message: String,
}

/// Classify a state with live threads but no enabled transition:
/// lock-order cycle (CCK-001), lost wakeup (CCK-002), or a generic
/// deadlock (CCK-001).
pub(crate) fn classify_stuck(inner: &ExecInner) -> Stuck {
    let name = |tid: Tid| -> String {
        let n = &inner.threads[tid].name;
        if n.is_empty() {
            format!("thread {tid}")
        } else {
            format!("thread {tid} ({n})")
        }
    };
    let held_desc = |tid: Tid| -> String {
        let held = &inner.held[tid];
        if held.is_empty() {
            "holding nothing".to_string()
        } else {
            let list: Vec<String> = held
                .iter()
                .map(|&(o, s)| format!("{} (acquired at step {s})", inner.objects[o].name))
                .collect();
            format!("holding {}", list.join(", "))
        }
    };
    // Waits-for edges over lock acquisition.
    let mut wants: HashMap<Tid, (ObjId, Tid)> = HashMap::new();
    for (tid, slot) in inner.threads.iter().enumerate() {
        if let TState::Pending(op) = &slot.state {
            let holder = match op.kind {
                OpKind::Lock(o) => match inner.objects[o].state {
                    ObjState::Mutex { held_by } => held_by.map(|h| (o, h)),
                    _ => None,
                },
                OpKind::RwWrite(o) | OpKind::RwRead(o) => match &inner.objects[o].state {
                    ObjState::Rw { writer, readers } => writer
                        .map(|h| (o, h))
                        .or_else(|| readers.first().map(|&h| (o, h))),
                    _ => None,
                },
                _ => None,
            };
            if let Some(edge) = holder {
                wants.insert(tid, edge);
            }
        }
    }
    // Cycle detection over the waits-for graph, in tid order so the
    // rendered cycle is deterministic.
    let mut starts: Vec<Tid> = wants.keys().copied().collect();
    starts.sort_unstable();
    for start in starts {
        let mut seen = vec![start];
        let mut cur = start;
        while let Some(&(_, next)) = wants.get(&cur) {
            if next == start {
                seen.push(start);
                let cycle: Vec<String> = seen
                    .windows(2)
                    .map(|w| {
                        let (obj, _) = wants[&w[0]];
                        format!(
                            "{} wants {} ({}), ",
                            name(w[0]),
                            inner.objects[obj].name,
                            held_desc(w[0])
                        )
                    })
                    .collect();
                return Stuck {
                    code: "CCK-001",
                    message: format!("lock-order cycle: {}", cycle.concat()),
                };
            }
            if seen.contains(&next) {
                break;
            }
            seen.push(next);
            cur = next;
        }
    }
    // Lost wakeup: someone is parked on a condvar and nothing can run.
    let cond_waiters: Vec<Tid> = inner
        .threads
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.state, TState::CondWait))
        .map(|(t, _)| t)
        .collect();
    if !cond_waiters.is_empty() {
        let on: Vec<String> = cond_waiters
            .iter()
            .map(|&t| {
                let cv = inner
                    .objects
                    .iter()
                    .find(|o| {
                        matches!(&o.state, ObjState::Cond { waiters }
                            if waiters.iter().any(|(w, _)| *w == t))
                    })
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "condvar".to_string());
                format!("{} stuck in wait on {cv}", name(t))
            })
            .collect();
        return Stuck {
            code: "CCK-002",
            message: format!(
                "lost wakeup: {}; every thread that could have notified has exited or blocked",
                on.join(", ")
            ),
        };
    }
    // Generic: blocked joins / lock waits without a detected cycle.
    let blocked: Vec<String> = inner
        .threads
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.state, TState::Pending(_)))
        .map(|(t, s)| {
            let what = match s.state {
                TState::Pending(op) => format!("{:?}", op.kind),
                _ => unreachable!(),
            };
            format!("{} blocked at {what} ({})", name(t), held_desc(t))
        })
        .collect();
    Stuck {
        code: "CCK-001",
        message: format!("deadlock with no runnable thread: {}", blocked.join("; ")),
    }
}

/// Render a human-readable schedule (object names resolved) for a
/// finding message.
pub(crate) fn render_schedule(inner: &ExecInner, trace: &Trace) -> String {
    let mut lines = Vec::new();
    for (i, step) in trace.steps.iter().enumerate() {
        let kind = match step.kind {
            StepKind::Run => "run",
            StepKind::FaultPanic => "inject-panic",
            StepKind::Spurious => "spurious-wake",
        };
        let tname = inner
            .threads
            .get(step.tid)
            .map(|t| t.name.clone())
            .unwrap_or_default();
        lines.push(format!("  step {i}: {kind} thread {} {tname}", step.tid));
    }
    lines.join("\n")
}
