//! Replayable schedule traces.
//!
//! A trace is the exact sequence of scheduler choices of one
//! execution: which thread ran at each choice point, whether a fault
//! point was driven into its panic arm, and which condvar waiters
//! were spuriously woken. Together with the seed it pins the entire
//! execution — [`Checker::replay`](crate::Checker::replay) re-runs
//! the same closure under the same choices and must reproduce the
//! same finding (the determinism CI asserts exactly that).

/// How one choice point was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// The thread's pending operation ran normally.
    Run,
    /// The thread's pending fault point was driven into its panic arm.
    FaultPanic,
    /// The thread was spuriously woken from a condvar wait.
    Spurious,
}

/// One resolved choice point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The chosen thread.
    pub tid: usize,
    /// How the choice was resolved.
    pub kind: StepKind,
}

/// A full schedule: the choice sequence of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Choice points in execution order.
    pub steps: Vec<Step>,
}

const PREFIX: &str = "cck1:";

impl Trace {
    /// Compact encoding, e.g. `cck1:t0.t1.p2.w1.t1`.
    pub fn encode(&self) -> String {
        let mut out = String::from(PREFIX);
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            let c = match s.kind {
                StepKind::Run => 't',
                StepKind::FaultPanic => 'p',
                StepKind::Spurious => 'w',
            };
            out.push(c);
            out.push_str(&s.tid.to_string());
        }
        out
    }

    /// Parse an [`encode`](Self::encode)d trace.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let body = text
            .strip_prefix(PREFIX)
            .ok_or_else(|| format!("trace must start with {PREFIX:?}"))?;
        let mut steps = Vec::new();
        if body.is_empty() {
            return Ok(Trace { steps });
        }
        for tok in body.split('.') {
            let (kind, digits) = tok.split_at(1);
            let kind = match kind {
                "t" => StepKind::Run,
                "p" => StepKind::FaultPanic,
                "w" => StepKind::Spurious,
                other => return Err(format!("unknown step kind {other:?} in {tok:?}")),
            };
            let tid: usize = digits
                .parse()
                .map_err(|_| format!("bad thread id in {tok:?}"))?;
            steps.push(Step { tid, kind });
        }
        Ok(Trace { steps })
    }

    /// Number of choice points.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty schedule.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let t = Trace {
            steps: vec![
                Step {
                    tid: 0,
                    kind: StepKind::Run,
                },
                Step {
                    tid: 2,
                    kind: StepKind::FaultPanic,
                },
                Step {
                    tid: 1,
                    kind: StepKind::Spurious,
                },
            ],
        };
        let enc = t.encode();
        assert_eq!(enc, "cck1:t0.p2.w1");
        assert_eq!(Trace::parse(&enc).unwrap(), t);
        assert_eq!(Trace::parse("cck1:").unwrap(), Trace::default());
        assert!(Trace::parse("nope").is_err());
        assert!(Trace::parse("cck1:x3").is_err());
    }
}
