//! Drop-in sync primitives with runtime model dispatch.
//!
//! Every type here *contains* the real `std::sync` primitive and uses
//! it directly whenever the current OS thread is not a model thread —
//! production code pays one thread-local read per operation and is
//! otherwise bit-identical to plain `std::sync`. Inside a model
//! execution (under [`Checker::check`](crate::Checker::check)) each
//! operation becomes a scheduler yield point: the thread announces
//! the op, parks, and performs the real-world effect only once the
//! controller grants it. The real lock is therefore only ever taken
//! when the model says it is free, so model threads never contend on
//! the real primitive and the model's view stays authoritative.
//!
//! Primitives are bound to the execution they were created in (by
//! execution id); objects created outside any model — globals,
//! leaked fixtures — transparently fall back to real `std` behaviour
//! even when touched from a model thread.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex as StdMutex};

use crate::sched::{self, CodedViolation, Execution, Grant, ObjId, ObjState, Op, OpKind, Tid};

/// The model binding of one primitive: which execution owns it and
/// its object id there.
struct Binding {
    exec: std::sync::Weak<Execution>,
    exec_id: u64,
    obj: ObjId,
}

fn bind(state: ObjState, name: &str) -> Option<Binding> {
    sched::current().map(|(exec, _)| {
        let obj = exec.register_object(state, name.to_string());
        Binding {
            exec_id: exec.id,
            exec: Arc::downgrade(&exec),
            obj,
        }
    })
}

/// The current thread's model context *if* it matches `binding`'s
/// execution; `None` means "use the real primitive directly".
fn model_ctx(binding: &Option<Binding>) -> Option<(Arc<Execution>, Tid, ObjId)> {
    let b = binding.as_ref()?;
    let (exec, tid) = sched::current()?;
    if exec.id != b.exec_id {
        return None;
    }
    let bound = b.exec.upgrade()?;
    debug_assert!(Arc::ptr_eq(&bound, &exec));
    Some((exec, tid, b.obj))
}

/// Announce `op` and obey the grant (proceed / injected panic /
/// cancellation unwind).
fn yield_op(exec: &Execution, tid: Tid, op: Op) {
    sched::obey(exec.op(tid, op));
}

// ---------------------------------------------------------------- Mutex

/// A mutual-exclusion lock; `std::sync::Mutex` in production, a
/// modeled yield point under the checker.
pub struct Mutex<T> {
    real: StdMutex<T>,
    binding: Option<Binding>,
}

/// RAII guard for [`Mutex`]; releasing it is itself a yield point.
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex named for diagnostics (deadlock findings print
    /// the name).
    pub fn new_named(value: T, name: &str) -> Self {
        Mutex {
            real: StdMutex::new(value),
            binding: bind(ObjState::Mutex { held_by: None }, name),
        }
    }

    /// Create an anonymous mutex.
    pub fn new(value: T) -> Self {
        Self::new_named(value, "mutex")
    }

    /// Acquire the lock, blocking (in the model: parking until the
    /// scheduler grants an enabled acquisition).
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
            yield_op(&exec, tid, Op::new(OpKind::Lock(obj)));
        }
        match self.real.lock() {
            Ok(g) => Ok(MutexGuard {
                guard: Some(g),
                mutex: self,
            }),
            Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                guard: Some(poisoned.into_inner()),
                mutex: self,
            })),
        }
    }

    /// Acquire the lock, recovering from poisoning — the house
    /// convention for locks whose protected state stays valid across
    /// a panic (counters, maps with per-entry invariants).
    pub fn lock_recovered(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("data", &self.real).finish()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard first, then tell the model: the real
        // lock must be free before another model thread is granted it.
        self.guard.take();
        if let Some((exec, tid, obj)) = model_ctx(&self.mutex.binding) {
            if std::thread::panicking() {
                // Unwinding (injected fault or violation): apply the
                // model release without creating a choice point, so
                // teardown cannot double-panic.
                exec.force_unlock(tid, obj);
            } else {
                yield_op(&exec, tid, Op::new(OpKind::Unlock(obj)));
            }
        }
    }
}

// -------------------------------------------------------------- Condvar

/// A condition variable; `std::sync::Condvar` in production, modeled
/// (with scheduler-injected spurious wakeups) under the checker.
pub struct Condvar {
    real: std::sync::Condvar,
    binding: Option<Binding>,
}

impl Condvar {
    /// Create a condvar named for diagnostics.
    pub fn new_named(name: &str) -> Self {
        Condvar {
            real: std::sync::Condvar::new(),
            binding: bind(ObjState::Cond { waiters: vec![] }, name),
        }
    }

    /// Create an anonymous condvar.
    pub fn new() -> Self {
        Self::new_named("condvar")
    }

    /// Release `guard`'s mutex and wait for a notification (or, in
    /// the model, a scheduler-injected spurious wakeup). As with
    /// `std`, re-check the predicate in a loop.
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> std::sync::LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        if let Some((exec, tid, cv)) = model_ctx(&self.binding) {
            if let Some((_, _, mobj)) = model_ctx(&mutex.binding) {
                // Announce the wait; the grant atomically (in model
                // state) releases the mutex and registers us as a
                // waiter, then hands the baton back once so we can
                // drop the real guard before parking.
                yield_op(&exec, tid, Op::new(OpKind::Wait { cv, mutex: mobj }));
                guard.guard.take();
                // The model already released the mutex at the Wait
                // grant; the spent guard must not announce a second
                // unlock when it drops.
                std::mem::forget(guard);
                sched::obey(exec.park_for_reacquire(tid));
                // Woken: the scheduler rewrote our state to a pending
                // Lock(mobj) and granted it; retake the real lock.
                return match mutex.real.lock() {
                    Ok(g) => Ok(MutexGuard {
                        guard: Some(g),
                        mutex,
                    }),
                    Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                        guard: Some(poisoned.into_inner()),
                        mutex,
                    })),
                };
            }
        }
        let real_guard = guard.guard.take().expect("guard taken");
        std::mem::forget(guard);
        match self.real.wait(real_guard) {
            Ok(g) => Ok(MutexGuard {
                guard: Some(g),
                mutex,
            }),
            Err(poisoned) => Err(std::sync::PoisonError::new(MutexGuard {
                guard: Some(poisoned.into_inner()),
                mutex,
            })),
        }
    }

    /// [`wait`](Self::wait) with poison recovery.
    pub fn wait_recovered<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiter (FIFO-deterministic in the model).
    pub fn notify_one(&self) {
        if let Some((exec, tid, cv)) = model_ctx(&self.binding) {
            yield_op(&exec, tid, Op::new(OpKind::NotifyOne(cv)));
        }
        self.real.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if let Some((exec, tid, cv)) = model_ctx(&self.binding) {
            yield_op(&exec, tid, Op::new(OpKind::NotifyAll(cv)));
        }
        self.real.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

// --------------------------------------------------------------- RwLock

/// A reader-writer lock; `std::sync::RwLock` in production, modeled
/// under the checker (writer-exclusive, no reader/writer fairness
/// policy beyond the explored schedules).
pub struct RwLock<T> {
    real: std::sync::RwLock<T>,
    binding: Option<Binding>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock named for diagnostics.
    pub fn new_named(value: T, name: &str) -> Self {
        RwLock {
            real: std::sync::RwLock::new(value),
            binding: bind(
                ObjState::Rw {
                    writer: None,
                    readers: vec![],
                },
                name,
            ),
        }
    }

    /// Create an anonymous reader-writer lock.
    pub fn new(value: T) -> Self {
        Self::new_named(value, "rwlock")
    }

    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::LockResult<RwLockReadGuard<'_, T>> {
        if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
            yield_op(&exec, tid, Op::new(OpKind::RwRead(obj)));
        }
        match self.real.read() {
            Ok(g) => Ok(RwLockReadGuard {
                guard: Some(g),
                lock: self,
            }),
            Err(poisoned) => Err(std::sync::PoisonError::new(RwLockReadGuard {
                guard: Some(poisoned.into_inner()),
                lock: self,
            })),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
            yield_op(&exec, tid, Op::new(OpKind::RwWrite(obj)));
        }
        match self.real.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                guard: Some(g),
                lock: self,
            }),
            Err(poisoned) => Err(std::sync::PoisonError::new(RwLockWriteGuard {
                guard: Some(poisoned.into_inner()),
                lock: self,
            })),
        }
    }

    /// [`read`](Self::read) with poison recovery.
    pub fn read_recovered(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(|e| e.into_inner())
    }

    /// [`write`](Self::write) with poison recovery.
    pub fn write_recovered(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some((exec, tid, obj)) = model_ctx(&self.lock.binding) {
            if std::thread::panicking() {
                exec.force_unlock(tid, obj);
            } else {
                yield_op(&exec, tid, Op::new(OpKind::RwReadUnlock(obj)));
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if let Some((exec, tid, obj)) = model_ctx(&self.lock.binding) {
            if std::thread::panicking() {
                exec.force_unlock(tid, obj);
            } else {
                yield_op(&exec, tid, Op::new(OpKind::RwWriteUnlock(obj)));
            }
        }
    }
}

// -------------------------------------------------------------- Atomics

macro_rules! modeled_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// An atomic integer; plain `std` atomic in production, a
        /// yield point per operation under the checker. Explored
        /// under sequential consistency; the `Ordering` each call
        /// site passes is recorded for diagnostics. `compare_exchange_weak`
        /// is modeled as strong (no spurious CAS failures).
        pub struct $name {
            real: $std,
            binding: Option<Binding>,
        }

        impl $name {
            /// Create an atomic named for diagnostics.
            pub fn new_named(value: $prim, name: &str) -> Self {
                $name {
                    real: <$std>::new(value),
                    binding: bind(ObjState::Atomic, name),
                }
            }

            /// Create an anonymous atomic.
            pub fn new(value: $prim) -> Self {
                Self::new_named(value, "atomic")
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicLoad(obj), ord));
                }
                self.real.load(ord)
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, ord: Ordering) {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicStore(obj), ord));
                }
                self.real.store(value, ord)
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, value: $prim, ord: Ordering) -> $prim {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmwCommute(obj), ord));
                }
                self.real.fetch_add(value, ord)
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, value: $prim, ord: Ordering) -> $prim {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmwCommute(obj), ord));
                }
                self.real.fetch_sub(value, ord)
            }

            /// Atomic max; returns the previous value.
            pub fn fetch_max(&self, value: $prim, ord: Ordering) -> $prim {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmw(obj), ord));
                }
                self.real.fetch_max(value, ord)
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmw(obj), ord));
                }
                self.real.swap(value, ord)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmw(obj), success));
                }
                self.real.compare_exchange(current, new, success, failure)
            }

            /// Atomic compare-exchange, weak form. Modeled as strong:
            /// the checker never injects spurious CAS failures, so a
            /// retry loop correct under this model is correct under
            /// the strong form (weak-form spurious failures only add
            /// retries).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if let Some((exec, tid, obj)) = model_ctx(&self.binding) {
                    yield_op(&exec, tid, Op::atomic(OpKind::AtomicRmw(obj), success));
                }
                self.real
                    .compare_exchange_weak(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).field(&self.real).finish()
            }
        }
    };
}

modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

// -------------------------------------------------------------- thread

/// Model-aware threading: real `std::thread` in production, model
/// threads (participating in schedule exploration) under the checker.
pub mod thread {
    use super::*;

    /// The model half of a [`JoinHandle`]: which execution and thread
    /// to join, and the slot the thread's return value lands in.
    type ModelJoin<T> = (Arc<Execution>, Tid, Arc<StdMutex<Option<T>>>);

    /// Handle to a spawned thread; joining is a yield point in the
    /// model.
    pub struct JoinHandle<T> {
        real: Option<std::thread::JoinHandle<T>>,
        model: Option<ModelJoin<T>>,
    }

    /// Spawn a thread running `f`. Inside a model execution the
    /// thread is a model thread: it starts parked and runs only when
    /// scheduled.
    pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
        spawn_named("worker", f)
    }

    /// [`spawn`] with a diagnostic name (findings print it).
    pub fn spawn_named<T: Send + 'static>(
        name: &str,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        if let Some((exec, _)) = sched::current() {
            let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let tid = exec.spawn_thread(name.to_string(), move || {
                let value = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            });
            JoinHandle {
                real: None,
                model: Some((exec, tid, result)),
            }
        } else {
            JoinHandle {
                real: Some(
                    std::thread::Builder::new()
                        .name(name.to_string())
                        .spawn(f)
                        .expect("spawn thread"),
                ),
                model: None,
            }
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; returns `Err` if it
        /// panicked (matching `std::thread::JoinHandle::join`).
        pub fn join(mut self) -> std::thread::Result<T> {
            if let Some((exec, tid, result)) = self.model.take() {
                let (ctx_exec, me) =
                    sched::current().expect("model JoinHandle joined from a non-model thread");
                assert_eq!(ctx_exec.id, exec.id, "joined across executions");
                yield_op(&ctx_exec, me, Op::new(OpKind::Join(tid)));
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread panicked")),
                }
            } else {
                self.real.take().expect("join handle consumed").join()
            }
        }
    }
}

// -------------------------------------------------------------- region

/// Markers for long-running compute regions.
pub mod region {
    use super::*;

    /// Run `f` as a compute region. In production this is a plain
    /// call. Under the checker it emits warning `CCK-101` when the
    /// current thread enters while holding any modeled lock — the
    /// pattern that turns a slow tuner search into a lock convoy.
    pub fn compute<R>(f: impl FnOnce() -> R) -> R {
        if let Some((exec, tid)) = sched::current() {
            let held = exec.held_by(tid);
            if !held.is_empty() {
                let locks: Vec<String> = held
                    .iter()
                    .map(|(name, step)| format!("{name} (acquired at step {step})"))
                    .collect();
                exec.warn(
                    "CCK-101",
                    format!("compute region entered holding {}", locks.join(", ")),
                );
            }
        }
        f()
    }
}

// --------------------------------------------------------------- fault

/// Fault-injection points.
pub mod fault {
    use super::*;

    /// A named fault site. In production this is a no-op. Under the
    /// checker it is a choice point with two arms: proceed, or panic
    /// here (unwinding with an `InjectedFault` payload) — so every
    /// RAII cleanup and poison-recovery path is explored like any
    /// other schedule.
    pub fn point(tag: u32) {
        if let Some((exec, tid)) = sched::current() {
            match exec.op(tid, Op::new(OpKind::Fault(tag))) {
                Grant::Proceed => {}
                Grant::Panic => std::panic::panic_any(sched::InjectedFault(tag)),
                cancel => sched::obey(cancel),
            }
        }
    }
}

/// Raise a coded model violation: under the checker this unwinds the
/// current model thread and surfaces `code` as an error finding with
/// the current schedule as its counterexample trace. Outside a model
/// it panics with the code in the message.
pub fn violation(code: &str, message: impl Into<String>) -> ! {
    let message = message.into();
    if sched::current().is_some() {
        std::panic::panic_any(CodedViolation {
            code: code.to_string(),
            message,
        });
    }
    panic!("{code}: {message}");
}

/// Assert a model invariant; on failure raises [`violation`] with
/// `code` so the checker reports a coded finding instead of CCK-900.
#[macro_export]
macro_rules! cck_assert {
    ($cond:expr, $code:expr, $($arg:tt)+) => {
        if !$cond {
            $crate::violation($code, format!($($arg)+));
        }
    };
}

/// Grant-free model release used while unwinding (no choice point).
impl Execution {
    pub(crate) fn force_unlock(&self, tid: Tid, obj: ObjId) {
        let mut inner = self.inner.lock().expect("execution state");
        match &mut inner.objects[obj].state {
            ObjState::Mutex { held_by } if *held_by == Some(tid) => {
                *held_by = None;
            }
            ObjState::Rw { writer, readers } => {
                if *writer == Some(tid) {
                    *writer = None;
                } else if let Some(pos) = readers.iter().position(|&t| t == tid) {
                    readers.remove(pos);
                }
            }
            _ => {}
        }
        inner.held[tid].retain(|&(h, _)| h != obj);
        self.cv.notify_all();
    }
}

// Re-export so ported code can `use conc_check::sync::Ordering`.
pub use std::sync::atomic::Ordering as AtomicOrdering;
