//! Bounded-exhaustive schedule exploration.
//!
//! [`Checker::check`] runs the checked closure once per schedule,
//! driving a depth-first search over the choice points the scheduler
//! exposes (which pending operation runs, whether a fault point
//! panics, which condvar waiter wakes spuriously). Sleep sets prune
//! schedules that only commute independent operations — two
//! `fetch_add`s on the same counter, operations on unrelated objects
//! — so the search visits one representative per Mazurkiewicz trace
//! instead of every interleaving.
//!
//! Exploration is deterministic: the same closure under the same
//! [`Checker`] configuration (budget, seed, spurious setting) visits
//! the same schedules in the same order and reports the same first
//! finding with the same trace. [`Checker::replay`] re-runs exactly
//! one recorded schedule for step-by-step reproduction.

use std::collections::HashSet;
use std::sync::Arc;

use crate::finding::{CheckReport, Finding};
use crate::sched::{self, Choice, Execution, TState};
use crate::trace::Trace;

/// One explored choice point in the DFS stack, persistent across
/// executions (prefix determinism guarantees the same choices appear
/// at the same depth on every re-run).
struct Frame {
    /// Every choice available here, in seed-rotated order.
    all: Vec<Choice>,
    /// Choices not to explore from this node: inherited from the
    /// parent (covered through a commuted ordering) plus siblings
    /// whose subtrees are already done.
    sleep: Vec<Choice>,
    /// The choice the current/next execution takes here.
    chosen: Option<Choice>,
}

/// Configuration for one model-checking run. All knobs have
/// deterministic effect; two identical `Checker`s produce identical
/// reports for the same closure.
#[derive(Clone, Debug)]
pub struct Checker {
    /// Maximum executions (completed + pruned) before exploration
    /// stops with `exhausted: false`.
    pub budget: u64,
    /// Inject spurious condvar wakeups as schedule choices.
    pub spurious: bool,
    /// Per-thread spurious-wakeup cap per execution.
    pub max_spurious: u32,
    /// Rotates choice order per depth; `0` keeps announcement order.
    /// Findings embed the seed so traces replay bit-identically.
    pub seed: u64,
    /// Per-execution choice-point cap; exceeding it is reported as
    /// `CCK-900` (runaway schedule, usually an unmodeled spin loop).
    pub max_steps: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            budget: 4096,
            spurious: true,
            max_spurious: 1,
            seed: 0,
            max_steps: 4000,
        }
    }
}

/// What one execution produced.
struct RunResult {
    trace: Trace,
    finding: Option<Finding>,
    warnings: Vec<(String, String)>,
    /// True when the run was cut because every available choice was
    /// already covered through a commuted ordering.
    pruned: bool,
}

fn rotate(mut v: Vec<Choice>, seed: u64, depth: usize) -> Vec<Choice> {
    if seed != 0 && v.len() > 1 {
        let r =
            ((seed ^ depth as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % v.len();
        v.rotate_left(r);
    }
    v
}

impl Checker {
    /// A checker with the given schedule budget and defaults
    /// otherwise.
    pub fn with_budget(budget: u64) -> Self {
        Checker {
            budget,
            ..Checker::default()
        }
    }

    /// Set the exploration seed (choice-order rotation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable spurious-wakeup injection.
    pub fn spurious(mut self, on: bool) -> Self {
        self.spurious = on;
        self
    }

    /// Explore schedules of `f` until the space is exhausted, the
    /// budget runs out, or the first error finding appears.
    ///
    /// `f` is invoked once per schedule as model thread 0; any state
    /// it checks must be created inside the closure. Use
    /// [`sync`](crate::sync) primitives and
    /// [`sync::thread::spawn`](crate::sync::thread::spawn) for
    /// everything the model should interleave.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> CheckReport {
        sched::install_panic_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut frames: Vec<Frame> = Vec::new();
        let mut report = CheckReport {
            seed: self.seed,
            exhausted: true,
            ..CheckReport::default()
        };
        let mut warn_seen: HashSet<(String, String)> = HashSet::new();
        loop {
            if report.schedules + report.pruned >= self.budget {
                report.exhausted = false;
                break;
            }
            let run = self.run_one(&f, &mut frames, None);
            report.max_depth = report.max_depth.max(run.trace.len());
            if run.pruned {
                report.pruned += 1;
            } else {
                report.schedules += 1;
            }
            for w in run.warnings {
                if warn_seen.insert(w.clone()) {
                    report.findings.push(Finding {
                        code: w.0,
                        message: w.1,
                        trace: run.trace.clone(),
                    });
                }
            }
            if let Some(found) = run.finding {
                report.findings.push(found);
                report.exhausted = false;
                break;
            }
            if !backtrack(&mut frames) {
                break;
            }
        }
        report
    }

    /// Re-run exactly one schedule, encoded as by
    /// [`Trace::encode`](crate::Trace::encode). Reproduces the
    /// finding the original exploration reported at that trace.
    pub fn replay(&self, trace: &str, f: impl Fn() + Send + Sync + 'static) -> CheckReport {
        sched::install_panic_hook();
        let parsed = match Trace::parse(trace) {
            Ok(t) => t,
            Err(e) => {
                return CheckReport {
                    seed: self.seed,
                    findings: vec![Finding {
                        code: "CCK-900".to_string(),
                        message: format!("unparseable trace: {e}"),
                        trace: Trace::default(),
                    }],
                    ..CheckReport::default()
                }
            }
        };
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut frames = Vec::new();
        let run = self.run_one(&f, &mut frames, Some(&parsed));
        let mut report = CheckReport {
            seed: self.seed,
            schedules: 1,
            exhausted: false,
            max_depth: run.trace.len(),
            ..CheckReport::default()
        };
        for w in run.warnings {
            report.findings.push(Finding {
                code: w.0,
                message: w.1,
                trace: run.trace.clone(),
            });
        }
        if let Some(found) = run.finding {
            report.findings.push(found);
        }
        report
    }

    /// Drive one execution to a terminal state (done, pruned, or
    /// finding), following `frames` prescriptions (exploration) or a
    /// fixed trace (replay) and extending `frames` at new depths.
    fn run_one(
        &self,
        f: &Arc<dyn Fn() + Send + Sync>,
        frames: &mut Vec<Frame>,
        replay: Option<&Trace>,
    ) -> RunResult {
        let exec = Execution::new();
        let root = Arc::clone(f);
        exec.spawn_thread("main".to_string(), move || root());
        let mut trace = Trace::default();
        let mut finding = None;
        let mut pruned = false;
        loop {
            let mut inner = exec.settle();
            if let Some((code, message)) = inner.violation.take() {
                let message = format!(
                    "{message}\nschedule ({}):\n{}",
                    trace,
                    sched::render_schedule(&inner, &trace)
                );
                finding = Some(Finding {
                    code,
                    message,
                    trace: trace.clone(),
                });
                break;
            }
            let live = inner
                .threads
                .iter()
                .any(|t| !matches!(t.state, TState::Finished | TState::Panicked));
            if !live {
                break;
            }
            if trace.len() >= self.max_steps {
                finding = Some(Finding {
                    code: "CCK-900".to_string(),
                    message: format!(
                        "schedule exceeded {} choice points without terminating \
                         (unmodeled spin loop or runaway spawn?)",
                        self.max_steps
                    ),
                    trace: trace.clone(),
                });
                break;
            }
            let avail = sched::choices(&inner, self.spurious, self.max_spurious);
            if avail.is_empty() {
                let stuck = sched::classify_stuck(&inner);
                let message = format!(
                    "{}\nschedule ({}):\n{}",
                    stuck.message,
                    trace,
                    sched::render_schedule(&inner, &trace)
                );
                finding = Some(Finding {
                    code: stuck.code.to_string(),
                    message,
                    trace: trace.clone(),
                });
                break;
            }
            let depth = trace.len();
            let choice = if let Some(prescribed) = replay {
                match prescribed.steps.get(depth) {
                    None => avail[0].clone(),
                    Some(step) => match avail.iter().find(|c| c.step() == *step) {
                        Some(c) => c.clone(),
                        None => {
                            finding = Some(Finding {
                                code: "CCK-900".to_string(),
                                message: format!(
                                    "replay diverged at step {depth}: {step:?} is not \
                                     among the available choices (did the code change?)"
                                ),
                                trace: trace.clone(),
                            });
                            break;
                        }
                    },
                }
            } else if depth < frames.len() {
                let want = frames[depth].chosen.clone().expect("prescribed frame");
                match avail.iter().find(|c| **c == want) {
                    Some(c) => c.clone(),
                    None => {
                        finding = Some(Finding {
                            code: "CCK-900".to_string(),
                            message: format!(
                                "nondeterministic choice set at step {depth}: the \
                                 prescribed choice vanished on re-run \
                                 (checked closure must be deterministic)"
                            ),
                            trace: trace.clone(),
                        });
                        break;
                    }
                }
            } else {
                let inherited: Vec<Choice> = match frames.last() {
                    None => Vec::new(),
                    Some(parent) => {
                        let pc = parent.chosen.as_ref().expect("parent chosen");
                        parent
                            .sleep
                            .iter()
                            .filter(|z| z.op.independent(&pc.op))
                            .cloned()
                            .collect()
                    }
                };
                let ordered = rotate(avail, self.seed, depth);
                match ordered.iter().find(|c| !inherited.contains(c)).cloned() {
                    Some(c) => {
                        frames.push(Frame {
                            all: ordered,
                            sleep: inherited,
                            chosen: Some(c.clone()),
                        });
                        c
                    }
                    None => {
                        pruned = true;
                        break;
                    }
                }
            };
            sched::apply(&exec, &mut inner, &choice, trace.len());
            trace.steps.push(choice.step());
            drop(inner);
        }
        let warnings = exec.teardown();
        RunResult {
            trace,
            finding,
            warnings,
            pruned,
        }
    }
}

/// Advance the DFS stack to the next unexplored schedule; false when
/// the whole bounded space is done.
fn backtrack(frames: &mut Vec<Frame>) -> bool {
    while let Some(top) = frames.last_mut() {
        if let Some(c) = top.chosen.take() {
            top.sleep.push(c);
        }
        let next = top.all.iter().find(|c| !top.sleep.contains(c)).cloned();
        if let Some(c) = next {
            top.chosen = Some(c);
            return true;
        }
        frames.pop();
    }
    false
}
