//! Deterministic concurrency model checking for the serving layer.
//!
//! `conc-check` is a std-only, loom-style model checker: code written
//! against [`sync`]'s primitives (`Mutex`, `Condvar`, `RwLock`,
//! atomics, `thread::spawn`) runs unchanged in production — each
//! wrapper *contains* the real `std::sync` primitive and uses it
//! directly outside a model — while under [`Checker::check`] every
//! operation becomes a scheduler choice point and the checker
//! explores the bounded-exhaustive space of interleavings, plus
//! spurious condvar wakeups and injected panics at
//! [`fault::point`] sites.
//!
//! Violations surface as coded findings (`CCK-001` deadlock with
//! acquisition stacks, `CCK-002` lost wakeup, `CCK-003` permit leak,
//! `CCK-004` torn counter, `CCK-005` non-linearizable single-flight,
//! `CCK-101` lock held across compute — see [`REGISTRY`]), each with
//! a seed-replayable counterexample trace: feed
//! [`Finding::trace`] back through [`Checker::replay`] and the exact
//! schedule re-runs step by step.
//!
//! ```
//! use conc_check::{Checker, sync::{Mutex, thread}};
//! use std::sync::Arc;
//!
//! let report = Checker::with_budget(256).check(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let c = Arc::clone(&counter);
//!     let worker = thread::spawn(move || *c.lock_recovered() += 1);
//!     *counter.lock_recovered() += 1;
//!     worker.join().unwrap();
//!     assert_eq!(*counter.lock_recovered(), 2);
//! });
//! assert!(report.ok());
//! assert!(report.exhausted);
//! ```
//!
//! # Model guarantees and bounds
//!
//! - Exploration is serialized and deterministic: the same closure
//!   under the same [`Checker`] reports the same findings with the
//!   same traces, regardless of host scheduling.
//! - Atomics are explored under sequential consistency; the
//!   `Ordering` at each call site is recorded but not weakened, and
//!   `compare_exchange_weak` never fails spuriously. Bugs that only
//!   manifest under relaxed-memory reordering are out of scope.
//! - Sleep-set pruning drops schedules that merely commute
//!   independent operations (different objects, paired loads, paired
//!   `fetch_add`/`fetch_sub`); every Mazurkiewicz trace keeps at
//!   least one representative, so no reachable violation is lost.
//! - Only [`sync`] primitives yield to the scheduler. Raw
//!   `std::sync` objects inside a model are invisible to it (and a
//!   raw lock parked across a yield point will hang the checker) —
//!   CI greps ported modules for exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod finding;
mod sched;
pub mod sync;
mod trace;

pub use checker::Checker;
pub use finding::{code_info, CheckReport, CodeInfo, Finding, Severity, REGISTRY};
pub use sync::{fault, region, violation};
pub use trace::{Step, StepKind, Trace};
