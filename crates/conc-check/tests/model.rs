//! End-to-end checks of the model itself: correct code explores
//! clean and exhausts its space; each classic concurrency bug,
//! deliberately planted, is caught with its catalog code and a
//! replayable counterexample trace.

use std::sync::Arc;

use conc_check::sync::{fault, thread, AtomicU64, Condvar, Mutex, RwLock};
use conc_check::{cck_assert, Checker, Severity};
use std::sync::atomic::Ordering;

#[test]
fn clean_mutex_counter_exhausts() {
    let report = Checker::with_budget(2048).check(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || *c.lock_recovered() += 1)
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(*counter.lock_recovered(), 3);
    });
    assert!(report.ok(), "findings: {:?}", report.findings);
    assert!(report.exhausted, "space should be fully explored");
    assert!(report.schedules > 1, "must interleave: {report:?}");
}

#[test]
fn lock_order_cycle_is_cck_001() {
    let report = Checker::with_budget(2048).check(|| {
        let a = Arc::new(Mutex::new_named(0u32, "lock-a"));
        let b = Arc::new(Mutex::new_named(0u32, "lock-b"));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock_recovered();
            let _gb = b2.lock_recovered();
        });
        {
            let _gb = b.lock_recovered();
            let _ga = a.lock_recovered();
        }
        let _ = t.join();
    });
    assert!(!report.ok());
    let finding = &report.errors()[0];
    assert_eq!(finding.code, "CCK-001");
    assert!(
        finding.message.contains("lock-a") && finding.message.contains("lock-b"),
        "deadlock must name both locks: {}",
        finding.message
    );
    assert!(
        finding.message.contains("acquired at step"),
        "deadlock must carry acquisition stacks: {}",
        finding.message
    );
}

#[test]
fn missing_notify_is_cck_002() {
    let report = Checker::with_budget(2048).spurious(false).check(|| {
        let pair = Arc::new((Mutex::new_named(false, "ready"), Condvar::new_named("cv")));
        let p = Arc::clone(&pair);
        let setter = thread::spawn(move || {
            // Tampered: flips the flag but never notifies.
            *p.0.lock_recovered() = true;
        });
        let mut ready = pair.0.lock_recovered();
        while !*ready {
            ready = pair.1.wait_recovered(ready);
        }
        drop(ready);
        let _ = setter.join();
    });
    assert!(!report.ok());
    let finding = &report.errors()[0];
    assert_eq!(finding.code, "CCK-002", "got: {finding}");
    assert!(
        finding.message.contains("lost wakeup"),
        "{}",
        finding.message
    );
}

#[test]
fn notify_all_with_wait_loop_is_clean_under_spurious_wakeups() {
    let report = Checker::with_budget(4096).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = Arc::clone(&pair);
        let setter = thread::spawn(move || {
            *p.0.lock_recovered() = true;
            p.1.notify_all();
        });
        let mut ready = pair.0.lock_recovered();
        while !*ready {
            ready = pair.1.wait_recovered(ready);
        }
        assert!(*ready);
        drop(ready);
        setter.join().unwrap();
    });
    assert!(report.ok(), "findings: {:?}", report.findings);
}

#[test]
fn wait_without_predicate_loop_is_caught() {
    // Tampered: `if` instead of `while` around the wait — a spurious
    // wakeup returns with the predicate still false.
    let report = Checker::with_budget(4096).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = Arc::clone(&pair);
        let setter = thread::spawn(move || {
            *p.0.lock_recovered() = true;
            p.1.notify_all();
        });
        let mut ready = pair.0.lock_recovered();
        if !*ready {
            ready = pair.1.wait_recovered(ready);
        }
        cck_assert!(
            *ready,
            "CCK-005",
            "woke with predicate still false (missing wait loop)"
        );
        drop(ready);
        let _ = setter.join();
    });
    assert!(!report.ok());
    assert_eq!(report.errors()[0].code, "CCK-005");
}

#[test]
fn leaked_permit_on_panic_is_cck_003_and_raii_version_is_clean() {
    // Tampered: manual acquire/release with a fault point between
    // them — the panic arm skips the release.
    let leaky = Checker::with_budget(2048).check(|| {
        let in_use = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&in_use);
        let worker = thread::spawn(move || {
            c.fetch_add(1, Ordering::AcqRel);
            fault::point(7);
            c.fetch_sub(1, Ordering::AcqRel);
        });
        let _ = worker.join();
        cck_assert!(
            in_use.load(Ordering::Acquire) == 0,
            "CCK-003",
            "permit leaked after worker exit"
        );
    });
    assert!(!leaky.ok());
    assert_eq!(leaky.errors()[0].code, "CCK-003");

    // Fixed: release in a drop guard, so the panic arm unwinds
    // through it.
    struct Permit(Arc<AtomicU64>);
    impl Drop for Permit {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let fixed = Checker::with_budget(2048).check(|| {
        let in_use = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&in_use);
        let worker = thread::spawn(move || {
            c.fetch_add(1, Ordering::AcqRel);
            let _permit = Permit(Arc::clone(&c));
            fault::point(7);
        });
        let _ = worker.join();
        cck_assert!(
            in_use.load(Ordering::Acquire) == 0,
            "CCK-003",
            "permit leaked after worker exit"
        );
    });
    assert!(fixed.ok(), "findings: {:?}", fixed.findings);
    assert!(fixed.exhausted);
}

#[test]
fn torn_counter_is_cck_004_and_fetch_add_is_clean() {
    // Tampered: load-then-store increment loses updates.
    let torn = Checker::with_budget(2048).check(|| {
        let hits = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&hits);
                thread::spawn(move || {
                    let v = h.load(Ordering::Relaxed);
                    h.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        cck_assert!(
            hits.load(Ordering::Relaxed) == 2,
            "CCK-004",
            "torn read-modify-write: expected 2 hits, saw {}",
            hits.load(Ordering::Relaxed)
        );
    });
    assert!(!torn.ok());
    assert_eq!(torn.errors()[0].code, "CCK-004");

    let clean = Checker::with_budget(2048).check(|| {
        let hits = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&hits);
                thread::spawn(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        cck_assert!(
            hits.load(Ordering::Relaxed) == 2,
            "CCK-004",
            "lost update with fetch_add"
        );
    });
    assert!(clean.ok(), "findings: {:?}", clean.findings);
    // Commuting fetch_adds should be recognized as independent.
    assert!(clean.pruned > 0, "sleep sets should prune: {clean:?}");
}

#[test]
fn lock_across_compute_region_warns_cck_101() {
    let report = Checker::with_budget(256).check(|| {
        let m = Arc::new(Mutex::new_named(0u32, "price-cache"));
        let g = m.lock_recovered();
        conc_check::region::compute(|| 1 + 1);
        drop(g);
    });
    assert!(report.ok(), "warning must not fail the check");
    let warnings = report.warnings();
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].code, "CCK-101");
    assert!(warnings[0].message.contains("price-cache"));
    assert_eq!(warnings[0].severity(), Severity::Warning);
}

#[test]
fn rwlock_readers_share_writers_exclude() {
    let report = Checker::with_budget(2048).check(|| {
        let table = Arc::new(RwLock::new(vec![1u64, 2, 3]));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = Arc::clone(&table);
                thread::spawn(move || t.read_recovered().len())
            })
            .collect();
        let w = Arc::clone(&table);
        let writer = thread::spawn(move || w.write_recovered().push(4));
        for r in readers {
            let n = r.join().unwrap();
            assert!(n == 3 || n == 4, "reader saw torn length {n}");
        }
        writer.join().unwrap();
        assert_eq!(table.read_recovered().len(), 4);
    });
    assert!(report.ok(), "findings: {:?}", report.findings);
}

#[test]
fn findings_replay_deterministically() {
    let scenario = || {
        let a = Arc::new(Mutex::new_named(0u32, "lock-a"));
        let b = Arc::new(Mutex::new_named(0u32, "lock-b"));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock_recovered();
            let _gb = b2.lock_recovered();
        });
        {
            let _gb = b.lock_recovered();
            let _ga = a.lock_recovered();
        }
        let _ = t.join();
    };
    let first = Checker::with_budget(2048).seed(42).check(scenario);
    let second = Checker::with_budget(2048).seed(42).check(scenario);
    assert_eq!(first, second, "same seed must reproduce bit-identically");
    let finding = first.errors()[0].clone();

    // The recorded trace replays to the same coded finding.
    let replayed = Checker::default()
        .seed(42)
        .replay(&finding.trace.encode(), scenario);
    assert!(!replayed.ok());
    assert_eq!(replayed.errors()[0].code, finding.code);

    // A different seed rotates the search but finds the same bug.
    let other = Checker::with_budget(2048).seed(7).check(scenario);
    assert!(!other.ok());
    assert_eq!(other.errors()[0].code, "CCK-001");
}

#[test]
fn production_path_uses_real_std_sync() {
    // Outside any model execution the primitives are plain std: this
    // runs threaded on the host with no scheduler involved.
    let counter = Arc::new(Mutex::new(0u64));
    let hits = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&counter);
            let h = Arc::clone(&hits);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    *c.lock_recovered() += 1;
                    h.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*counter.lock_recovered(), 400);
    assert_eq!(hits.load(Ordering::Relaxed), 400);
    conc_check::region::compute(|| ());
    conc_check::fault::point(1);
}
