#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Std-only property-testing stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API surface its property tests use: the [`proptest!`]
//! macro with `pat in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, range and [`prop::sample::select`] strategies,
//! [`prop::collection::vec`], tuple strategies, `prop_map`, and
//! [`any`]`::<bool>()`.
//!
//! No shrinking: a failing case reports its case number and the
//! generated inputs. Case generation is a pure hash of the test's module
//! path, name and case index, so failures reproduce bit-identically
//! across runs, machines and thread counts.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of test `name` — a pure function of both.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= case as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// How a property-test case ends early.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject,
}

impl TestCaseError {
    /// A failed assertion with `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// Type of value produced.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies: a `&str` pattern like `"[a-z]{1,12}"` is itself a
/// strategy producing `String`s. Only the simple-regex subset the
/// in-repo tests use is supported: a sequence of literal characters and
/// `[c1-c2...]` classes, each optionally followed by `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in string strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        for c in chars[j]..=chars[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition count `{n}` or `{m,n}`.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {{ in string strategy")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad repeat lower bound"),
                        n.parse::<usize>().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "empty repeat range in string strategy");
            let len = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
            for _ in 0..len {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over all values of a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Named strategy modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification for [`vec()`]: a fixed size or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        /// Strategy for vectors whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi_exclusive - self.size.lo;
                let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of `size.into()` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T: Clone + Debug> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len())].clone()
            }
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "cannot select from an empty set");
            Select { options }
        }
    }
}

/// Everything a property test imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert `cond`, failing the current case (not the process) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two expressions are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert two expressions are unequal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: `pat in strategy` bindings, optional
/// `#![proptest_config(..)]` header, body with `prop_assert!` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strategy,)+);
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(test_name, case);
                let values = $crate::Strategy::generate(&strategy, &mut rng);
                let rendered = format!("{:?}", values);
                let ($($pat,)+) = values;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case}/{total} failed for input {rendered}: {msg}",
                            total = config.cases
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, prop::sample::select(vec![2usize, 4, 8]))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in arb_pair(),
            v in prop::collection::vec(0u64..100, 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!([2, 4, 8].contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
            let doubled = arb_pair().prop_map(|(x, y)| x * y);
            let mut rng = TestRng::for_case("compose", 0);
            let d = Strategy::generate(&doubled, &mut rng);
            prop_assert!(d >= 2, "{d} with flag {flag}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
    }

    proptest! {
        #[test]
        fn single_binding_works(x in 0u64..5) {
            prop_assert!(x < 5);
        }

        #[test]
        fn string_patterns_respect_class_and_length(s in "[a-z]{1,12}", t in "x[0-8]{3}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.len() == 4 && t.starts_with('x'));
            prop_assert!(t[1..].chars().all(|c| ('0'..='8').contains(&c)));
        }
    }
}
