//! [`HotKeyLru`]: a bounded least-recently-used response cache keyed
//! by [`TuneKey`](stencil_tunestore::TuneKey) hash.
//!
//! Under Zipfian traffic a handful of hot keys dominate; serving them
//! from a small in-memory map ahead of the JSONL tier turns the common
//! case into one mutex acquisition and a `HashMap` probe — no shard
//! RwLock, no store counters, no record→response repacking. The cache
//! is strictly bounded: inserting into a full cache evicts the least
//! recently *touched* entry (gets refresh recency), and every hit,
//! miss, insert and eviction is counted.

use std::collections::{HashMap, VecDeque};

use conc_check::sync::Mutex;

use stencil_tunestore::TuneResponse;

/// Counter snapshot of a [`HotKeyLru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a disabled cache).
    pub misses: u64,
    /// Responses inserted.
    pub inserts: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
}

struct Entry {
    response: TuneResponse,
    /// The recency tick of this entry's newest queue slot; older queue
    /// slots for the same key are stale and skipped at eviction time.
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// Recency queue of `(key_hash, tick)` — lazily invalidated, so a
    /// re-touched key leaves a stale slot behind instead of an O(n)
    /// removal.
    order: VecDeque<(u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

impl Inner {
    fn touch(&mut self, hash: u64) -> u64 {
        self.tick += 1;
        self.order.push_back((hash, self.tick));
        self.tick
    }

    fn evict_one(&mut self) -> bool {
        while let Some((hash, tick)) = self.order.pop_front() {
            let live = self.map.get(&hash).is_some_and(|entry| entry.tick == tick);
            if live {
                self.map.remove(&hash);
                self.evictions += 1;
                return true;
            }
            // A stale slot: the key was re-touched (or already
            // evicted) since this slot was queued. Drop and continue.
        }
        false
    }

    /// Bound the lazily-invalidated queue: once stale slots outnumber
    /// live entries by a wide margin, sweep them out in one pass.
    fn sweep_if_bloated(&mut self, capacity: usize) {
        if self.order.len() > 4 * capacity + 16 {
            let map = std::mem::take(&mut self.map);
            self.order
                .retain(|(h, t)| map.get(h).is_some_and(|e| e.tick == *t));
            self.map = map;
        }
    }
}

/// Bounded hot-key response cache; see the [module docs](self).
pub struct HotKeyLru {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl HotKeyLru {
    /// A cache holding at most `capacity` responses. Zero disables the
    /// cache entirely: every get is a miss, every put a no-op.
    pub fn new(capacity: usize) -> Self {
        HotKeyLru {
            capacity,
            inner: Mutex::new_named(Inner::default(), "lru.inner"),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached response for `hash`, refreshing its recency.
    pub fn get(&self, hash: u64) -> Option<TuneResponse> {
        let mut inner = self.inner.lock_recovered();
        if inner.map.contains_key(&hash) {
            let tick = inner.touch(hash);
            let entry = inner.map.get_mut(&hash).expect("checked above");
            entry.tick = tick;
            let response = entry.response.clone();
            inner.hits += 1;
            inner.sweep_if_bloated(self.capacity);
            Some(response)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Cache `response` under `hash`, evicting the least recently
    /// touched entry when full.
    pub fn put(&self, hash: u64, response: TuneResponse) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock_recovered();
        let tick = inner.touch(hash);
        let fresh = inner.map.insert(hash, Entry { response, tick }).is_none();
        if fresh {
            inner.inserts += 1;
            while inner.map.len() > self.capacity {
                assert!(inner.evict_one(), "a full cache always has a live entry");
            }
        }
        inner.sweep_if_bloated(self.capacity);
    }

    /// Length of the lazily-invalidated recency queue — exposed so
    /// the concurrency proofs can assert the `4 * capacity + 16`
    /// bound holds under every explored interleaving.
    #[doc(hidden)]
    pub fn queue_len(&self) -> usize {
        self.inner.lock_recovered().order.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LruStats {
        let inner = self.inner.lock_recovered();
        LruStats {
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            len: inner.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::LaunchConfig;
    use stencil_autotune::{Provenance, TuneSample};

    fn response(tag: u64) -> TuneResponse {
        let best = TuneSample {
            config: LaunchConfig::new(32, 4, 1, 1),
            mpoints: tag as f64,
        };
        TuneResponse {
            best,
            evaluated: tag,
            samples: vec![best],
            provenance: Provenance::Computed,
            key_hash: tag,
        }
    }

    #[test]
    fn evicts_least_recently_touched() {
        let lru = HotKeyLru::new(2);
        lru.put(1, response(1));
        lru.put(2, response(2));
        assert!(lru.get(1).is_some(), "refreshes key 1");
        lru.put(3, response(3)); // evicts 2, the stalest
        assert!(lru.get(2).is_none());
        assert!(lru.get(1).is_some());
        assert!(lru.get(3).is_some());
        let s = lru.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.inserts, 3);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let lru = HotKeyLru::new(2);
        lru.put(1, response(1));
        lru.put(2, response(2));
        lru.put(1, response(10)); // overwrite, not an insert
        let s = lru.stats();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.len, 2);
        assert_eq!(lru.get(1).unwrap().evaluated, 10);
    }

    #[test]
    fn zero_capacity_disables() {
        let lru = HotKeyLru::new(0);
        lru.put(1, response(1));
        assert!(lru.get(1).is_none());
        let s = lru.stats();
        assert_eq!((s.inserts, s.hits, s.misses, s.len), (0, 0, 1, 0));
    }

    #[test]
    fn stale_queue_slots_are_swept() {
        let lru = HotKeyLru::new(2);
        lru.put(1, response(1));
        lru.put(2, response(2));
        for _ in 0..100 {
            lru.get(1);
            lru.get(2);
        }
        // The lazy queue stays bounded relative to capacity.
        assert!(lru.queue_len() <= 4 * lru.capacity + 16 + 1);
    }
}
