//! Zipfian traffic replay: synthesize the key mix a production tuning
//! service would see and drive a [`TuneServer`] with it.
//!
//! The key universe is the cross product devices × stencil orders ×
//! grids × precisions ([`TrafficMix`]); request traffic ranks it by a
//! Zipf law (a few keys dominate, a long tail trickles — the shape of
//! real content-addressed caches) with a configurable
//! duplicate-burstiness knob: with probability `burstiness` a request
//! repeats the previous key *immediately*, modelling the bursts of
//! identical requests that single-flight and the batch dedup exist
//! for. The trace is a pure function of the seed, so two replays over
//! identical server state serve identical tier mixes — CI asserts
//! exactly that.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;
use stencil_tunestore::{TuneRequest, TunerSpec};

use crate::admission::ShedReason;
use crate::server::{ServeOutcome, ServeRequest, ServeTier, TuneServer};

/// The key-universe recipe: every combination becomes one tunable key.
#[derive(Clone, Debug)]
pub struct TrafficMix {
    /// Target devices.
    pub devices: Vec<DeviceSpec>,
    /// Stencil orders (radius = order / 2).
    pub orders: Vec<usize>,
    /// Problem grids.
    pub grids: Vec<GridDims>,
    /// Precisions.
    pub precisions: Vec<Precision>,
    /// Measurement-noise seed baked into every key.
    pub seed: u64,
}

impl TrafficMix {
    /// The CI smoke mix: a small, fast universe (two devices × two
    /// orders × one grid × SP) whose searches complete in
    /// milliseconds.
    pub fn smoke() -> Self {
        TrafficMix {
            devices: vec![DeviceSpec::gtx580(), DeviceSpec::gtx680()],
            orders: vec![2, 4],
            grids: vec![GridDims::new(96, 96, 32)],
            precisions: vec![Precision::Single],
            seed: 1,
        }
    }

    /// The standard bench mix: all three paper devices × four orders ×
    /// two grids × both precisions.
    pub fn standard() -> Self {
        TrafficMix {
            devices: vec![
                DeviceSpec::gtx580(),
                DeviceSpec::gtx680(),
                DeviceSpec::c2070(),
            ],
            orders: vec![2, 4, 6, 8],
            grids: vec![GridDims::new(256, 256, 64), GridDims::new(128, 128, 128)],
            precisions: vec![Precision::Single, Precision::Double],
            seed: 1,
        }
    }

    /// Materialize the universe: one exhaustive-search request per
    /// combination over its quick space (combinations whose space is
    /// empty are skipped).
    pub fn universe(&self) -> Vec<TuneRequest> {
        let mut out = Vec::new();
        for device in &self.devices {
            for &order in &self.orders {
                for precision in &self.precisions {
                    let kernel = KernelSpec::star_order(
                        Method::InPlane(Variant::FullSlice),
                        order,
                        *precision,
                    );
                    for &dims in &self.grids {
                        let space = ParameterSpace::quick_space(device, &kernel, &dims);
                        if space.is_empty() {
                            continue;
                        }
                        out.push(TuneRequest {
                            device: device.clone(),
                            kernel: kernel.clone(),
                            dims,
                            space,
                            tuner: TunerSpec::Exhaustive,
                            seed: self.seed,
                        });
                    }
                }
            }
        }
        out
    }
}

/// A Zipf(`s`) sampler over ranks `0..n` via inverse-CDF lookup.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform;
    /// larger `s` concentrates mass on low ranks).
    ///
    /// # Panics
    /// Panics when `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "cannot sample an empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank from a uniform `u` in `[0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A uniform `[0, 1)` draw from the deterministic generator.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate a `requests`-long trace of universe indices: Zipf-ranked
/// key popularity with duplicate bursts. Pure function of the inputs.
pub fn zipf_trace(
    universe_len: usize,
    requests: usize,
    exponent: f64,
    burstiness: f64,
    seed: u64,
) -> Vec<usize> {
    let zipf = Zipf::new(universe_len, exponent);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(requests);
    let mut prev: Option<usize> = None;
    for _ in 0..requests {
        let idx = match prev {
            Some(p) if unit(&mut rng) < burstiness => p,
            _ => zipf.sample(unit(&mut rng)),
        };
        trace.push(idx);
        prev = Some(idx);
    }
    trace
}

/// Replay knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayConfig {
    /// Requests to offer.
    pub requests: usize,
    /// Concurrent client workers (1 = closed-loop deterministic).
    pub workers: usize,
    /// Zipf exponent of the key popularity.
    pub zipf_exponent: f64,
    /// Probability a request repeats the previous key immediately.
    pub burstiness: f64,
    /// Per-request deadline budget, microseconds (`None` = unbounded).
    pub budget_micros: Option<u64>,
    /// Trace seed.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            requests: 2000,
            workers: 4,
            zipf_exponent: 1.1,
            burstiness: 0.2,
            budget_micros: None,
            seed: 42,
        }
    }
}

/// Responses served per tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Hot-key LRU hits.
    pub lru: u64,
    /// Store hits.
    pub store: u64,
    /// Shared an in-flight leader or an in-batch canonical.
    pub shared: u64,
    /// Warm-started searches.
    pub warm_started: u64,
    /// Full searches.
    pub computed: u64,
}

impl TierCounts {
    /// Total served responses.
    pub fn total(&self) -> u64 {
        self.lru + self.store + self.shared + self.warm_started + self.computed
    }

    /// Responses that did *no* search work (LRU + store + shared).
    pub fn cache_served(&self) -> u64 {
        self.lru + self.store + self.shared
    }

    fn count(&mut self, tier: ServeTier) {
        match tier {
            ServeTier::Lru => self.lru += 1,
            ServeTier::Store => self.store += 1,
            ServeTier::Shared => self.shared += 1,
            ServeTier::WarmStarted => self.warm_started += 1,
            ServeTier::Computed => self.computed += 1,
        }
    }
}

/// Shed responses per coded reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// `SRV-001` pool-saturated sheds.
    pub saturated: u64,
    /// `SRV-002` oracle-triage sheds.
    pub over_budget: u64,
    /// `SRV-003` expired-deadline sheds.
    pub deadline: u64,
}

impl ShedCounts {
    /// Total shed responses.
    pub fn total(&self) -> u64 {
        self.saturated + self.over_budget + self.deadline
    }

    fn count(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::PoolSaturated { .. } => self.saturated += 1,
            ShedReason::OverBudget { .. } => self.over_budget += 1,
            ShedReason::DeadlineExpired { .. } => self.deadline += 1,
        }
    }
}

/// Latency quantiles of one replay, microseconds (nearest-rank).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median.
    pub p50_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// 99.9th percentile.
    pub p999_micros: u64,
    /// Worst observed.
    pub max_micros: u64,
    /// Arithmetic mean.
    pub mean_micros: u64,
}

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl LatencyStats {
    /// Summarize a set of per-request latencies.
    pub fn from_latencies(mut micros: Vec<u64>) -> Self {
        micros.sort_unstable();
        let n = micros.len() as u64;
        LatencyStats {
            p50_micros: nearest_rank(&micros, 0.50),
            p99_micros: nearest_rank(&micros, 0.99),
            p999_micros: nearest_rank(&micros, 0.999),
            max_micros: micros.last().copied().unwrap_or(0),
            mean_micros: micros.iter().sum::<u64>().checked_div(n).unwrap_or(0),
        }
    }
}

/// What one replay measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayOutcome {
    /// Requests offered.
    pub offered: u64,
    /// Served per tier.
    pub tiers: TierCounts,
    /// Shed per coded reason.
    pub sheds: ShedCounts,
    /// Latency quantiles (wall time per request).
    pub latency: LatencyStats,
    /// Replay wall time, seconds.
    pub wall_secs: f64,
    /// Offered load served + shed per second of wall time.
    pub throughput_rps: f64,
}

impl ReplayOutcome {
    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.sheds.total() as f64 / self.offered as f64
        }
    }

    /// Fraction of *served* responses that did no search work.
    pub fn cache_served_ratio(&self) -> f64 {
        let served = self.tiers.total();
        if served == 0 {
            0.0
        } else {
            self.tiers.cache_served() as f64 / served as f64
        }
    }

    /// The deterministic shape of this outcome — everything except
    /// wall-clock figures. Two replays of one trace over identical
    /// server state must agree on this exactly.
    pub fn deterministic_shape(&self) -> (u64, TierCounts, ShedCounts) {
        (self.offered, self.tiers, self.sheds)
    }
}

/// Drive `server` with `trace` (indices into `universe`) from
/// `workers` concurrent clients and summarize what happened.
///
/// With `workers == 1` the replay is closed-loop: requests resolve one
/// at a time in trace order, so tier and shed counts are a pure
/// function of trace + server state (the determinism CI pins). More
/// workers race the tiers — counts may then legitimately vary between
/// runs (a burst duplicate may hit the LRU or share the in-flight
/// leader depending on timing), but `served + shed == offered` always
/// holds and nothing ever blocks on pool capacity.
pub fn replay(
    server: &TuneServer,
    universe: &[TuneRequest],
    trace: &[usize],
    workers: usize,
    budget_micros: Option<u64>,
) -> ReplayOutcome {
    use conc_check::sync::AtomicUsize;
    use std::sync::atomic::Ordering;
    use std::time::Instant;

    let workers = workers.max(1);
    let cursor = AtomicUsize::new_named(0, "replay.cursor");
    let started = Instant::now();
    let mut per_worker: Vec<(TierCounts, ShedCounts, Vec<u64>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut tiers = TierCounts::default();
                    let mut sheds = ShedCounts::default();
                    let mut lats = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= trace.len() {
                            break;
                        }
                        let sreq = ServeRequest {
                            req: universe[trace[i]].clone(),
                            budget_micros,
                        };
                        let t0 = Instant::now();
                        let outcome = server.resolve(&sreq);
                        lats.push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        match outcome {
                            ServeOutcome::Served(s) => tiers.count(s.tier),
                            ServeOutcome::Shed(r) => sheds.count(r),
                        }
                    }
                    (tiers, sheds, lats)
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("replay worker panicked"));
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut tiers = TierCounts::default();
    let mut sheds = ShedCounts::default();
    let mut lats = Vec::with_capacity(trace.len());
    for (t, s, l) in per_worker {
        tiers.lru += t.lru;
        tiers.store += t.store;
        tiers.shared += t.shared;
        tiers.warm_started += t.warm_started;
        tiers.computed += t.computed;
        sheds.saturated += s.saturated;
        sheds.over_budget += s.over_budget;
        sheds.deadline += s.deadline;
        lats.extend(l);
    }
    let offered = trace.len() as u64;
    ReplayOutcome {
        offered,
        tiers,
        sheds,
        latency: LatencyStats::from_latencies(lats),
        wall_secs,
        throughput_rps: if wall_secs > 0.0 {
            offered as f64 / wall_secs
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_monotone_and_head_heavy() {
        let z = Zipf::new(100, 1.2);
        assert_eq!(z.sample(0.0), 0);
        assert!(z.sample(0.9999) > 10);
        // Rank-0 mass dominates rank-50 under s > 1.
        let trace = zipf_trace(100, 20_000, 1.2, 0.0, 7);
        let head = trace.iter().filter(|&&i| i == 0).count();
        let mid = trace.iter().filter(|&&i| i == 50).count();
        assert!(head > 10 * mid.max(1), "head {head} vs mid {mid}");
    }

    #[test]
    fn traces_are_pure_functions_of_the_seed() {
        let a = zipf_trace(32, 5000, 1.1, 0.3, 9);
        let b = zipf_trace(32, 5000, 1.1, 0.3, 9);
        let c = zipf_trace(32, 5000, 1.1, 0.3, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&i| i < 32));
    }

    #[test]
    fn burstiness_repeats_the_previous_key() {
        let calm = zipf_trace(64, 10_000, 1.0, 0.0, 3);
        let bursty = zipf_trace(64, 10_000, 1.0, 0.9, 3);
        let repeats = |t: &[usize]| t.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats(&bursty) > 2 * repeats(&calm));
    }

    #[test]
    fn smoke_universe_is_small_and_nonempty() {
        let u = TrafficMix::smoke().universe();
        assert!(!u.is_empty());
        assert!(u.len() <= 8, "smoke universe stays small: {}", u.len());
        // Keys are pairwise distinct.
        let mut hashes: Vec<u64> = u.iter().map(|r| r.key().stable_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), u.len());
    }

    #[test]
    fn nearest_rank_quantiles() {
        let l = LatencyStats::from_latencies((1..=1000).collect());
        assert_eq!(l.p50_micros, 500);
        assert_eq!(l.p99_micros, 990);
        assert_eq!(l.p999_micros, 999);
        assert_eq!(l.max_micros, 1000);
    }
}
