//! [`TuneServer`]: the traffic-ready front end over [`TuneService`].
//!
//! Request resolution is tiered, cheapest first:
//!
//! 1. **hot-key LRU** ([`HotKeyLru`]) — one mutex + map probe;
//! 2. **store** — the sharded persistent tier (per-shard locks);
//! 3. **share** — an identical request already in flight is joined,
//!    never recomputed (bounded by the leader's remaining work);
//! 4. **admission** ([`ComputePool`]) — only here does the request ask
//!    to *spend compute*: deadline check, oracle triage against the
//!    request's budget, then a non-blocking pool permit. Refusals are
//!    coded [`ShedReason`]s, not queues;
//! 5. **compute** — the single-flight search of the underlying
//!    service, holding the permit for the duration.
//!
//! Batches dedup identical keys *before* any of this: one occurrence
//! per key resolves, duplicates are served its response.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use conc_check::sync::{AtomicU64, Mutex};

use inplane_core::{EvalContext, RoutineDiag};
use rayon::prelude::*;
use stencil_autotune::{Provenance, RoutineChoice, RoutineSelector};
use stencil_tunestore::{
    ResolveTrace, ServiceStats, StoreStats, TuneRequest, TuneResponse, TuneService, TuneStore,
};

use crate::admission::{predicted_search_micros, AdmissionStats, ComputePool, ShedReason};
use crate::lru::{HotKeyLru, LruStats};
use crate::shard::ShardedStore;

/// One serving request: the tuning problem plus its latency budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRequest {
    /// The tuning problem.
    pub req: TuneRequest,
    /// Deadline budget in microseconds. `None` means "no deadline":
    /// the request is never triaged or expired, only pool-shed.
    pub budget_micros: Option<u64>,
}

impl ServeRequest {
    /// A request with no deadline budget.
    pub fn unbounded(req: TuneRequest) -> Self {
        ServeRequest {
            req,
            budget_micros: None,
        }
    }

    /// A request that must fit a `budget_micros` deadline.
    pub fn with_budget(req: TuneRequest, budget_micros: u64) -> Self {
        ServeRequest {
            req,
            budget_micros: Some(budget_micros),
        }
    }
}

/// Which tier served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeTier {
    /// The hot-key LRU cache.
    Lru,
    /// The (sharded) persistent store.
    Store,
    /// Shared another request's in-flight computation (or its
    /// already-resolved response, for in-batch duplicates).
    Shared,
    /// Ran a warm-started search.
    WarmStarted,
    /// Ran a full search.
    Computed,
}

impl ServeTier {
    /// Stable lowercase label (report keys).
    pub fn label(&self) -> &'static str {
        match self {
            ServeTier::Lru => "lru",
            ServeTier::Store => "store",
            ServeTier::Shared => "shared",
            ServeTier::WarmStarted => "warm",
            ServeTier::Computed => "computed",
        }
    }
}

/// A successfully served response.
#[derive(Clone, Debug, PartialEq)]
pub struct Served {
    /// The resolved tuning response.
    pub response: TuneResponse,
    /// The tier that produced it.
    pub tier: ServeTier,
}

/// The outcome of one serving request: a response or a coded refusal.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeOutcome {
    /// The request was served.
    Served(Served),
    /// The request was shed; the reason says why and is never a panic
    /// or an unbounded block.
    Shed(ShedReason),
}

impl ServeOutcome {
    /// The served payload, if any.
    pub fn served(&self) -> Option<&Served> {
        match self {
            ServeOutcome::Served(s) => Some(s),
            ServeOutcome::Shed(_) => None,
        }
    }

    /// The shed reason, if any.
    pub fn shed(&self) -> Option<ShedReason> {
        match self {
            ServeOutcome::Served(_) => None,
            ServeOutcome::Shed(r) => Some(*r),
        }
    }
}

/// Sizing knobs of a [`TuneServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Concurrent-search bound of the compute pool.
    pub pool_limit: usize,
    /// Hot-key LRU capacity (0 disables the cache).
    pub lru_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_limit: rayon::current_num_threads().max(1),
            lru_capacity: 1024,
        }
    }
}

/// Counter snapshot across every layer of a [`TuneServer`]. The store
/// counters come through both aggregated (`store`) *and* per shard
/// (`per_shard`) — the sharding wrapper never sums them away.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// The underlying service's single-flight counters.
    pub service: ServiceStats,
    /// Hot-key LRU counters.
    pub lru: LruStats,
    /// Admission-control counters.
    pub admission: AdmissionStats,
    /// Aggregate store counters (per-shard sum).
    pub store: StoreStats,
    /// Per-shard store counters, index-aligned with the shards.
    pub per_shard: Vec<StoreStats>,
    /// In-batch duplicates served from their canonical occurrence.
    pub batch_deduped: u64,
}

/// The serving layer; see the [module docs](self).
pub struct TuneServer {
    service: TuneService,
    store: Arc<ShardedStore>,
    lru: HotKeyLru,
    pool: ComputePool,
    /// Oracle prices per key hash — pricing lowers a proxy plan, so
    /// hot keys (and every configuration of a retried key) pay once.
    prices: Mutex<HashMap<u64, u64>>,
    batch_deduped: AtomicU64,
}

impl TuneServer {
    /// A server over `store`, evaluating through `ctx`.
    pub fn new(store: Arc<ShardedStore>, ctx: Arc<EvalContext>, config: ServerConfig) -> Self {
        let service = TuneService::new(Arc::clone(&store) as Arc<dyn TuneStore>, ctx);
        Self::build(store, service, config)
    }

    /// A server evaluating through the process-wide
    /// [`EvalContext::global`] — what the bench binaries use.
    pub fn with_global_ctx(store: Arc<ShardedStore>, config: ServerConfig) -> Self {
        let service = TuneService::with_global_ctx(Arc::clone(&store) as Arc<dyn TuneStore>);
        Self::build(store, service, config)
    }

    fn build(store: Arc<ShardedStore>, service: TuneService, config: ServerConfig) -> Self {
        TuneServer {
            service,
            store,
            lru: HotKeyLru::new(config.lru_capacity),
            pool: ComputePool::new(config.pool_limit),
            prices: Mutex::new_named(HashMap::new(), "server.prices"),
            batch_deduped: AtomicU64::new_named(0, "server.batch_deduped"),
        }
    }

    /// The underlying single-flight service.
    pub fn service(&self) -> &TuneService {
        &self.service
    }

    /// The sharded persistent tier.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Counter snapshot across every layer.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            service: self.service.stats(),
            lru: self.lru.stats(),
            admission: self.pool.stats(),
            store: self.store.stats(),
            per_shard: self.store.shard_stats(),
            batch_deduped: self.batch_deduped.load(Ordering::Relaxed),
        }
    }

    /// The oracle-predicted search cost for `req`, cached per key.
    pub fn predicted_micros(&self, req: &TuneRequest) -> u64 {
        let hash = req.key().stable_hash();
        if let Some(&p) = self.prices.lock_recovered().get(&hash) {
            return p;
        }
        let p = predicted_search_micros(req);
        self.prices.lock_recovered().insert(hash, p);
        p
    }

    /// Resolve one request through the tiered path; never blocks on
    /// pool capacity, never panics on overload.
    pub fn resolve(&self, sreq: &ServeRequest) -> ServeOutcome {
        self.resolve_at(Instant::now(), sreq)
    }

    /// [`Self::resolve`] with an explicit arrival instant — the batch
    /// path passes the batch's start so queueing time counts against
    /// each request's deadline.
    pub fn resolve_at(&self, arrived: Instant, sreq: &ServeRequest) -> ServeOutcome {
        let hash = sreq.req.key().stable_hash();

        // Tier 1: hot-key LRU.
        if let Some(response) = self.lru.get(hash) {
            return ServeOutcome::Served(Served {
                response,
                tier: ServeTier::Lru,
            });
        }
        // Tier 2: the sharded store.
        if let Some(response) = self.service.try_resolve_cached(&sreq.req) {
            self.lru.put(hash, response.clone());
            return ServeOutcome::Served(Served {
                response,
                tier: ServeTier::Store,
            });
        }
        // Tier 3: join an in-flight identical request. This waits only
        // for a computation that is *already running* — admission
        // control has already bounded how many of those exist.
        if let Some(response) = self.service.wait_if_inflight(hash) {
            self.lru.put(hash, response.clone());
            return ServeOutcome::Served(Served {
                response,
                tier: ServeTier::Shared,
            });
        }
        // Tier 4: admission — the request now asks to spend compute.
        if let Some(budget) = sreq.budget_micros {
            let elapsed = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
            if elapsed > budget {
                self.pool.record_deadline();
                return ServeOutcome::Shed(ShedReason::DeadlineExpired {
                    elapsed_micros: elapsed,
                    budget_micros: budget,
                });
            }
            let predicted = self.predicted_micros(&sreq.req);
            if predicted > budget {
                self.pool.record_over_budget();
                return ServeOutcome::Shed(ShedReason::OverBudget {
                    predicted_micros: predicted,
                    budget_micros: budget,
                });
            }
        }
        let permit = match self.pool.try_acquire() {
            Ok(p) => p,
            Err(reason) => return ServeOutcome::Shed(reason),
        };
        // Tier 5: the single-flight search. A racing leader that
        // registered between tier 3 and here downgrades us to a
        // sharer; a racing leader that already *persisted* downgrades
        // us to a store hit. Either way the permit is held only
        // briefly.
        let (response, trace) = self.service.resolve_traced(&sreq.req);
        drop(permit);
        self.lru.put(hash, response.clone());
        let tier = match trace {
            ResolveTrace::Store => ServeTier::Store,
            ResolveTrace::Shared => ServeTier::Shared,
            ResolveTrace::Led => match response.provenance {
                Provenance::WarmStarted => ServeTier::WarmStarted,
                _ => ServeTier::Computed,
            },
        };
        ServeOutcome::Served(Served { response, tier })
    }

    /// Deadline-aware batched resolve. Identical keys inside the batch
    /// are deduplicated *before* the tiered path: one occurrence per
    /// key resolves (in parallel over the rayon pool), duplicates are
    /// served its outcome as [`ServeTier::Shared`]. Output order
    /// matches `batch`; every request's deadline is measured from the
    /// batch's entry, so stragglers behind a large batch shed with
    /// [`ShedReason::DeadlineExpired`] instead of blowing the budget
    /// silently.
    pub fn resolve_batch(&self, batch: &[ServeRequest]) -> Vec<ServeOutcome> {
        let arrived = Instant::now();
        let hashes: Vec<u64> = batch.iter().map(|s| s.req.key().stable_hash()).collect();
        let mut first_slot: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let canonical: Vec<usize> = hashes
            .iter()
            .enumerate()
            .map(|(i, h)| {
                *first_slot.entry(*h).or_insert_with(|| {
                    unique.push(i);
                    i
                })
            })
            .collect();
        let resolved: Vec<(usize, ServeOutcome)> = unique
            .par_iter()
            .map(|&i| (i, self.resolve_at(arrived, &batch[i])))
            .collect();
        let by_slot: HashMap<usize, ServeOutcome> = resolved.into_iter().collect();
        canonical
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let outcome = by_slot[&c].clone();
                if i == c {
                    return outcome;
                }
                self.batch_deduped.fetch_add(1, Ordering::Relaxed);
                match outcome {
                    // A duplicate shares the canonical occurrence's
                    // response without doing any of its work.
                    ServeOutcome::Served(s) => ServeOutcome::Served(Served {
                        response: s.response,
                        tier: ServeTier::Shared,
                    }),
                    shed => shed,
                }
            })
            .collect()
    }

    /// Run `selector` first, then resolve the request with its kernel
    /// re-specified onto the chosen routine — the serving-layer mirror
    /// of [`TuneService::resolve_selected`], so selector-aware callers
    /// get the LRU/admission tiers too. Errors are the selector's
    /// coded rejection.
    ///
    /// # Panics
    /// Panics on an empty parameter space.
    pub fn resolve_selected(
        &self,
        sreq: &ServeRequest,
        selector: &RoutineSelector,
    ) -> Result<(RoutineChoice, ServeOutcome), RoutineDiag> {
        assert!(
            !sreq.req.space.is_empty(),
            "cannot tune over an empty parameter space"
        );
        let probe = sreq.req.space.configs()[0];
        let (choice, kernel) =
            selector.select_kernel(&sreq.req.device, &sreq.req.kernel, &sreq.req.dims, &probe)?;
        let routed = ServeRequest {
            req: TuneRequest {
                kernel,
                ..sreq.req.clone()
            },
            budget_micros: sreq.budget_micros,
        };
        Ok((choice, self.resolve(&routed)))
    }
}
