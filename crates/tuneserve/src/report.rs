//! `BENCH_serving.json`: the persisted serving-bench trajectory.
//!
//! One JSON document per bench run, cold replay and warm replay side
//! by side, with throughput, latency quantiles, shed rate, provenance
//! ratios and the full per-layer (and per-shard) counter state —
//! enough to diff serving behaviour across PRs. Written atomically via
//! the store's tmp+rename writer.

use std::path::Path;

use stencil_tunestore::atomic_write;

use crate::replay::{ReplayConfig, ReplayOutcome};
use crate::server::ServerStats;

/// Schema version of the report document.
pub const SERVING_SCHEMA_VERSION: u64 = 1;

/// The serving bench's persisted result.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingReport {
    /// Replay knobs the run used.
    pub config: ReplayConfig,
    /// Shards in the store.
    pub shards: usize,
    /// Compute-pool permit bound.
    pub pool_limit: usize,
    /// Hot-key LRU capacity.
    pub lru_capacity: usize,
    /// Distinct keys in the traffic universe.
    pub universe_keys: usize,
    /// The cold replay (empty store).
    pub cold: ReplayOutcome,
    /// The warm replay (same trace, fully persisted store).
    pub warm: ReplayOutcome,
    /// Final counter state across every layer.
    pub stats: ServerStats,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

fn replay_json(out: &mut String, label: &str, r: &ReplayOutcome) {
    out.push_str(&format!(
        concat!(
            "  \"{label}\": {{\n",
            "    \"offered\": {offered},\n",
            "    \"served\": {served},\n",
            "    \"shed\": {shed},\n",
            "    \"shed_rate\": {shed_rate},\n",
            "    \"throughput_rps\": {rps},\n",
            "    \"wall_secs\": {wall},\n",
            "    \"latency_micros\": {{ \"p50\": {p50}, \"p99\": {p99}, ",
            "\"p999\": {p999}, \"max\": {max}, \"mean\": {mean} }},\n",
            "    \"tiers\": {{ \"lru\": {lru}, \"store\": {store}, \"shared\": {shared}, ",
            "\"warm\": {warm}, \"computed\": {computed} }},\n",
            "    \"sheds\": {{ \"SRV-001\": {sat}, \"SRV-002\": {over}, \"SRV-003\": {dead} }},\n",
            "    \"cache_served_ratio\": {cache_ratio}\n",
            "  }}"
        ),
        label = label,
        offered = r.offered,
        served = r.tiers.total(),
        shed = r.sheds.total(),
        shed_rate = fmt_f64(r.shed_rate()),
        rps = fmt_f64(r.throughput_rps),
        wall = fmt_f64(r.wall_secs),
        p50 = r.latency.p50_micros,
        p99 = r.latency.p99_micros,
        p999 = r.latency.p999_micros,
        max = r.latency.max_micros,
        mean = r.latency.mean_micros,
        lru = r.tiers.lru,
        store = r.tiers.store,
        shared = r.tiers.shared,
        warm = r.tiers.warm_started,
        computed = r.tiers.computed,
        sat = r.sheds.saturated,
        over = r.sheds.over_budget,
        dead = r.sheds.deadline,
        cache_ratio = fmt_f64(r.cache_served_ratio()),
    ));
}

impl ServingReport {
    /// Render the full document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {SERVING_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!(
            concat!(
                "  \"config\": {{ \"requests\": {req}, \"workers\": {workers}, ",
                "\"zipf_exponent\": {zipf}, \"burstiness\": {burst}, \"seed\": {seed}, ",
                "\"budget_micros\": {budget}, \"shards\": {shards}, \"pool_limit\": {pool}, ",
                "\"lru_capacity\": {lru}, \"universe_keys\": {keys} }},\n"
            ),
            req = self.config.requests,
            workers = self.config.workers,
            zipf = fmt_f64(self.config.zipf_exponent),
            burst = fmt_f64(self.config.burstiness),
            seed = self.config.seed,
            budget = match self.config.budget_micros {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            shards = self.shards,
            pool = self.pool_limit,
            lru = self.lru_capacity,
            keys = self.universe_keys,
        ));
        replay_json(&mut out, "cold", &self.cold);
        out.push_str(",\n");
        replay_json(&mut out, "warm", &self.warm);
        out.push_str(",\n");
        let s = &self.stats;
        out.push_str(&format!(
            concat!(
                "  \"service\": {{ \"served_from_store\": {sfs}, \"computed\": {comp}, ",
                "\"warm_started\": {ws}, \"shared\": {sh}, \"batch_deduped\": {bd} }},\n",
                "  \"lru\": {{ \"hits\": {lh}, \"misses\": {lm}, \"inserts\": {li}, ",
                "\"evictions\": {le}, \"len\": {ll} }},\n",
                "  \"admission\": {{ \"admitted\": {aa}, \"shed_saturated\": {as_}, ",
                "\"shed_over_budget\": {ao}, \"shed_deadline\": {ad} }},\n"
            ),
            sfs = s.service.served_from_store,
            comp = s.service.computed,
            ws = s.service.warm_started,
            sh = s.service.shared,
            bd = s.batch_deduped,
            lh = s.lru.hits,
            lm = s.lru.misses,
            li = s.lru.inserts,
            le = s.lru.evictions,
            ll = s.lru.len,
            aa = s.admission.admitted,
            as_ = s.admission.shed_saturated,
            ao = s.admission.shed_over_budget,
            ad = s.admission.shed_deadline,
        ));
        out.push_str("  \"per_shard\": [");
        for (i, shard) in s.per_shard.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                concat!(
                    "{{ \"hits\": {h}, \"misses\": {m}, \"inserts\": {i}, ",
                    "\"corrupt\": {c}, \"stale\": {st}, \"io_errors\": {io} }}"
                ),
                h = shard.hits,
                m = shard.misses,
                i = shard.inserts,
                c = shard.corrupt,
                st = shard.stale,
                io = shard.io_errors,
            ));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Write the document atomically to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path.as_ref(), self.to_json())
    }
}
