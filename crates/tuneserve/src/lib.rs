#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-tuneserve
//!
//! Tuning-as-a-service: the traffic-ready layer above
//! [`stencil_tunestore::TuneService`], built for the load profile a
//! production auto-tuner meets — millions of mostly-repeated requests,
//! a hot head of popular keys, bursts of identical requests, and more
//! offered search work than the machine should ever accept.
//!
//! * [`shard`] — [`ShardedStore`]: N per-shard-locked
//!   [`TuneStore`](stencil_tunestore::TuneStore) shards keyed by
//!   [`TuneKey`](stencil_tunestore::TuneKey) hash, with epoch-based
//!   per-shard compaction that never blocks readers of other shards
//!   and per-shard [`StoreStats`](stencil_tunestore::StoreStats) that
//!   survive aggregation;
//! * [`lru`] — [`HotKeyLru`]: a bounded hot-key response cache in
//!   front of the JSONL tier, with hit/evict counters;
//! * [`admission`] — [`ComputePool`] (a never-blocking bounded
//!   semaphore over searches), oracle triage
//!   ([`predicted_search_micros`]: the static traffic oracle prices a
//!   search before any of it runs), and the coded [`ShedReason`]
//!   refusals (`SRV-001..003`);
//! * [`server`] — [`TuneServer`]: LRU → store → share-in-flight →
//!   admission → single-flight compute, plus deadline-aware
//!   [`TuneServer::resolve_batch`] (in-batch key dedup) and
//!   selector-aware [`TuneServer::resolve_selected`];
//! * [`mod@replay`] — the Zipfian traffic-replay bench: a devices ×
//!   orders × grids × precisions key universe, Zipf-ranked popularity
//!   with a duplicate-burstiness knob, multi-worker replay reporting
//!   throughput, p50/p99/p999 latency, shed rate and per-tier
//!   provenance counts;
//! * [`report`] — [`ServingReport`], persisted as
//!   `BENCH_serving.json` so the serving trajectory is tracked across
//!   PRs;
//! * [`conc`] — the concurrency proofs: every core above runs under
//!   the `conc-check` deterministic model checker, which explores
//!   bounded-exhaustive interleavings (plus injected leader panics
//!   and spurious condvar wakeups) and reports coded `CCK-*`
//!   findings with replayable counterexample traces.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use gpu_sim::{DeviceSpec, GridDims};
//! use inplane_core::{EvalContext, KernelSpec, Method, Variant};
//! use stencil_autotune::ParameterSpace;
//! use stencil_grid::Precision;
//! use stencil_tunestore::{TuneRequest, TunerSpec};
//! use stencil_tuneserve::{ServeRequest, ServeTier, ServerConfig, ShardedStore, TuneServer};
//!
//! let device = DeviceSpec::gtx580();
//! let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
//! let dims = GridDims::new(128, 128, 32);
//! let space = ParameterSpace::quick_space(&device, &kernel, &dims);
//! let server = TuneServer::new(
//!     Arc::new(ShardedStore::mem(4)),
//!     Arc::new(EvalContext::new()),
//!     ServerConfig { pool_limit: 2, lru_capacity: 64 },
//! );
//! let req = ServeRequest::unbounded(TuneRequest {
//!     device, kernel, dims, space, tuner: TunerSpec::Exhaustive, seed: 1,
//! });
//!
//! let cold = server.resolve(&req);
//! assert_eq!(cold.served().unwrap().tier, ServeTier::Computed);
//! let hot = server.resolve(&req);
//! assert_eq!(hot.served().unwrap().tier, ServeTier::Lru);
//! ```

pub mod admission;
pub mod conc;
pub mod lru;
pub mod replay;
pub mod report;
pub mod server;
pub mod shard;

pub use admission::{predicted_search_micros, AdmissionStats, ComputePool, Permit, ShedReason};
pub use lru::{HotKeyLru, LruStats};
pub use replay::{
    replay, zipf_trace, LatencyStats, ReplayConfig, ReplayOutcome, ShedCounts, TierCounts,
    TrafficMix, Zipf,
};
pub use report::{ServingReport, SERVING_SCHEMA_VERSION};
pub use server::{
    ServeOutcome, ServeRequest, ServeTier, Served, ServerConfig, ServerStats, TuneServer,
};
pub use shard::{CompactionReport, ShardedStore};
