//! Admission control: decide — *before* committing compute — whether a
//! request that missed every cache may run a search.
//!
//! Three gates, in order:
//!
//! 1. **wall-clock deadline** — a request that has already outlived
//!    its budget (e.g. queueing inside a large batch) is shed
//!    immediately ([`ShedReason::DeadlineExpired`]);
//! 2. **oracle triage** — the static traffic oracle
//!    ([`stencil_lint::predict_traffic`]) prices the search from the
//!    op stream alone: predicted bytes per configuration × space size
//!    ÷ achieved device bandwidth. A search predicted to blow the
//!    budget is shed *without consuming a pool permit*
//!    ([`ShedReason::OverBudget`]) — following Ernst et al.
//!    (PAPERS.md), the analytic model is the zero-cost tier that
//!    prices work before any of it runs;
//! 3. **compute pool** — a bounded semaphore over concurrent searches.
//!    When every permit is taken the request is shed with
//!    [`ShedReason::PoolSaturated`] instead of queueing: the service
//!    *never blocks* a caller on pool capacity.
//!
//! Cheap admissions (store, LRU, sharing an in-flight leader) bypass
//! all three gates — shedding only ever refuses *new* search work.

use std::sync::atomic::Ordering;

use conc_check::sync::{AtomicU64, AtomicUsize};

use inplane_core::ProblemSpec;
use stencil_lint::predict_traffic;
use stencil_tunestore::TuneRequest;

/// Why a request was refused instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Every compute-pool permit is taken.
    PoolSaturated {
        /// The pool's permit bound.
        limit: usize,
    },
    /// The oracle-predicted search cost exceeds the request's budget.
    OverBudget {
        /// Predicted search cost, microseconds.
        predicted_micros: u64,
        /// The request's budget, microseconds.
        budget_micros: u64,
    },
    /// The request's budget was already spent before admission (e.g.
    /// waiting behind a large batch).
    DeadlineExpired {
        /// Time spent before admission, microseconds.
        elapsed_micros: u64,
        /// The request's budget, microseconds.
        budget_micros: u64,
    },
}

impl ShedReason {
    /// Stable machine-readable code (`SRV-*`, one per variant).
    pub fn code(&self) -> &'static str {
        match self {
            ShedReason::PoolSaturated { .. } => "SRV-001",
            ShedReason::OverBudget { .. } => "SRV-002",
            ShedReason::DeadlineExpired { .. } => "SRV-003",
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::PoolSaturated { .. } => "pool-saturated",
            ShedReason::OverBudget { .. } => "over-budget",
            ShedReason::DeadlineExpired { .. } => "deadline-expired",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::PoolSaturated { limit } => {
                write!(f, "{}: all {limit} compute permits taken", self.code())
            }
            ShedReason::OverBudget {
                predicted_micros,
                budget_micros,
            } => write!(
                f,
                "{}: predicted search cost {predicted_micros}us exceeds budget {budget_micros}us",
                self.code()
            ),
            ShedReason::DeadlineExpired {
                elapsed_micros,
                budget_micros,
            } => write!(
                f,
                "{}: {elapsed_micros}us already spent of a {budget_micros}us budget",
                self.code()
            ),
        }
    }
}

/// Counter snapshot of the admission layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that acquired a compute permit.
    pub admitted: u64,
    /// Requests shed because the pool was saturated.
    pub shed_saturated: u64,
    /// Requests shed by oracle triage.
    pub shed_over_budget: u64,
    /// Requests shed with an already-spent budget.
    pub shed_deadline: u64,
}

impl AdmissionStats {
    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.shed_saturated + self.shed_over_budget + self.shed_deadline
    }
}

/// A bounded semaphore over concurrent searches. Acquisition never
/// blocks: a saturated pool refuses the permit and the caller sheds.
pub struct ComputePool {
    limit: usize,
    in_use: AtomicUsize,
    admitted: AtomicU64,
    shed_saturated: AtomicU64,
    shed_over_budget: AtomicU64,
    shed_deadline: AtomicU64,
}

/// An RAII compute permit; dropping it frees the pool slot.
pub struct Permit<'a> {
    pool: &'a ComputePool,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ComputePool {
    /// A pool of `limit` concurrent search permits. Zero is legal and
    /// means "serve caches only": every fresh search sheds.
    pub fn new(limit: usize) -> Self {
        ComputePool {
            limit,
            in_use: AtomicUsize::new_named(0, "pool.in_use"),
            admitted: AtomicU64::new_named(0, "pool.admitted"),
            shed_saturated: AtomicU64::new_named(0, "pool.shed_saturated"),
            shed_over_budget: AtomicU64::new_named(0, "pool.shed_over_budget"),
            shed_deadline: AtomicU64::new_named(0, "pool.shed_deadline"),
        }
    }

    /// The permit bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently held.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Acquire)
    }

    /// Try to take a permit; `Err` is the coded shed response (counted).
    pub fn try_acquire(&self) -> Result<Permit<'_>, ShedReason> {
        let mut cur = self.in_use.load(Ordering::Acquire);
        loop {
            if cur >= self.limit {
                self.shed_saturated.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::PoolSaturated { limit: self.limit });
            }
            match self.in_use.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Permit { pool: self });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record an oracle-triage shed (the pool never saw the request).
    pub fn record_over_budget(&self) {
        self.shed_over_budget.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a spent-deadline shed.
    pub fn record_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_saturated: self.shed_saturated.load(Ordering::Relaxed),
            shed_over_budget: self.shed_over_budget.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
        }
    }
}

/// Planes the pricing proxy keeps beyond the `2r` halo shell.
pub const PROXY_INTERIOR_PLANES: usize = 3;

/// Oracle-predicted cost of running `req`'s full search, microseconds.
///
/// A pure function of the request (no clocks, no execution): the probe
/// configuration's blueprint is lowered over a *proxy grid* — the full
/// `(lx, ly)` plane but only [`PROXY_INTERIOR_PLANES`] interior planes
/// — priced by [`predict_traffic`], scaled back to the real plane
/// count and multiplied by the space size, then divided by the
/// device's achieved bandwidth. Deterministic, so shed decisions that
/// depend only on budgets replay bit-identically.
///
/// A probe the routine rejects falls back to a streaming lower bound
/// (read + write every cell once per configuration).
pub fn predicted_search_micros(req: &TuneRequest) -> u64 {
    let (lx, ly, lz) = (req.dims.lx, req.dims.ly, req.dims.lz);
    let r = req.kernel.radius;
    let routine = req.kernel.method.routine();
    let probe = req.space.configs()[0];
    let proxy_lz = lz.min(2 * r + PROXY_INTERIOR_PLANES);
    let problem = ProblemSpec {
        radius: r,
        elem_bytes: req.kernel.elem_bytes,
        config: probe,
        dims: (lx, ly, proxy_lz),
        smem_limit: Some(req.device.smem_per_sm),
    };
    let per_config_bytes = match routine.supports(&problem) {
        Ok(()) => {
            let bp = routine.blueprint(&probe, r, (lx, ly, proxy_lz));
            let plan = routine.lower(&bp);
            let t = predict_traffic(&plan, req.kernel.precision());
            let proxy_bytes =
                t.global_load_cells * t.word_bytes + t.store_bytes + t.halo_bytes + t.gather_bytes;
            // Scale the proxy's interior-plane traffic up to the real
            // grid depth (both grids share the same halo shell).
            let proxy_interior = proxy_lz.saturating_sub(2 * r).max(1) as f64;
            let real_interior = lz.saturating_sub(2 * r).max(1) as f64;
            proxy_bytes as f64 * (real_interior / proxy_interior)
        }
        // The probe cannot lower — price a streaming lower bound.
        Err(_) => (2 * lx * ly * lz * req.kernel.elem_bytes) as f64,
    };
    let achieved = req.device.peak_bandwidth * req.device.achieved_bw_fraction;
    let secs = per_config_bytes * req.space.len() as f64 / achieved;
    (secs * 1e6).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_refuses_past_its_limit_and_releases_on_drop() {
        let pool = ComputePool::new(2);
        let a = pool.try_acquire().unwrap();
        let _b = pool.try_acquire().unwrap();
        let refused = pool.try_acquire().err().unwrap();
        assert_eq!(refused.code(), "SRV-001");
        assert_eq!(pool.in_use(), 2);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        assert!(pool.try_acquire().is_ok());
        let s = pool.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_saturated, 1);
    }

    #[test]
    fn zero_permit_pool_always_sheds() {
        let pool = ComputePool::new(0);
        assert!(matches!(
            pool.try_acquire(),
            Err(ShedReason::PoolSaturated { limit: 0 })
        ));
    }

    #[test]
    fn shed_codes_are_stable_and_displayed() {
        let reasons = [
            ShedReason::PoolSaturated { limit: 4 },
            ShedReason::OverBudget {
                predicted_micros: 10,
                budget_micros: 5,
            },
            ShedReason::DeadlineExpired {
                elapsed_micros: 9,
                budget_micros: 5,
            },
        ];
        let codes: Vec<_> = reasons.iter().map(|r| r.code()).collect();
        assert_eq!(codes, ["SRV-001", "SRV-002", "SRV-003"]);
        for r in reasons {
            assert!(r.to_string().contains(r.code()));
        }
    }
}
