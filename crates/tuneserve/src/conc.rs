//! Concurrency proofs: the serving layer's cores driven under the
//! `conc-check` model.
//!
//! Each `prove_*` function explores the bounded-exhaustive schedule
//! space (interleavings × injected leader panics × spurious condvar
//! wakeups) of one shipped component — the real [`ComputePool`], the
//! real [`HotKeyLru`], the real [`ShardedStore`], the real
//! [`SingleFlight`] — and returns
//! the checker's [`CheckReport`]. A clean report is a proof over the
//! explored space, not a lucky run: the scheduler, not the OS,
//! decides every interleaving, and the report says how many
//! schedules that covered.
//!
//! The tier-1 test (`tests/conc_proofs.rs`) runs these with a small
//! budget; the `conc` bench binary runs them with a large one and
//! writes the schedule counts into `BENCH_conc.json`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use conc_check::sync::{fault, thread, AtomicU64, AtomicUsize};
use conc_check::{cck_assert, CheckReport, Checker};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::{ParameterSpace, Provenance, TuneSample};
use stencil_grid::Precision;
use stencil_tunestore::{Joined, SingleFlight, TuneKey, TuneRecord, TuneResponse, TuneStore};

use crate::admission::ComputePool;
use crate::lru::HotKeyLru;
use crate::shard::ShardedStore;

/// One named proof and its exploration report.
pub struct ProofOutcome {
    /// Stable proof name (report keys).
    pub name: &'static str,
    /// What the proof asserts, one line.
    pub claim: &'static str,
    /// The checker's report.
    pub report: CheckReport,
}

/// Run every proof with `budget` schedules each.
pub fn run_all(budget: u64) -> Vec<ProofOutcome> {
    vec![
        ProofOutcome {
            name: "pool_admission",
            claim: "saturated pool sheds without blocking; permits never over-admit \
                    and always return",
            report: prove_pool_admission(budget),
        },
        ProofOutcome {
            name: "permit_unwind",
            claim: "a panicking permit holder still frees its slot (no leak on any \
                    unwind schedule)",
            report: prove_permit_unwind(budget),
        },
        ProofOutcome {
            name: "singleflight_burst",
            claim: "a duplicate burst computes exactly once; dying leaders never \
                    strand waiters",
            report: prove_singleflight_burst(budget),
        },
        ProofOutcome {
            name: "lru_adversarial",
            claim: "concurrent insert/hit/evict keeps the LRU bounded and its \
                    counters consistent",
            report: prove_lru_adversarial(budget),
        },
        ProofOutcome {
            name: "shard_isolation",
            claim: "compacting one shard never disturbs traffic on another",
            report: prove_shard_isolation(budget),
        },
    ]
}

/// True when every proof in `outcomes` is clean.
pub fn all_ok(outcomes: &[ProofOutcome]) -> bool {
    outcomes.iter().all(|o| o.report.ok())
}

/// Total distinct schedules executed across `outcomes`.
pub fn total_schedules(outcomes: &[ProofOutcome]) -> u64 {
    outcomes.iter().map(|o| o.report.schedules).sum()
}

/// Saturated-pool admission: under every interleaving of competing
/// `try_acquire`s, at most `limit` permits are simultaneously held,
/// refusals return immediately (the checker would report any blocked
/// schedule as a deadlock), and every permit returns on drop.
pub fn prove_pool_admission(budget: u64) -> CheckReport {
    Checker::with_budget(budget).check(|| {
        let pool = Arc::new(ComputePool::new(1));
        let holders = Arc::new(AtomicUsize::new_named(0, "proof.holders"));
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let pool = Arc::clone(&pool);
                let holders = Arc::clone(&holders);
                thread::spawn_named(&format!("acquirer-{i}"), move || match pool.try_acquire() {
                    Ok(permit) => {
                        let now = holders.fetch_add(1, Ordering::AcqRel) + 1;
                        cck_assert!(
                            now <= pool.limit(),
                            "CCK-004",
                            "{now} permits held at once with limit {}",
                            pool.limit()
                        );
                        holders.fetch_sub(1, Ordering::AcqRel);
                        drop(permit);
                        true
                    }
                    Err(reason) => {
                        cck_assert!(
                            reason.code() == "SRV-001",
                            "CCK-004",
                            "saturated pool shed with wrong code {}",
                            reason.code()
                        );
                        false
                    }
                })
            })
            .collect();
        let admitted = workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .filter(|&got_permit| got_permit)
            .count();
        cck_assert!(
            admitted >= 1,
            "CCK-004",
            "a 1-permit pool admitted nobody out of 4"
        );
        cck_assert!(
            pool.in_use() == 0,
            "CCK-003",
            "{} permits leaked after all workers finished",
            pool.in_use()
        );
        let stats = pool.stats();
        cck_assert!(
            stats.admitted + stats.shed_saturated == 4,
            "CCK-004",
            "admission counters torn: {} admitted + {} shed != 4",
            stats.admitted,
            stats.shed_saturated
        );
    })
}

/// Permit-leak hardening: a holder that panics at an injected fault
/// point still returns its permit through the RAII drop — `in_use`
/// is back to zero on every schedule, including every panic arm.
pub fn prove_permit_unwind(budget: u64) -> CheckReport {
    Checker::with_budget(budget).check(|| {
        let pool = Arc::new(ComputePool::new(2));
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let pool = Arc::clone(&pool);
                thread::spawn_named(&format!("holder-{i}"), move || {
                    if let Ok(_permit) = pool.try_acquire() {
                        // The panic arm of this point unwinds through
                        // the permit's Drop.
                        fault::point(0xA0 + i);
                    }
                })
            })
            .collect();
        for w in workers {
            let _ = w.join();
        }
        cck_assert!(
            pool.in_use() == 0,
            "CCK-003",
            "{} permits leaked across an unwind",
            pool.in_use()
        );
    })
}

/// The K-thread duplicate burst: all surviving threads observe one
/// identical value, the compute runs at most once (exactly once when
/// anyone survives), and a leader killed at the injected fault point
/// never strands its waiters — they retry and one of them leads.
pub fn prove_singleflight_burst(budget: u64) -> CheckReport {
    Checker::with_budget(budget).check(|| {
        let flights: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
        let computes = Arc::new(AtomicU64::new_named(0, "proof.computes"));
        let published = Arc::new(AtomicU64::new_named(0, "proof.store"));
        let resolve = {
            let flights = Arc::clone(&flights);
            let computes = Arc::clone(&computes);
            let published = Arc::clone(&published);
            move || -> u64 {
                // The service's shape: store check, then single-flight,
                // retrying past failed flights.
                loop {
                    let stored = published.load(Ordering::Acquire);
                    if stored != 0 {
                        return stored;
                    }
                    match flights.join(9) {
                        Joined::Shared(v) => return v,
                        Joined::Retry => continue,
                        Joined::Lead(leadership) => {
                            // The service's leader-side store re-check:
                            // a previous leader may have published and
                            // retired its flight between this thread's
                            // store miss and its election. Without this,
                            // the checker exhibits a duplicate compute.
                            let stored = published.load(Ordering::Acquire);
                            if stored != 0 {
                                leadership.publish(stored);
                                return stored;
                            }
                            computes.fetch_add(1, Ordering::AcqRel);
                            published.store(42, Ordering::Release);
                            leadership.publish(42);
                            return 42;
                        }
                    }
                }
            }
        };
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let resolve = resolve.clone();
                thread::spawn_named(&format!("burst-{i}"), resolve)
            })
            .collect();
        let mut survivors = 0u64;
        for w in workers {
            if let Ok(v) = w.join() {
                survivors += 1;
                cck_assert!(
                    v == 42,
                    "CCK-005",
                    "a burst member observed {v} instead of the published 42"
                );
            }
        }
        let ran = computes.load(Ordering::Acquire);
        if survivors > 0 {
            cck_assert!(
                ran == 1,
                "CCK-005",
                "duplicate burst computed {ran} times for one key"
            );
        } else {
            cck_assert!(
                ran == 0,
                "CCK-005",
                "computed {ran} times yet every thread died pre-publish"
            );
        }
        cck_assert!(
            flights.inflight_len() == 0,
            "CCK-003",
            "{} flights leaked after the burst drained",
            flights.inflight_len()
        );
    })
}

fn proof_response(tag: u64) -> TuneResponse {
    let best = TuneSample {
        config: LaunchConfig::new(32, 4, 1, 1),
        mpoints: tag as f64,
    };
    TuneResponse {
        best,
        evaluated: tag,
        samples: vec![best],
        provenance: Provenance::Computed,
        key_hash: tag,
    }
}

/// Adversarial LRU traffic: concurrent puts and gets over a capacity-2
/// cache with three keys. Under every interleaving the cache stays
/// bounded, the lazily-invalidated recency queue respects its sweep
/// bound, and the counters reconcile (`inserts - evictions == len`,
/// `hits + misses == gets`).
pub fn prove_lru_adversarial(budget: u64) -> CheckReport {
    Checker::with_budget(budget).check(|| {
        let lru = Arc::new(HotKeyLru::new(2));
        let gets = Arc::new(AtomicU64::new_named(0, "proof.gets"));
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let lru = Arc::clone(&lru);
                let gets = Arc::clone(&gets);
                thread::spawn_named(&format!("lru-{i}"), move || {
                    let key = i as u64 + 1;
                    lru.put(key, proof_response(key));
                    lru.get(key);
                    gets.fetch_add(1, Ordering::AcqRel);
                    lru.put(3, proof_response(3));
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let stats = lru.stats();
        cck_assert!(
            stats.len <= lru.capacity() as u64,
            "CCK-004",
            "cache holds {} entries over its bound {}",
            stats.len,
            lru.capacity()
        );
        cck_assert!(
            stats.inserts - stats.evictions == stats.len,
            "CCK-004",
            "torn LRU counters: {} inserts - {} evictions != {} resident",
            stats.inserts,
            stats.evictions,
            stats.len
        );
        cck_assert!(
            stats.hits + stats.misses == gets.load(Ordering::Acquire),
            "CCK-004",
            "torn hit/miss counters: {} + {} != {}",
            stats.hits,
            stats.misses,
            gets.load(Ordering::Acquire)
        );
        cck_assert!(
            lru.queue_len() <= 4 * lru.capacity() + 16 + 1,
            "CCK-004",
            "recency queue grew to {} past its sweep bound",
            lru.queue_len()
        );
    })
}

/// Two records whose stable hashes route to shards 0 and 1 of a
/// two-way store (found by seed search; pure, so cheap).
fn records_on_distinct_shards() -> (TuneRecord, TuneRecord) {
    let device = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
    let dims = GridDims::new(32, 32, 8);
    let space = ParameterSpace::quick_space(&device, &kernel, &dims);
    let key_for = |seed: u64| {
        TuneKey::new(
            &device,
            &kernel,
            dims,
            &space,
            stencil_tunestore::TunerKind::Exhaustive,
            seed,
        )
    };
    let mut on_zero = None;
    let mut on_one = None;
    for seed in 0..64 {
        let key = key_for(seed);
        let slot = key.stable_hash() % 2;
        if slot == 0 && on_zero.is_none() {
            on_zero = Some(key);
        } else if slot == 1 && on_one.is_none() {
            on_one = Some(key);
        }
        if on_zero.is_some() && on_one.is_some() {
            break;
        }
    }
    let rec = |key: TuneKey| TuneRecord {
        key,
        best: LaunchConfig::new(32, 4, 1, 1),
        mpoints: 100.0,
        evaluated: 5,
    };
    (
        rec(on_zero.expect("a seed hashing to shard 0")),
        rec(on_one.expect("a seed hashing to shard 1")),
    )
}

/// Shard isolation: one thread compacts shard 0 in a loop while
/// another writes and reads a key on shard 1. Under every
/// interleaving the reader sees its own write verbatim and the
/// compaction epochs advance exactly as many times as compactions
/// ran.
pub fn prove_shard_isolation(budget: u64) -> CheckReport {
    let (rec0, rec1) = records_on_distinct_shards();
    Checker::with_budget(budget).check(move || {
        let store = Arc::new(ShardedStore::mem(2));
        store.put(&rec0);
        let compactor = {
            let store = Arc::clone(&store);
            thread::spawn_named("compactor", move || {
                for _ in 0..2 {
                    store
                        .compact_shard(0)
                        .expect("mem compaction is infallible");
                }
            })
        };
        let traffic = {
            let store = Arc::clone(&store);
            let rec1 = rec1.clone();
            thread::spawn_named("traffic", move || {
                store.put(&rec1);
                store.get(&rec1.key)
            })
        };
        let read_back = traffic.join().unwrap();
        compactor.join().unwrap();
        cck_assert!(
            read_back.as_ref().map(|r| r.evaluated) == Some(rec1.evaluated),
            "CCK-004",
            "a compaction of shard 0 disturbed a write on shard 1: read back {:?}",
            read_back.map(|r| r.evaluated)
        );
        let epochs = store.epochs();
        cck_assert!(
            epochs == vec![2, 0],
            "CCK-004",
            "epochs {epochs:?} after exactly two compactions of shard 0"
        );
        cck_assert!(
            store.shard_lens() == vec![1, 1],
            "CCK-004",
            "shard occupancy {:?} after one record each",
            store.shard_lens()
        );
    })
}
