//! [`ShardedStore`]: N independent [`TuneStore`] shards behind one
//! `TuneStore` facade.
//!
//! Every key routes to exactly one shard by its stable hash, so the
//! lock a `get`/`put` takes is the *shard's* lock — N concurrent
//! requests for different shards never contend, and compacting one
//! shard (an epoch-bumping file rewrite for JSONL shards) never blocks
//! readers or writers of any other shard. The facade's [`StoreStats`]
//! is the per-shard sum, but the per-shard snapshots stay addressable
//! through [`ShardedStore::shard_stats`] — hit/corrupt/stale counters
//! survive the wrapper instead of being summed away.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use conc_check::sync::AtomicU64;

use stencil_tunestore::{JsonlDiskStore, MemStore, StoreStats, TuneKey, TuneRecord, TuneStore};

/// One shard's backend: volatile or JSONL-on-disk.
enum ShardBackend {
    Mem(MemStore),
    Jsonl(JsonlDiskStore),
}

impl ShardBackend {
    fn as_store(&self) -> &dyn TuneStore {
        match self {
            ShardBackend::Mem(s) => s,
            ShardBackend::Jsonl(s) => s,
        }
    }

    /// Collapse the shard to one newest record per key. A no-op for
    /// memory shards (their map is already deduplicated).
    fn compact(&self) -> std::io::Result<usize> {
        match self {
            ShardBackend::Mem(_) => Ok(0),
            ShardBackend::Jsonl(s) => s.compact(),
        }
    }
}

struct Shard {
    backend: ShardBackend,
    /// Compaction epoch: bumped once per completed [`ShardBackend::compact`].
    epoch: AtomicU64,
}

/// What one whole-store compaction did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Disk lines reclaimed per shard (duplicates + corrupt/stale
    /// lines collapsed away), index-aligned with the shards.
    pub reclaimed: Vec<usize>,
    /// Each shard's compaction epoch after the pass.
    pub epochs: Vec<u64>,
}

impl CompactionReport {
    /// Total reclaimed lines across all shards.
    pub fn total_reclaimed(&self) -> usize {
        self.reclaimed.iter().sum()
    }
}

/// N-way sharded [`TuneStore`]; see the [module docs](self).
pub struct ShardedStore {
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// `n` volatile in-memory shards (bench and test backend).
    ///
    /// # Panics
    /// Panics when `n` is zero.
    pub fn mem(n: usize) -> Self {
        assert!(n > 0, "a sharded store needs at least one shard");
        ShardedStore {
            shards: (0..n)
                .map(|_| Shard {
                    backend: ShardBackend::Mem(MemStore::new()),
                    epoch: AtomicU64::new_named(0, "shard.epoch"),
                })
                .collect(),
        }
    }

    /// `n` JSONL shards under `dir` (`shard-00.jsonl`,
    /// `shard-01.jsonl`, ...), each with the full torn-line/corruption
    /// tolerance of [`JsonlDiskStore`].
    ///
    /// # Panics
    /// Panics when `n` is zero.
    pub fn open_dir(dir: impl AsRef<Path>, n: usize) -> std::io::Result<Self> {
        assert!(n > 0, "a sharded store needs at least one shard");
        let dir: PathBuf = dir.as_ref().into();
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let store = JsonlDiskStore::open(dir.join(format!("shard-{i:02}.jsonl")))?;
            shards.push(Shard {
                backend: ShardBackend::Jsonl(store),
                epoch: AtomicU64::new_named(0, "shard.epoch"),
            });
        }
        Ok(ShardedStore { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` routes to.
    pub fn shard_index(&self, key: &TuneKey) -> usize {
        self.index_of_hash(key.stable_hash())
    }

    fn index_of_hash(&self, hash: u64) -> usize {
        // The stable hash is FNV-mixed; modulo over the shard count
        // spreads keys evenly (asserted by the distribution test).
        (hash % self.shards.len() as u64) as usize
    }

    /// Per-shard counter snapshots, index-aligned with the shards —
    /// the satellite contract: aggregate views never destroy them.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards
            .iter()
            .map(|s| s.backend.as_store().stats())
            .collect()
    }

    /// Per-shard live-record counts.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.backend.as_store().len())
            .collect()
    }

    /// Each shard's compaction epoch.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.epoch.load(Ordering::Relaxed))
            .collect()
    }

    /// Compact shard `i` alone, returning reclaimed disk lines. Takes
    /// only that shard's locks: requests hashing elsewhere proceed
    /// untouched for the whole rewrite.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn compact_shard(&self, i: usize) -> std::io::Result<usize> {
        let shard = &self.shards[i];
        let reclaimed = shard.backend.compact()?;
        shard.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(reclaimed)
    }

    /// Compact every shard, one at a time — at no point is more than
    /// one shard's lock held, so the store as a whole stays readable
    /// throughout.
    pub fn compact(&self) -> std::io::Result<CompactionReport> {
        let mut reclaimed = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            reclaimed.push(self.compact_shard(i)?);
        }
        Ok(CompactionReport {
            reclaimed,
            epochs: self.epochs(),
        })
    }
}

impl TuneStore for ShardedStore {
    fn get(&self, key: &TuneKey) -> Option<TuneRecord> {
        self.shards[self.shard_index(key)]
            .backend
            .as_store()
            .get(key)
    }

    fn put(&self, record: &TuneRecord) {
        self.shards[self.shard_index(&record.key)]
            .backend
            .as_store()
            .put(record)
    }

    fn records(&self) -> Vec<TuneRecord> {
        self.shards
            .iter()
            .flat_map(|s| s.backend.as_store().records())
            .collect()
    }

    fn stats(&self) -> StoreStats {
        self.shard_stats()
            .into_iter()
            .fold(StoreStats::default(), |a, b| StoreStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                inserts: a.inserts + b.inserts,
                corrupt: a.corrupt + b.corrupt,
                stale: a.stale + b.stale,
                io_errors: a.io_errors + b.io_errors,
            })
    }

    fn len(&self) -> usize {
        self.shard_lens().iter().sum()
    }
}
