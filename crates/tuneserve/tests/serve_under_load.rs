//! The serving layer under concurrent duplicate bursts and saturated
//! pools: single-flight exactly-once, coded shedding, LRU provenance.

use std::sync::{Arc, Barrier};

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, Method, Variant};
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;
use stencil_tuneserve::{
    ServeOutcome, ServeRequest, ServeTier, ServerConfig, ShardedStore, ShedReason, TuneServer,
};
use stencil_tunestore::{TuneRequest, TuneStore, TunerSpec};

fn request(device: DeviceSpec, order: usize, seed: u64) -> TuneRequest {
    let kernel = KernelSpec::star_order(
        Method::InPlane(Variant::FullSlice),
        order,
        Precision::Single,
    );
    let dims = GridDims::new(96, 96, 32);
    let space = ParameterSpace::quick_space(&device, &kernel, &dims);
    assert!(!space.is_empty());
    TuneRequest {
        device,
        kernel,
        dims,
        space,
        tuner: TunerSpec::Exhaustive,
        seed,
    }
}

fn server(shards: usize, pool_limit: usize, lru_capacity: usize) -> TuneServer {
    TuneServer::new(
        Arc::new(ShardedStore::mem(shards)),
        Arc::new(EvalContext::new()),
        ServerConfig {
            pool_limit,
            lru_capacity,
        },
    )
}

/// K concurrent identical requests with pool capacity for all of them:
/// exactly one search runs, nobody sheds, and the K−1 others come back
/// with a cache/share provenance.
#[test]
fn duplicate_burst_computes_exactly_once() {
    const K: usize = 8;
    let server = Arc::new(server(4, K, 64));
    let req = request(DeviceSpec::gtx580(), 4, 7);
    let barrier = Arc::new(Barrier::new(K));

    let outcomes: Vec<ServeOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                let sreq = ServeRequest::unbounded(req.clone());
                scope.spawn(move || {
                    barrier.wait();
                    server.resolve(&sreq)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = server.stats();
    assert_eq!(stats.service.computed, 1, "single-flight: one search");
    assert_eq!(stats.admission.shed(), 0, "capacity for all: zero shed");
    let mut led = 0;
    for outcome in &outcomes {
        let served = outcome.served().expect("nothing sheds at capacity");
        match served.tier {
            ServeTier::Computed => led += 1,
            ServeTier::Lru | ServeTier::Store | ServeTier::Shared => {}
            other => panic!("unexpected tier {other:?}"),
        }
    }
    assert_eq!(led, 1, "exactly one request led the flight");
    // All K responses carry the same winning configuration.
    let best = outcomes[0].served().unwrap().response.best;
    for o in &outcomes {
        assert_eq!(o.served().unwrap().response.best, best);
    }
    // A later resolve is a pure LRU hit.
    let again = server.resolve(&ServeRequest::unbounded(req));
    assert_eq!(again.served().unwrap().tier, ServeTier::Lru);
    assert_eq!(server.stats().service.computed, 1);
}

/// A zero-permit server still serves everything the store already
/// knows; only *fresh* searches shed, and they shed with `SRV-001`.
#[test]
fn saturated_pool_sheds_fresh_work_but_serves_caches() {
    let store = Arc::new(ShardedStore::mem(4));
    let ctx = Arc::new(EvalContext::new());
    let warm = request(DeviceSpec::gtx580(), 2, 3);
    let fresh = request(DeviceSpec::gtx680(), 4, 3);

    // Warm the store through a server that may compute.
    let writer = TuneServer::new(
        Arc::clone(&store),
        Arc::clone(&ctx),
        ServerConfig {
            pool_limit: 1,
            lru_capacity: 16,
        },
    );
    assert!(writer
        .resolve(&ServeRequest::unbounded(warm.clone()))
        .served()
        .is_some());

    // A cache-only server over the same store: zero permits.
    let frozen = TuneServer::new(
        store,
        ctx,
        ServerConfig {
            pool_limit: 0,
            lru_capacity: 16,
        },
    );
    let hit = frozen.resolve(&ServeRequest::unbounded(warm));
    assert_eq!(hit.served().unwrap().tier, ServeTier::Store);

    let shed = frozen.resolve(&ServeRequest::unbounded(fresh));
    match shed {
        ServeOutcome::Shed(reason @ ShedReason::PoolSaturated { limit: 0 }) => {
            assert_eq!(reason.code(), "SRV-001");
        }
        other => panic!("expected SRV-001 shed, got {other:?}"),
    }
    let stats = frozen.stats();
    assert_eq!(stats.admission.shed_saturated, 1);
    assert_eq!(stats.service.computed, 0);
}

/// Duplicates racing a pool of one: whoever needs a permit and cannot
/// get one sheds with a code — never blocks, never panics — while the
/// flight itself still runs exactly once, and a retry after the burst
/// is served without recomputing.
#[test]
fn saturated_duplicates_shed_coded_and_never_recompute() {
    const K: usize = 6;
    let server = Arc::new(server(4, 1, 64));
    let req = request(DeviceSpec::c2070(), 4, 11);
    let barrier = Arc::new(Barrier::new(K));

    let outcomes: Vec<ServeOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                let sreq = ServeRequest::unbounded(req.clone());
                scope.spawn(move || {
                    barrier.wait();
                    server.resolve(&sreq)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(server.stats().service.computed, 1, "one search at most");
    assert!(outcomes.iter().any(|o| o.served().is_some()));
    for outcome in &outcomes {
        if let Some(reason) = outcome.shed() {
            assert!(
                matches!(reason, ShedReason::PoolSaturated { limit: 1 }),
                "only coded pool sheds allowed: {reason:?}"
            );
        }
    }
    // The burst is over: retries are served from cache, no new search.
    let retry = server.resolve(&ServeRequest::unbounded(req));
    let tier = retry.served().expect("store is warm").tier;
    assert!(matches!(tier, ServeTier::Lru | ServeTier::Store));
    assert_eq!(server.stats().service.computed, 1);
}

/// Budget gating: a fresh search priced over its budget is shed with
/// `SRV-002` before touching the pool, a zero budget sheds one way or
/// the other (`SRV-002`/`SRV-003`) without ever searching — but
/// budgeted requests for already-cached keys are still served (cheap
/// tiers bypass both gates).
#[test]
fn budgets_triage_fresh_searches_only() {
    let server = server(2, 4, 16);
    let req = request(DeviceSpec::gtx580(), 2, 19);

    // The oracle prices this search in the milliseconds: a budget one
    // microsecond short of the prediction triages it deterministically
    // (elapsed time at admission is far below the budget).
    let predicted = server.predicted_micros(&req);
    assert!(predicted > 1000, "search priced at {predicted}us");
    let triaged = server.resolve(&ServeRequest::with_budget(req.clone(), predicted - 1));
    match triaged {
        ServeOutcome::Shed(
            reason @ ShedReason::OverBudget {
                predicted_micros, ..
            },
        ) => {
            assert_eq!(reason.code(), "SRV-002");
            assert_eq!(predicted_micros, predicted);
        }
        other => panic!("expected SRV-002 shed, got {other:?}"),
    }
    assert_eq!(server.stats().admission.shed_over_budget, 1);

    // A zero budget sheds coded too — by deadline or triage, whichever
    // gate trips first — and still runs no search.
    let starved = server.resolve(&ServeRequest::with_budget(req.clone(), 0));
    let code = starved.shed().expect("zero budget sheds").code();
    assert!(code == "SRV-002" || code == "SRV-003", "coded shed: {code}");
    assert_eq!(server.stats().service.computed, 0);

    // Unbounded resolve fills the caches...
    assert!(server
        .resolve(&ServeRequest::unbounded(req.clone()))
        .served()
        .is_some());
    // ...after which even a zero budget is served from the LRU.
    let cached = server.resolve(&ServeRequest::with_budget(req, 0));
    assert_eq!(cached.served().unwrap().tier, ServeTier::Lru);
}

/// In-batch dedup at the server: duplicates inside one batch never
/// reach the tiered path — they are served the canonical occurrence's
/// response as `Shared`, and the dedup counter records them.
#[test]
fn batch_dedups_identical_keys_before_resolution() {
    let server = server(4, 4, 64);
    let a = request(DeviceSpec::gtx580(), 2, 5);
    let b = request(DeviceSpec::gtx680(), 4, 5);
    let batch = vec![
        ServeRequest::unbounded(a.clone()),
        ServeRequest::unbounded(a.clone()),
        ServeRequest::unbounded(b),
        ServeRequest::unbounded(a),
    ];

    let outcomes = server.resolve_batch(&batch);
    assert_eq!(outcomes.len(), 4);
    let stats = server.stats();
    assert_eq!(stats.service.computed, 2, "two distinct keys, two searches");
    assert_eq!(stats.batch_deduped, 2, "slots 1 and 3 deduped onto slot 0");
    assert_eq!(outcomes[1].served().unwrap().tier, ServeTier::Shared);
    assert_eq!(outcomes[3].served().unwrap().tier, ServeTier::Shared);
    assert_eq!(
        outcomes[0].served().unwrap().response.best,
        outcomes[1].served().unwrap().response.best
    );
    assert_eq!(
        outcomes[1].served().unwrap().response.best,
        outcomes[3].served().unwrap().response.best
    );
}

/// The sharded store spreads a real key population over its shards,
/// keeps per-shard stats addressable, and aggregates them losslessly.
#[test]
fn sharded_store_distributes_and_reports_per_shard() {
    let store = ShardedStore::mem(4);
    let ctx = Arc::new(EvalContext::new());
    let devices = [
        DeviceSpec::gtx580(),
        DeviceSpec::gtx680(),
        DeviceSpec::c2070(),
    ];
    let mut keys = Vec::new();
    for device in &devices {
        for order in [2, 4] {
            for seed in [1, 2] {
                keys.push(request(device.clone(), order, seed));
            }
        }
    }

    let server = TuneServer::new(
        Arc::new(store),
        ctx,
        ServerConfig {
            pool_limit: 4,
            lru_capacity: 0, // disable the LRU so gets hit the shards
        },
    );
    for req in &keys {
        assert!(server
            .resolve(&ServeRequest::unbounded(req.clone()))
            .served()
            .is_some());
    }
    let store = server.store();
    assert_eq!(store.len(), keys.len());
    let lens = store.shard_lens();
    assert_eq!(lens.iter().sum::<usize>(), keys.len());
    assert!(
        lens.iter().filter(|&&l| l > 0).count() >= 2,
        "12 keys land on at least two of four shards: {lens:?}"
    );
    // Every key routes to the shard its hash says, stably.
    for req in &keys {
        let key = req.key();
        assert_eq!(store.shard_index(&key), store.shard_index(&key));
        assert!(store.get(&key).is_some());
    }
    // Aggregate stats are exactly the per-shard sum.
    let per_shard = store.shard_stats();
    let agg = server.stats().store;
    assert_eq!(per_shard.len(), 4);
    assert_eq!(agg.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
    assert_eq!(agg.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
    assert_eq!(
        agg.inserts,
        per_shard.iter().map(|s| s.inserts).sum::<u64>()
    );
    assert!(agg.inserts >= keys.len() as u64);
    // The server's stats snapshot carries the un-summed vector too.
    assert_eq!(server.stats().per_shard, per_shard);
}

/// JSONL shards compact independently: compacting one shard reclaims
/// its duplicate lines and bumps *its* epoch only, while every other
/// shard (and the whole facade) keeps serving reads throughout.
#[test]
fn jsonl_shard_compaction_is_per_shard_and_epoch_bumped() {
    let dir = tempdir();
    let service = stencil_tunestore::TuneService::new(
        Arc::new(ShardedStore::open_dir(&dir, 3).unwrap()) as Arc<dyn TuneStore>,
        Arc::new(EvalContext::new()),
    );

    // Write each key twice (re-put on resolve refresh) so shard files
    // accumulate superseded lines.
    let mut reqs = Vec::new();
    for (order, seed) in [(2, 1), (4, 1), (2, 2), (4, 2), (2, 3), (4, 3)] {
        reqs.push(request(DeviceSpec::gtx580(), order, seed));
    }
    for req in &reqs {
        let resp = service.resolve(req);
        // Duplicate the line on disk deliberately.
        service.store().put(&stencil_tunestore::TuneRecord {
            key: req.key(),
            best: resp.best.config,
            mpoints: resp.best.mpoints,
            evaluated: resp.evaluated,
        });
    }

    // Reopen through the sharded facade under test.
    drop(service);
    let store = ShardedStore::open_dir(&dir, 3).unwrap();
    assert_eq!(store.len(), reqs.len(), "duplicates collapse on read");
    let dirty: Vec<usize> = (0..3).filter(|&i| store.shard_lens()[i] > 0).collect();
    let victim = dirty[0];

    assert_eq!(store.epochs(), vec![0, 0, 0]);
    let reclaimed = store.compact_shard(victim).unwrap();
    assert!(reclaimed > 0, "superseded lines were reclaimed");
    let epochs = store.epochs();
    assert_eq!(epochs[victim], 1, "compacted shard's epoch bumped");
    for (i, &e) in epochs.iter().enumerate() {
        if i != victim {
            assert_eq!(e, 0, "other shards' epochs untouched");
        }
    }
    // Every record is still served after the rewrite.
    for req in &reqs {
        assert!(store.get(&req.key()).is_some());
    }
    // A whole-store pass compacts the rest and reports per shard.
    let report = store.compact().unwrap();
    assert_eq!(report.reclaimed.len(), 3);
    assert_eq!(report.epochs[victim], 2);
    assert_eq!(store.len(), reqs.len());

    std::fs::remove_dir_all(&dir).ok();
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tuneserve-shard-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
