//! The CI contract of the traffic replay: closed-loop replays of one
//! trace are bit-deterministic in their tier/shed shape, warm replays
//! re-search nothing, and the persisted report carries every field the
//! serving dashboard diffs.

use std::sync::Arc;

use inplane_core::EvalContext;
use stencil_tuneserve::{
    replay, zipf_trace, ReplayConfig, ServerConfig, ServingReport, ShardedStore, TrafficMix,
    TuneServer,
};

fn smoke_server() -> TuneServer {
    TuneServer::new(
        Arc::new(ShardedStore::mem(4)),
        Arc::new(EvalContext::new()),
        ServerConfig {
            pool_limit: 2,
            lru_capacity: 32,
        },
    )
}

/// Two fresh servers replaying one trace closed-loop agree exactly on
/// offered/tier/shed counts — the provenance mix is a pure function of
/// trace + server state, which is what the CI smoke job pins.
#[test]
fn closed_loop_replay_is_deterministic() {
    let universe = TrafficMix::smoke().universe();
    let trace = zipf_trace(universe.len(), 300, 1.1, 0.2, 42);

    let a = replay(&smoke_server(), &universe, &trace, 1, None);
    let b = replay(&smoke_server(), &universe, &trace, 1, None);
    assert_eq!(a.deterministic_shape(), b.deterministic_shape());

    // Closed-loop accounting: everything offered was served (no
    // budgets, pool never saturates with one worker), the first
    // occurrence of each touched key computed, every repeat was cached.
    assert_eq!(a.offered, 300);
    assert_eq!(a.sheds.total(), 0);
    assert_eq!(a.tiers.total(), 300);
    let touched: std::collections::HashSet<usize> = trace.iter().copied().collect();
    assert_eq!(
        a.tiers.computed + a.tiers.warm_started,
        touched.len() as u64
    );
    assert_eq!(a.tiers.lru + a.tiers.store, 300 - touched.len() as u64);
}

/// A warm replay of the same trace over the already-populated server is
/// served entirely from cache: zero new searches, ≥ 90 % (here 100 %)
/// store/LRU/share provenance — the acceptance criterion.
#[test]
fn warm_replay_reuses_everything() {
    let universe = TrafficMix::smoke().universe();
    let trace = zipf_trace(universe.len(), 300, 1.1, 0.2, 42);
    let server = smoke_server();

    let cold = replay(&server, &universe, &trace, 1, None);
    let computed_after_cold = server.stats().service.computed;
    assert!(computed_after_cold > 0);

    let warm = replay(&server, &universe, &trace, 1, None);
    assert_eq!(warm.tiers.computed, 0, "warm replay re-searches nothing");
    assert_eq!(warm.tiers.warm_started, 0);
    assert_eq!(warm.sheds.total(), 0);
    assert_eq!(warm.tiers.cache_served(), warm.offered);
    assert!(warm.cache_served_ratio() >= 0.9);
    assert_eq!(
        server.stats().service.computed,
        computed_after_cold,
        "no search ran after the store went warm"
    );
    assert!(cold.tiers.total() + cold.sheds.total() == cold.offered);
}

/// Multi-worker replay keeps the hard invariants even when racing:
/// served + shed == offered, and no request ever blocks or panics.
#[test]
fn racing_replay_conserves_offered_load() {
    let universe = TrafficMix::smoke().universe();
    let trace = zipf_trace(universe.len(), 400, 1.1, 0.4, 7);
    let server = smoke_server();

    let out = replay(&server, &universe, &trace, 4, None);
    assert_eq!(out.offered, 400);
    assert_eq!(out.tiers.total() + out.sheds.total(), 400);
    // Single-flight: at most one search per distinct key, ever.
    let touched: std::collections::HashSet<usize> = trace.iter().copied().collect();
    let stats = server.stats();
    assert!(stats.service.computed + stats.service.warm_started <= touched.len() as u64);
}

/// The persisted report carries the full serving surface: latency
/// quantiles, shed codes, tier mix, per-shard counters, schema version.
#[test]
fn serving_report_carries_the_dashboard_fields() {
    let universe = TrafficMix::smoke().universe();
    let trace = zipf_trace(universe.len(), 120, 1.1, 0.2, 42);
    let server = smoke_server();
    let cold = replay(&server, &universe, &trace, 1, None);
    let warm = replay(&server, &universe, &trace, 1, None);

    let report = ServingReport {
        config: ReplayConfig {
            requests: 120,
            workers: 1,
            ..ReplayConfig::default()
        },
        shards: server.store().shard_count(),
        pool_limit: 2,
        lru_capacity: 32,
        universe_keys: universe.len(),
        cold,
        warm,
        stats: server.stats(),
    };
    let json = report.to_json();
    for field in [
        "\"schema_version\"",
        "\"cold\"",
        "\"warm\"",
        "\"p50\"",
        "\"p99\"",
        "\"p999\"",
        "\"shed_rate\"",
        "\"throughput_rps\"",
        "\"tiers\"",
        "\"SRV-001\"",
        "\"SRV-002\"",
        "\"SRV-003\"",
        "\"cache_served_ratio\"",
        "\"per_shard\"",
        "\"batch_deduped\"",
    ] {
        assert!(json.contains(field), "report JSON missing {field}: {json}");
    }
    // The warm section reports a fully cache-served replay.
    assert!(json.contains("\"computed\": 0"));

    // And it round-trips to disk atomically.
    let path =
        std::env::temp_dir().join(format!("tuneserve-report-test-{}.json", std::process::id()));
    report.write(&path).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, json);
    std::fs::remove_file(&path).ok();
}
