//! Tier-1 concurrency proofs: the serving cores explored under the
//! `conc-check` model with a budget small enough for every test run.
//! The `conc` bench binary repeats these with a much larger budget
//! and records the schedule counts in `BENCH_conc.json`.

use conc_check::{code_info, Checker, REGISTRY};
use stencil_tuneserve::conc;

const TIER1_BUDGET: u64 = 512;

#[test]
fn all_serving_proofs_are_clean_at_tier1_budget() {
    let outcomes = conc::run_all(TIER1_BUDGET);
    assert_eq!(outcomes.len(), 5, "a proof was added or dropped silently");
    for o in &outcomes {
        assert!(
            o.report.ok(),
            "proof `{}` ({}) found:\n{:#?}",
            o.name,
            o.claim,
            o.report.findings
        );
        assert!(
            o.report.schedules > 0,
            "proof `{}` explored nothing",
            o.name
        );
    }
}

#[test]
fn permits_return_under_real_threads_and_panics() {
    // The production-path twin of `prove_permit_unwind`: real OS
    // threads on real std::sync, arbitrary OS interleavings, half the
    // holders panicking mid-hold. The RAII Permit must return every
    // slot regardless.
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use stencil_tuneserve::ComputePool;

    let pool = Arc::new(ComputePool::new(3));
    for round in 0..50 {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        if let Ok(_permit) = pool.try_acquire() {
                            std::thread::yield_now();
                            if (round + i) % 2 == 0 {
                                panic!("injected: holder dies with its permit");
                            }
                        }
                    }));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.in_use(), 0, "permit leaked in round {round}");
    }
}

#[test]
fn proofs_replay_deterministically() {
    // Same seed, same budget → bit-identical exploration: the same
    // number of schedules, prunes and depth, and the same findings
    // (none). This is the property that makes a shipped
    // counterexample trace trustworthy.
    let first = conc::prove_singleflight_burst(128);
    let second = conc::prove_singleflight_burst(128);
    assert_eq!(first.schedules, second.schedules);
    assert_eq!(first.pruned, second.pruned);
    assert_eq!(first.max_depth, second.max_depth);
    assert_eq!(first.findings.len(), second.findings.len());
}

#[test]
fn every_emitted_code_is_registered() {
    // Run a checker designed to produce a finding and confirm the
    // code resolves in the registry — i.e. the serving proofs can
    // never emit a code the docs don't define.
    let report = Checker::with_budget(64).check(|| {
        conc_check::violation("CCK-004", "registry probe");
    });
    assert!(!report.ok());
    for f in &report.findings {
        let info = code_info(&f.code).expect("emitted code must be registered");
        assert!(!info.summary.is_empty());
    }
    // And the registry itself is well-formed: unique codes, banded
    // severities.
    for info in REGISTRY {
        assert!(info.code.starts_with("CCK-"));
    }
}
