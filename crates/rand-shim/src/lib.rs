#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Std-only, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API surface it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool`. The generator is SplitMix64 — not the real
//! `StdRng` stream, but every use in this repository only requires a
//! well-mixed *deterministic* stream for a given seed, which SplitMix64
//! provides.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (800..1200).contains(&heads),
            "suspicious coin: {heads}/2000"
        );
    }

    #[test]
    fn spreads_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0usize..10));
        }
        assert_eq!(seen.len(), 10);
    }
}
