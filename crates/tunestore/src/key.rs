//! Stable, versioned identity of one tuning problem.
//!
//! A [`TuneKey`] content-hashes everything that determines a tuning
//! result: the device-spec fingerprint, the full [`KernelSpec`], the
//! problem grid, the tuner kind with its parameters (β for the
//! model-based tuner, the annealing schedule for the stochastic one),
//! the measurement-noise seed, and a fingerprint of the searched
//! parameter space. Two runs with equal keys are bit-identical, so a
//! persisted best configuration can be served verbatim.
//!
//! The hash uses the same explicit FNV-style fold as
//! [`inplane_core::PlanKey`] — not `std`'s hasher — so it is identical
//! across processes and Rust versions, and it folds in
//! [`SCHEMA_VERSION`] so any change to the key layout silently
//! invalidates every stale persisted record (the stored hash no longer
//! matches the recomputed one).

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, LaunchConfig, Method};
use stencil_autotune::{AnnealOptions, ParameterSpace};

/// Version of the key layout and record schema. Bump whenever a hashed
/// field is added, removed, or re-ordered: records persisted under any
/// other version are evicted at load.
pub const SCHEMA_VERSION: u64 = 1;

pub(crate) fn fold_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

pub(crate) fn fold_word(h: &mut u64, w: u64) {
    fold_bytes(h, &w.to_le_bytes());
}

/// FNV-1a over a byte string, seeded with the standard offset basis.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fold_bytes(&mut h, bytes);
    h
}

/// Which search strategy produced (or should produce) a result, with
/// the parameters that change its answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerKind {
    /// Exhaustive search over the whole space (§IV-C).
    Exhaustive,
    /// Model-based tuning (§VI) with its β cutoff, carried as `f64`
    /// bits so the key is exact.
    ModelBased {
        /// `beta_percent.to_bits()`.
        beta_bits: u64,
    },
    /// Simulated-annealing search with its schedule.
    Stochastic {
        /// Evaluation budget.
        evaluations: u64,
        /// `initial_temperature.to_bits()`.
        temperature_bits: u64,
        /// Restart stall limit.
        stall_limit: u64,
    },
}

impl TunerKind {
    /// The model-based tuner with cutoff `beta_percent`.
    pub fn model_based(beta_percent: f64) -> Self {
        TunerKind::ModelBased {
            beta_bits: beta_percent.to_bits(),
        }
    }

    /// The stochastic tuner under `opts`.
    pub fn stochastic(opts: &AnnealOptions) -> Self {
        TunerKind::Stochastic {
            evaluations: opts.evaluations as u64,
            temperature_bits: opts.initial_temperature.to_bits(),
            stall_limit: opts.stall_limit as u64,
        }
    }

    /// Serialized tag.
    pub fn label(&self) -> &'static str {
        match self {
            TunerKind::Exhaustive => "exhaustive",
            TunerKind::ModelBased { .. } => "model-based",
            TunerKind::Stochastic { .. } => "stochastic",
        }
    }

    /// The three parameter words folded into the key hash (zero-padded).
    pub(crate) fn params(&self) -> [u64; 3] {
        match *self {
            TunerKind::Exhaustive => [0, 0, 0],
            TunerKind::ModelBased { beta_bits } => [beta_bits, 0, 0],
            TunerKind::Stochastic {
                evaluations,
                temperature_bits,
                stall_limit,
            } => [evaluations, temperature_bits, stall_limit],
        }
    }

    /// Rebuild from the serialized tag + parameter words.
    pub(crate) fn from_parts(label: &str, params: [u64; 3]) -> Option<Self> {
        match label {
            "exhaustive" => Some(TunerKind::Exhaustive),
            "model-based" => Some(TunerKind::ModelBased {
                beta_bits: params[0],
            }),
            "stochastic" => Some(TunerKind::Stochastic {
                evaluations: params[0],
                temperature_bits: params[1],
                stall_limit: params[2],
            }),
            _ => None,
        }
    }
}

/// Parse a [`Method`] back from its `label()` rendering by consulting
/// the routine registry — new routines are parseable the day they are
/// registered, with no table to maintain here.
pub fn method_from_label(label: &str) -> Option<Method> {
    inplane_core::routine_by_label(label).map(|rt| rt.method())
}

/// The stable routine id is the hashed method word. Ids are pinned by
/// the registry (and by the `legacy_tune_key_hashes_are_pinned` test),
/// so persisted keys survive the Routine migration byte-for-byte.
fn method_code(method: Method) -> u64 {
    method.routine().id()
}

/// Order-sensitive fingerprint of a search space's configurations.
pub fn space_fingerprint(space: &ParameterSpace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fold_word(&mut h, space.len() as u64);
    for c in space.configs() {
        for w in [c.tx as u64, c.ty as u64, c.rx as u64, c.ry as u64] {
            fold_word(&mut h, w);
        }
    }
    h
}

/// Stable content-hash identity of one tuning problem.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneKey {
    /// Marketing name of the device (display / debugging only — the
    /// fingerprint is what the hash covers).
    pub device_name: String,
    /// [`DeviceSpec::fingerprint`] of the target device.
    pub device_fp: u64,
    /// The kernel being tuned.
    pub kernel: KernelSpec,
    /// Problem-grid dimensions.
    pub dims: GridDims,
    /// Search strategy + parameters.
    pub tuner: TunerKind,
    /// Measurement-noise seed of the run.
    pub seed: u64,
    /// Fingerprint of the searched [`ParameterSpace`].
    pub space_fp: u64,
    hash: u64,
}

impl TuneKey {
    /// Key for tuning `kernel` on `device` over `dims`, searching
    /// `space` with `tuner` under noise seed `seed`.
    pub fn new(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: GridDims,
        space: &ParameterSpace,
        tuner: TunerKind,
        seed: u64,
    ) -> Self {
        Self::from_parts(
            device.name.to_string(),
            device.fingerprint(),
            kernel.clone(),
            dims,
            tuner,
            seed,
            space_fingerprint(space),
        )
    }

    /// Rebuild a key from already-extracted parts (what the record
    /// loader does); the hash is always recomputed, never trusted.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        device_name: String,
        device_fp: u64,
        kernel: KernelSpec,
        dims: GridDims,
        tuner: TunerKind,
        seed: u64,
        space_fp: u64,
    ) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fold_word(&mut h, SCHEMA_VERSION);
        fold_word(&mut h, device_fp);
        fold_bytes(&mut h, kernel.name.as_bytes());
        let params = tuner.params();
        for w in [
            method_code(kernel.method),
            kernel.radius as u64,
            kernel.elem_bytes as u64,
            kernel.flops_per_point as u64,
            kernel.streamed_inputs as u64,
            kernel.coeff_inputs as u64,
            kernel.outputs as u64,
            dims.lx as u64,
            dims.ly as u64,
            dims.lz as u64,
            fnv64(tuner.label().as_bytes()),
            params[0],
            params[1],
            params[2],
            seed,
            space_fp,
        ] {
            fold_word(&mut h, w);
        }
        TuneKey {
            device_name,
            device_fp,
            kernel,
            dims,
            tuner,
            seed,
            space_fp,
            hash: h,
        }
    }

    /// The precomputed process-stable 64-bit hash of this key.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }

    /// Hash of the kernel identity alone (every [`KernelSpec`] field,
    /// no device/grid/tuner) — what warm-starting matches on: "the same
    /// kernel, tuned anywhere else".
    pub fn kernel_identity(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fold_bytes(&mut h, self.kernel.name.as_bytes());
        for w in [
            method_code(self.kernel.method),
            self.kernel.radius as u64,
            self.kernel.elem_bytes as u64,
            self.kernel.flops_per_point as u64,
            self.kernel.streamed_inputs as u64,
            self.kernel.coeff_inputs as u64,
            self.kernel.outputs as u64,
        ] {
            fold_word(&mut h, w);
        }
        h
    }

    /// True when `other` is the same kernel tuned in a different
    /// setting (device and/or grid) — a warm-start donor.
    pub fn is_sibling_of(&self, other: &TuneKey) -> bool {
        self.kernel_identity() == other.kernel_identity()
            && (self.device_fp != other.device_fp || self.dims != other.dims)
    }
}

impl std::hash::Hash for TuneKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The best configuration a key resolved to (what gets persisted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestConfig {
    /// The winning launch configuration.
    pub config: LaunchConfig,
    /// Its measured throughput, MPoint/s.
    pub mpoints: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    fn space(dev: &DeviceSpec, k: &KernelSpec, dims: &GridDims) -> ParameterSpace {
        ParameterSpace::quick_space(dev, k, dims)
    }

    #[test]
    fn keys_distinguish_every_field() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(4);
        let s = space(&dev, &k, &dims);
        let base = TuneKey::new(&dev, &k, dims, &s, TunerKind::Exhaustive, 1);
        let variants = [
            TuneKey::new(
                &DeviceSpec::gtx680(),
                &k,
                dims,
                &s,
                TunerKind::Exhaustive,
                1,
            ),
            TuneKey::new(&dev, &kernel(8), dims, &s, TunerKind::Exhaustive, 1),
            TuneKey::new(
                &dev,
                &k,
                GridDims::new(256, 256, 32),
                &s,
                TunerKind::Exhaustive,
                1,
            ),
            TuneKey::new(&dev, &k, dims, &s, TunerKind::model_based(5.0), 1),
            TuneKey::new(&dev, &k, dims, &s, TunerKind::model_based(10.0), 1),
            TuneKey::new(
                &dev,
                &k,
                dims,
                &s,
                TunerKind::stochastic(&AnnealOptions::default()),
                1,
            ),
            TuneKey::new(&dev, &k, dims, &s, TunerKind::Exhaustive, 2),
            TuneKey::new(
                &dev,
                &k,
                dims,
                &ParameterSpace::from_configs(vec![LaunchConfig::new(32, 4, 1, 1)]),
                TunerKind::Exhaustive,
                1,
            ),
        ];
        for other in &variants {
            assert_ne!(base.stable_hash(), other.stable_hash());
        }
        let again = TuneKey::new(&dev, &k, dims, &s, TunerKind::Exhaustive, 1);
        assert_eq!(base, again);
        assert_eq!(base.stable_hash(), again.stable_hash());
    }

    #[test]
    fn siblings_share_kernel_but_not_setting() {
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(4);
        let d580 = DeviceSpec::gtx580();
        let d680 = DeviceSpec::gtx680();
        let a = TuneKey::new(
            &d580,
            &k,
            dims,
            &space(&d580, &k, &dims),
            TunerKind::Exhaustive,
            1,
        );
        let b = TuneKey::new(
            &d680,
            &k,
            dims,
            &space(&d680, &k, &dims),
            TunerKind::Exhaustive,
            1,
        );
        let c = TuneKey::new(
            &d580,
            &kernel(8),
            dims,
            &space(&d580, &kernel(8), &dims),
            TunerKind::Exhaustive,
            1,
        );
        assert!(a.is_sibling_of(&b));
        assert!(b.is_sibling_of(&a));
        assert!(!a.is_sibling_of(&a), "a key is not its own sibling");
        assert!(!a.is_sibling_of(&c), "different kernels never match");
    }

    #[test]
    fn method_labels_round_trip() {
        for m in [
            Method::ForwardPlane,
            Method::InPlane(Variant::Classical),
            Method::InPlane(Variant::Vertical),
            Method::InPlane(Variant::Horizontal),
            Method::InPlane(Variant::FullSlice),
            Method::InPlane(Variant::DoubleBuffered),
        ] {
            assert_eq!(method_from_label(&m.label()), Some(m));
        }
        assert_eq!(method_from_label("warp-drive"), None);
    }

    /// The Routine migration must not invalidate persisted tunes: the
    /// hashed method word is now the registry id, and these literals
    /// were captured from the pre-migration `match`-based `method_code`.
    /// If any of them drifts, every stored record for that method would
    /// silently miss on lookup.
    #[test]
    fn legacy_tune_key_hashes_are_pinned() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let space = ParameterSpace::from_configs(vec![LaunchConfig::new(64, 4, 1, 2)]);
        let pinned: [(Method, u64); 5] = [
            (Method::ForwardPlane, 0x456f_e7ca_a144_71f9),
            (Method::InPlane(Variant::Classical), 0x22b4_76e6_cdb6_1528),
            (Method::InPlane(Variant::Vertical), 0xf901_f135_62e6_20c8),
            (Method::InPlane(Variant::Horizontal), 0x596d_081d_1a4f_4f17),
            (Method::InPlane(Variant::FullSlice), 0xcbad_48b1_efa6_6c6e),
        ];
        for (m, want) in pinned {
            let k = KernelSpec::star_order(m, 4, Precision::Single);
            let key = TuneKey::new(&dev, &k, dims, &space, TunerKind::Exhaustive, 42);
            assert_eq!(
                key.stable_hash(),
                want,
                "{} no longer hashes to its pre-Routine value",
                m.label()
            );
        }
    }

    /// The device-model parameterization (`coalesce_segment_bytes`,
    /// `smem_bank_bytes`, the wave64/Ampere presets) must not perturb
    /// the NVIDIA fingerprints that persisted tune keys embed: the new
    /// fields are elided from `DeviceSpec::fingerprint` at their legacy
    /// defaults, so every stored optimum stays warm. These fingerprints
    /// were captured before the fields existed; the pinned key hashes
    /// above depend on them transitively.
    #[test]
    fn nvidia_fingerprints_survive_device_model_extension() {
        assert_eq!(DeviceSpec::gtx580().fingerprint(), 0xb918_beb1_e8a8_43bc);
        assert_eq!(DeviceSpec::gtx680().fingerprint(), 0xb20e_b1aa_2c5a_778e);
        assert_eq!(DeviceSpec::c2070().fingerprint(), 0x1972_ea53_7613_347e);

        // And keys built on them hash identically whether or not the
        // new fields sit at their defaults explicitly.
        let mut dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let space = ParameterSpace::from_configs(vec![LaunchConfig::new(64, 4, 1, 2)]);
        let k = KernelSpec::star_order(Method::ForwardPlane, 4, Precision::Single);
        let key = TuneKey::new(&dev, &k, dims, &space, TunerKind::Exhaustive, 42);
        dev.coalesce_segment_bytes = gpu_sim::LEGACY_COALESCE_SEGMENT_BYTES;
        dev.smem_bank_bytes = gpu_sim::LEGACY_SMEM_BANK_BYTES;
        let again = TuneKey::new(&dev, &k, dims, &space, TunerKind::Exhaustive, 42);
        assert_eq!(key.stable_hash(), again.stable_hash());

        // A genuinely different geometry (the wave64 preset) must key
        // a different store slot.
        let amd = TuneKey::new(
            &DeviceSpec::hd7970(),
            &k,
            dims,
            &space,
            TunerKind::Exhaustive,
            42,
        );
        assert_ne!(key.stable_hash(), amd.stable_hash());
    }

    #[test]
    fn tuner_kind_round_trips() {
        for t in [
            TunerKind::Exhaustive,
            TunerKind::model_based(5.0),
            TunerKind::stochastic(&AnnealOptions::default()),
        ] {
            assert_eq!(TunerKind::from_parts(t.label(), t.params()), Some(t));
        }
        assert_eq!(TunerKind::from_parts("oracle", [0, 0, 0]), None);
    }
}
