//! A deliberately tiny JSON codec for the store's flat record objects.
//!
//! The build environment has no access to crates.io, so the JSONL
//! format is read and written by hand. Only the subset the store emits
//! is supported: one flat object per line whose values are unsigned
//! integers, floats, or strings (escapes limited to `\"`, `\\`, `\n`,
//! `\t`). Anything else is a parse error — which the store treats as a
//! corrupt record and skips, never a panic.

use std::collections::BTreeMap;
use std::fmt;

/// A value in a flat record object.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer (all numeric record fields are u64-encoded;
    /// `f64`s travel as bit-pattern hex strings for exact round-trips).
    U64(u64),
    /// A float (only used for human-readable convenience fields).
    F64(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the first problem encountered.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed record: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(reason: &'static str) -> Result<T, ParseError> {
    Err(ParseError { reason })
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(reason)
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected opening quote")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return err("truncated unicode escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| ParseError {
                                    reason: "non-utf8 unicode escape",
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                reason: "bad unicode escape",
                            })?;
                            out.push(char::from_u32(code).ok_or(ParseError {
                                reason: "invalid unicode scalar",
                            })?);
                            self.pos += 4;
                        }
                        _ => return err("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            reason: "non-utf8 content",
                        })?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            reason: "non-utf8 number",
        })?;
        if text.is_empty() {
            return err("expected a value");
        }
        if text.bytes().all(|b| b.is_ascii_digit()) {
            text.parse::<u64>()
                .map(Value::U64)
                .or(err("integer overflow"))
        } else {
            text.parse::<f64>().map(Value::F64).or(err("bad float"))
        }
    }
}

/// Parse one flat JSON object (`{"k": v, ...}`) into an ordered map.
///
/// Trailing content after the closing brace is an error (a record is
/// exactly one object per line).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Value>, ParseError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cur.skip_ws();
    cur.expect(b'{', "expected object")?;
    let mut map = BTreeMap::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            cur.skip_ws();
            let key = cur.string()?;
            cur.skip_ws();
            cur.expect(b':', "expected colon")?;
            cur.skip_ws();
            let value = match cur.peek() {
                Some(b'"') => Value::Str(cur.string()?),
                Some(b) if b.is_ascii_digit() || b == b'-' => cur.number()?,
                _ => return err("unsupported value type"),
            };
            if map.insert(key, value).is_some() {
                return err("duplicate key");
            }
            cur.skip_ws();
            match cur.peek() {
                Some(b',') => cur.pos += 1,
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                _ => return err("expected comma or closing brace"),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return err("trailing content after object");
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_objects() {
        let line = r#"{"a": 12, "b": "x\"y\\z", "c": 1.5, "d": ""}"#;
        let map = parse_flat_object(line).unwrap();
        assert_eq!(map["a"], Value::U64(12));
        assert_eq!(map["b"], Value::Str("x\"y\\z".into()));
        assert_eq!(map["c"], Value::F64(1.5));
        assert_eq!(map["d"], Value::Str(String::new()));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote \" slash \\ newline \n tab \t done";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let map = parse_flat_object(&line).unwrap();
        assert_eq!(map["k"].as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1",
            "{\"a\":1} trailing",
            "{\"a\":[1]}",
            "{\"a\":1,\"a\":2}",
            "{\"a\":99999999999999999999999999}",
            "not json at all",
        ] {
            assert!(parse_flat_object(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
