//! The persistence layer: a [`TuneStore`] trait with an in-memory
//! implementation and an append-only JSONL disk store.
//!
//! [`JsonlDiskStore`] is built for the failure modes a long-lived
//! autotune cache actually meets: a process killed mid-append leaves a
//! torn final line (skipped at load, counted), a flipped byte fails the
//! per-record checksum (skipped, counted), an old binary's records fail
//! the schema-version gate (evicted, counted), and repeated re-tuning
//! of the same key appends duplicates that [`JsonlDiskStore::compact`]
//! collapses to the newest per key via an atomic tmp+rename rewrite.
//! Loading never panics on file content.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use conc_check::sync::{AtomicU64, Mutex, RwLock};

use crate::record::TuneRecord;
use crate::util::atomic_write;
use crate::TuneKey;

/// Snapshot of a store's behaviour counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Records written.
    pub inserts: u64,
    /// Persisted lines skipped as corrupt at load (framing, checksum,
    /// truncation, parse failures).
    pub corrupt: u64,
    /// Persisted lines evicted as stale at load (schema-version or
    /// key-hash mismatch).
    pub stale: u64,
    /// Append/flush failures (the in-memory view stays authoritative).
    pub io_errors: u64,
}

impl StoreStats {
    /// Corrupt + stale: everything the loader refused to serve.
    pub fn skipped(&self) -> u64 {
        self.corrupt + self.stale
    }

    /// The report-side mirror of these counters (corrupt and stale fold
    /// into one "refused to serve" figure).
    pub fn counters(&self) -> stencil_autotune::StoreCounters {
        stencil_autotune::StoreCounters {
            hits: self.hits,
            misses: self.misses,
            corrupt: self.skipped(),
        }
    }
}

/// A keyed store of tuning results.
///
/// Implementations are thread-safe; `get`/`put` may be called from any
/// number of workers concurrently.
pub trait TuneStore: Send + Sync {
    /// The newest record for `key`, if any.
    fn get(&self, key: &TuneKey) -> Option<TuneRecord>;
    /// Insert (or replace) the record for its key.
    fn put(&self, record: &TuneRecord);
    /// Every live record, in unspecified order (used by warm-start
    /// donor scans).
    fn records(&self) -> Vec<TuneRecord>;
    /// Counter snapshot.
    fn stats(&self) -> StoreStats;
    /// Number of live (newest-per-key) records.
    fn len(&self) -> usize;
    /// True when no records are live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    io_errors: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

/// Volatile in-memory store (process lifetime only).
#[derive(Default)]
pub struct MemStore {
    map: RwLock<HashMap<u64, TuneRecord>>,
    counters: Counters,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TuneStore for MemStore {
    fn get(&self, key: &TuneKey) -> Option<TuneRecord> {
        let found = self.map.read_recovered().get(&key.stable_hash()).cloned();
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, record: &TuneRecord) {
        self.map
            .write_recovered()
            .insert(record.key.stable_hash(), record.clone());
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn records(&self) -> Vec<TuneRecord> {
        self.map.read_recovered().values().cloned().collect()
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    fn len(&self) -> usize {
        self.map.read_recovered().len()
    }
}

/// Append-only JSONL store backed by one file.
pub struct JsonlDiskStore {
    path: PathBuf,
    map: RwLock<HashMap<u64, TuneRecord>>,
    /// Serializes appends (and orders them against compaction rewrites).
    append_lock: Mutex<()>,
    counters: Counters,
    /// Lines currently on disk, including duplicates and skipped ones
    /// (what compaction reclaims).
    disk_lines: AtomicU64,
}

impl JsonlDiskStore {
    /// Open (or create) the store at `path`, loading every live record.
    ///
    /// Unreadable *content* never fails the open — corrupt and stale
    /// lines are counted and skipped, and later lines win over earlier
    /// ones for the same key. Only a filesystem-level error on an
    /// existing file (e.g. permissions) is returned.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let store = JsonlDiskStore {
            path,
            map: RwLock::new_named(HashMap::new(), "diskstore.map"),
            append_lock: Mutex::new_named((), "diskstore.append"),
            counters: Counters::default(),
            disk_lines: AtomicU64::new_named(0, "diskstore.disk_lines"),
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut map = HashMap::new();
        let mut lines = 0u64;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            lines += 1;
            match TuneRecord::from_jsonl(line) {
                Ok(rec) => {
                    map.insert(rec.key.stable_hash(), rec);
                }
                Err(e) if e.is_stale() => {
                    store.counters.stale.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    store.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        store.disk_lines.store(lines, Ordering::Relaxed);
        *store.map.write_recovered() = map;
        Ok(store)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrite the file to exactly one (newest) record per key, via an
    /// atomic tmp+rename. Returns the number of disk lines reclaimed.
    pub fn compact(&self) -> std::io::Result<usize> {
        let _guard = self.append_lock.lock_recovered();
        let map = self.map.read_recovered();
        let mut entries: Vec<&TuneRecord> = map.values().collect();
        // Deterministic file order, independent of hash-map iteration.
        entries.sort_by_key(|r| r.key.stable_hash());
        let mut contents = String::new();
        for rec in &entries {
            contents.push_str(&rec.to_jsonl());
            contents.push('\n');
        }
        atomic_write(&self.path, contents)?;
        let before = self
            .disk_lines
            .swap(entries.len() as u64, Ordering::Relaxed);
        Ok((before as usize).saturating_sub(entries.len()))
    }
}

impl TuneStore for JsonlDiskStore {
    fn get(&self, key: &TuneKey) -> Option<TuneRecord> {
        let found = self.map.read_recovered().get(&key.stable_hash()).cloned();
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, record: &TuneRecord) {
        self.map
            .write_recovered()
            .insert(record.key.stable_hash(), record.clone());
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        let _guard = self.append_lock.lock_recovered();
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| writeln!(f, "{}", record.to_jsonl()));
        match appended {
            Ok(()) => {
                self.disk_lines.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: tune store append to {} failed: {e}",
                    self.path.display()
                );
            }
        }
    }

    fn records(&self) -> Vec<TuneRecord> {
        self.map.read_recovered().values().cloned().collect()
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    fn len(&self) -> usize {
        self.map.read_recovered().len()
    }
}
