#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-tunestore
//!
//! Persistent autotune results and a single-flight tuning service —
//! the durability layer above `inplane-core`'s in-process
//! [`EvalContext`](inplane_core::EvalContext) cache.
//!
//! The paper's point is that tuning is expensive: exhaustive search
//! over `(TX, TY, RX, RY)` is exactly what §VI's β-cutoff exists to
//! avoid. This crate makes tuning work *durable* and *deduplicated*:
//!
//! * [`key`] — [`TuneKey`], a stable, versioned content-hash over
//!   everything that determines a tuning result (device fingerprint,
//!   kernel spec, grid, tuner kind + parameters, noise seed, search
//!   space);
//! * [`record`] — [`TuneRecord`], the persisted result with a
//!   per-record checksum and schema-version gate;
//! * [`store`] — the [`TuneStore`] trait with [`MemStore`] and the
//!   append-only [`JsonlDiskStore`] (torn-line/corruption-tolerant,
//!   atomically compacted);
//! * [`service`] — [`TuneService`], the batch front end: store check →
//!   single-flight dedup → warm-started or full search over a shared
//!   evaluation context;
//! * [`singleflight`] — the generic [`SingleFlight`] collapse the
//!   service is built on, written against `conc-check`'s modeled
//!   primitives and proven deadlock- and stranding-free under its
//!   schedule exploration (leaders that panic fail their flight and
//!   wake every waiter);
//! * [`util`] — [`atomic_write`], the tmp+rename writer the disk store
//!   and the experiment output writers share.
//!
//! Everything is std-only; the JSONL codec is hand-rolled in [`json`].
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use gpu_sim::{DeviceSpec, GridDims};
//! use inplane_core::{EvalContext, KernelSpec, Method, Variant};
//! use stencil_autotune::{ParameterSpace, Provenance};
//! use stencil_grid::Precision;
//! use stencil_tunestore::{MemStore, TuneRequest, TuneService, TunerSpec};
//!
//! let device = DeviceSpec::gtx580();
//! let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
//! let dims = GridDims::new(256, 256, 32);
//! let space = ParameterSpace::quick_space(&device, &kernel, &dims);
//! let svc = TuneService::new(Arc::new(MemStore::new()), Arc::new(EvalContext::new()));
//! let req = TuneRequest { device, kernel, dims, space, tuner: TunerSpec::Exhaustive, seed: 1 };
//!
//! let cold = svc.resolve(&req);
//! assert_eq!(cold.provenance, Provenance::Computed);
//! let warm = svc.resolve(&req);
//! assert_eq!(warm.provenance, Provenance::Store);
//! assert_eq!(cold.best.mpoints.to_bits(), warm.best.mpoints.to_bits());
//! ```

pub mod json;
pub mod key;
pub mod record;
pub mod service;
pub mod singleflight;
pub mod store;
pub mod util;

pub use key::{method_from_label, space_fingerprint, TuneKey, TunerKind, SCHEMA_VERSION};
pub use record::{RecordError, TuneRecord};
pub use service::{ResolveTrace, ServiceStats, TuneRequest, TuneResponse, TuneService, TunerSpec};
pub use singleflight::{Joined, LeaderGuard, SingleFlight};
pub use store::{JsonlDiskStore, MemStore, StoreStats, TuneStore};
pub use util::atomic_write;
