//! The serving layer: batch tuning requests against a shared
//! [`EvalContext`], fronted by the persistent store and a single-flight
//! guard.
//!
//! Request resolution is layered:
//!
//! 1. **store** — an exact [`TuneKey`] hit is served verbatim
//!    ([`Provenance::Store`]); a second run of an identical sweep does
//!    no search work at all and returns bit-identical numbers;
//! 2. **single-flight** — concurrent identical requests collapse onto
//!    one worker: the first becomes the leader and computes, the rest
//!    block on a condvar and share the leader's response;
//! 3. **warm start** — a model-based request that misses looks for
//!    stored optima of the *same kernel* on a different device or grid
//!    and injects them into the measured shortlist
//!    ([`Provenance::WarmStarted`] when that changed the shortlist);
//! 4. **compute** — the requested tuner runs over the shared
//!    memoizing [`EvalContext`], and the result is persisted.
//!
//! Batches fan out over the rayon worker pool; duplicates inside one
//! batch dedup through the same single-flight path.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use conc_check::region;
use conc_check::sync::AtomicU64;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::RoutineDiag;
use inplane_core::{EvalContext, KernelSpec, LaunchConfig};
use rayon::prelude::*;
use stencil_autotune::{
    exhaustive_tune_with, model_based_tune_seeded_with, stochastic_tune_with, AnnealOptions,
    ParameterSpace, Provenance, RoutineChoice, RoutineSelector, TuneOutcome, TuneSample,
};

use crate::key::{TuneKey, TunerKind};
use crate::record::TuneRecord;
use crate::singleflight::{Joined, SingleFlight};
use crate::store::TuneStore;

/// Which search strategy a request asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum TunerSpec {
    /// Exhaustive search (§IV-C).
    Exhaustive,
    /// Model-based tuning (§VI) with its β cutoff in percent.
    ModelBased {
        /// The cutoff (the paper uses 5).
        beta_percent: f64,
    },
    /// Simulated-annealing search.
    Stochastic(AnnealOptions),
}

impl TunerSpec {
    fn kind(&self) -> TunerKind {
        match self {
            TunerSpec::Exhaustive => TunerKind::Exhaustive,
            TunerSpec::ModelBased { beta_percent } => TunerKind::model_based(*beta_percent),
            TunerSpec::Stochastic(opts) => TunerKind::stochastic(opts),
        }
    }
}

/// One tuning request.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRequest {
    /// Target device.
    pub device: DeviceSpec,
    /// Kernel to tune.
    pub kernel: KernelSpec,
    /// Problem-grid dimensions.
    pub dims: GridDims,
    /// The feasible search space.
    pub space: ParameterSpace,
    /// Search strategy.
    pub tuner: TunerSpec,
    /// Measurement-noise seed.
    pub seed: u64,
}

impl TuneRequest {
    /// The stable [`TuneKey`] identifying this request.
    pub fn key(&self) -> TuneKey {
        TuneKey::new(
            &self.device,
            &self.kernel,
            self.dims,
            &self.space,
            self.tuner.kind(),
            self.seed,
        )
    }
}

/// One resolved request.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneResponse {
    /// The winning configuration and its measured throughput.
    pub best: TuneSample,
    /// Configurations the producing search executed.
    pub evaluated: u64,
    /// Every measured sample of the producing search (just the winner
    /// when the result came from the store — per-sample data is not
    /// persisted).
    pub samples: Vec<TuneSample>,
    /// How the result was produced.
    pub provenance: Provenance,
    /// The request's stable key hash (for logging / correlation).
    pub key_hash: u64,
}

impl TuneResponse {
    /// Repackage as a [`TuneOutcome`] over the carried samples.
    pub fn into_outcome(self) -> TuneOutcome {
        TuneOutcome {
            best: self.best,
            samples: self.samples,
            provenance: self.provenance,
        }
    }
}

/// Which path inside the service produced one response — richer than
/// [`Provenance`] (a condvar waiter shares its *leader's* provenance,
/// so provenance alone cannot tell "I computed" from "I shared").
/// Serving layers (crates/tuneserve) use the trace to attribute work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveTrace {
    /// Served verbatim from the backing store.
    Store,
    /// This request led the single-flight: it ran the search and
    /// persisted the record.
    Led,
    /// This request blocked on — and shared — another leader's
    /// in-flight computation.
    Shared,
}

/// Counter snapshot of a [`TuneService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests served verbatim from the store.
    pub served_from_store: u64,
    /// Requests that ran a full search.
    pub computed: u64,
    /// Requests that ran a warm-started search.
    pub warm_started: u64,
    /// Requests that blocked on — and shared — another worker's
    /// in-flight computation.
    pub shared: u64,
}

/// Maximum warm-start donor configurations injected per request.
const MAX_WARM_SEEDS: usize = 3;

enum Ctx {
    Static(&'static EvalContext),
    Shared(Arc<EvalContext>),
}

impl Ctx {
    fn get(&self) -> &EvalContext {
        match self {
            Ctx::Static(ctx) => ctx,
            Ctx::Shared(ctx) => ctx,
        }
    }
}

/// The single-flight tuning service. See the [module docs](self).
pub struct TuneService {
    store: Arc<dyn TuneStore>,
    ctx: Ctx,
    inflight: SingleFlight<TuneResponse>,
    served_from_store: AtomicU64,
    computed: AtomicU64,
    warm_started: AtomicU64,
    shared: AtomicU64,
}

impl TuneService {
    /// A service over `store` evaluating through `ctx`.
    pub fn new(store: Arc<dyn TuneStore>, ctx: Arc<EvalContext>) -> Self {
        Self::build(store, Ctx::Shared(ctx))
    }

    /// A service over `store` evaluating through the process-wide
    /// [`EvalContext::global`] — what the bench binaries use, so
    /// service-routed and direct evaluations share one cache.
    pub fn with_global_ctx(store: Arc<dyn TuneStore>) -> Self {
        Self::build(store, Ctx::Static(EvalContext::global()))
    }

    fn build(store: Arc<dyn TuneStore>, ctx: Ctx) -> Self {
        TuneService {
            store,
            ctx,
            inflight: SingleFlight::new(),
            served_from_store: AtomicU64::new_named(0, "service.served_from_store"),
            computed: AtomicU64::new_named(0, "service.computed"),
            warm_started: AtomicU64::new_named(0, "service.warm_started"),
            shared: AtomicU64::new_named(0, "service.shared"),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &dyn TuneStore {
        &*self.store
    }

    /// The evaluation context requests are priced through.
    pub fn ctx(&self) -> &EvalContext {
        self.ctx.get()
    }

    /// Number of searches currently in flight (leaders computing).
    /// Failed or published flights are retired immediately, so this
    /// also regression-checks that a panicking leader cleans up.
    pub fn inflight_len(&self) -> usize {
        self.inflight.inflight_len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            served_from_store: self.served_from_store.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            warm_started: self.warm_started.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
        }
    }

    /// Resolve one request through store → single-flight → search.
    ///
    /// # Panics
    /// Panics on an empty space or (for the model-based tuner) a
    /// non-positive β — invalid requests are rejected *before* the
    /// single-flight guard so a waiter can never block on a leader that
    /// died validating.
    pub fn resolve(&self, req: &TuneRequest) -> TuneResponse {
        self.resolve_traced(req).0
    }

    /// [`Self::resolve`], also reporting *which path* served the
    /// request (store hit, single-flight leader, or condvar sharer) —
    /// the serving layer attributes latency and compute by the trace.
    ///
    /// If a leader panics mid-search, its flight is marked failed and
    /// every waiter retries from the store check — one of them leads
    /// the next attempt. A panicking leader therefore never strands
    /// its waiters (and its own panic propagates to its caller).
    ///
    /// # Panics
    /// Same contract as [`Self::resolve`].
    pub fn resolve_traced(&self, req: &TuneRequest) -> (TuneResponse, ResolveTrace) {
        assert!(
            !req.space.is_empty(),
            "cannot tune over an empty parameter space"
        );
        if let TunerSpec::ModelBased { beta_percent } = req.tuner {
            assert!(beta_percent > 0.0, "beta must be positive");
        }
        let key = req.key();
        let hash = key.stable_hash();

        loop {
            if let Some(resp) = self.lookup_store(&key) {
                return (resp, ResolveTrace::Store);
            }
            // Single-flight: first miss per key leads, the rest wait.
            match self.inflight.join(hash) {
                Joined::Shared(resp) => {
                    self.shared.fetch_add(1, Ordering::Relaxed);
                    return (resp, ResolveTrace::Shared);
                }
                Joined::Retry => continue,
                Joined::Lead(leadership) => {
                    // Re-check the store *under leadership*: between
                    // this thread's store miss and its election, a
                    // previous leader may have published and retired
                    // its flight. Computing here would be a duplicate
                    // search (the conc-check burst proof finds exactly
                    // this interleaving); publishing the stored record
                    // keeps the key at-most-once-computed.
                    if let Some(resp) = self.lookup_store(&key) {
                        leadership.publish(resp.clone());
                        return (resp, ResolveTrace::Store);
                    }
                    let response = self.compute(&key, req);
                    self.store.put(&TuneRecord {
                        key: key.clone(),
                        best: response.best.config,
                        mpoints: response.best.mpoints,
                        evaluated: response.evaluated,
                    });
                    // Persist first, then retire the flight: a request
                    // arriving after the removal hits the store instead
                    // of recomputing.
                    leadership.publish(response.clone());
                    return (response, ResolveTrace::Led);
                }
            }
        }
    }

    /// The store-hit fast path alone: an exact [`TuneKey`] hit is
    /// repackaged as a response (counted `served_from_store`), a miss
    /// returns `None` *without* entering the single-flight guard. The
    /// serving layer calls this before deciding whether a request must
    /// pass admission control.
    pub fn try_resolve_cached(&self, req: &TuneRequest) -> Option<TuneResponse> {
        self.lookup_store(&req.key())
    }

    fn lookup_store(&self, key: &TuneKey) -> Option<TuneResponse> {
        let rec = self.store.get(key)?;
        self.served_from_store.fetch_add(1, Ordering::Relaxed);
        let best = TuneSample {
            config: rec.best,
            mpoints: rec.mpoints,
        };
        Some(TuneResponse {
            best,
            evaluated: rec.evaluated,
            samples: vec![best],
            provenance: Provenance::Store,
            key_hash: key.stable_hash(),
        })
    }

    /// If a leader is already computing the key hashed to `hash`, wait
    /// for it and share its response (counted `shared`); otherwise
    /// return `None` immediately. Blocks only for the remainder of an
    /// *already running* computation — never starts one — which is why
    /// the serving layer may call it before admission control. A
    /// leader that panics instead of publishing also yields `None`.
    pub fn wait_if_inflight(&self, hash: u64) -> Option<TuneResponse> {
        let resp = self.inflight.wait_existing(hash)?;
        self.shared.fetch_add(1, Ordering::Relaxed);
        Some(resp)
    }

    /// Resolve a batch over the rayon worker pool. Output order matches
    /// `requests`. Identical keys *within* the batch are deduplicated
    /// before fan-out: one occurrence resolves, the rest are served its
    /// response (counted `shared`) without touching the single-flight
    /// guard at all.
    pub fn resolve_batch(&self, requests: &[TuneRequest]) -> Vec<TuneResponse> {
        // Map each slot to the first slot carrying the same key.
        let hashes: Vec<u64> = requests.iter().map(|r| r.key().stable_hash()).collect();
        let mut first_slot: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let canonical: Vec<usize> = hashes
            .iter()
            .enumerate()
            .map(|(i, h)| {
                *first_slot.entry(*h).or_insert_with(|| {
                    unique.push(i);
                    i
                })
            })
            .collect();
        let resolved: Vec<(usize, TuneResponse)> = unique
            .par_iter()
            .map(|&i| (i, self.resolve(&requests[i])))
            .collect();
        let by_slot: HashMap<usize, TuneResponse> = resolved.into_iter().collect();
        canonical
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i != c {
                    // An in-batch duplicate: it shares the canonical
                    // occurrence's work exactly like a condvar waiter.
                    self.shared.fetch_add(1, Ordering::Relaxed);
                }
                by_slot[&c].clone()
            })
            .collect()
    }

    /// Run `selector` first, then resolve the request with its kernel
    /// re-specified onto the chosen routine. The persisted key hashes
    /// the *selected* method, so an `Auto` choice that changes over
    /// time never shadows a differently-routed record. Errors are the
    /// selector's coded rejection.
    ///
    /// # Panics
    /// Panics on an empty space or a non-positive β.
    pub fn resolve_selected(
        &self,
        req: &TuneRequest,
        selector: &RoutineSelector,
    ) -> Result<(RoutineChoice, TuneResponse), RoutineDiag> {
        assert!(
            !req.space.is_empty(),
            "cannot tune over an empty parameter space"
        );
        let probe = req.space.configs()[0];
        let (choice, kernel) =
            selector.select_kernel(&req.device, &req.kernel, &req.dims, &probe)?;
        let routed = TuneRequest {
            kernel,
            ..req.clone()
        };
        Ok((choice, self.resolve(&routed)))
    }

    fn compute(&self, key: &TuneKey, req: &TuneRequest) -> TuneResponse {
        let ctx = self.ctx.get();
        // The search is the long-running part; `region::compute` marks
        // it so the model checker warns (CCK-101) if a caller ever
        // reshapes this path to hold a service lock across it.
        let (outcome, evaluated) = region::compute(|| match &req.tuner {
            TunerSpec::Exhaustive => {
                let out = exhaustive_tune_with(
                    ctx,
                    &req.device,
                    &req.kernel,
                    req.dims,
                    &req.space,
                    req.seed,
                );
                let evaluated = out.evaluated() as u64;
                (out, evaluated)
            }
            TunerSpec::ModelBased { beta_percent } => {
                let seeds = self.warm_seeds(key);
                let out = model_based_tune_seeded_with(
                    ctx,
                    &req.device,
                    &req.kernel,
                    req.dims,
                    &req.space,
                    *beta_percent,
                    req.seed,
                    &seeds,
                );
                let evaluated = out.executed as u64;
                (out.into_outcome(), evaluated)
            }
            TunerSpec::Stochastic(opts) => {
                let out = stochastic_tune_with(
                    ctx,
                    &req.device,
                    &req.kernel,
                    req.dims,
                    &req.space,
                    opts,
                    req.seed,
                );
                let evaluated = out.executed as u64;
                (out.into_outcome(), evaluated)
            }
        });
        match outcome.provenance {
            Provenance::WarmStarted => self.warm_started.fetch_add(1, Ordering::Relaxed),
            _ => self.computed.fetch_add(1, Ordering::Relaxed),
        };
        TuneResponse {
            best: outcome.best,
            evaluated,
            samples: outcome.samples,
            provenance: outcome.provenance,
            key_hash: key.stable_hash(),
        }
    }

    /// Stored optima of the same kernel tuned on a different device or
    /// grid — the warm-start donors, best first.
    fn warm_seeds(&self, key: &TuneKey) -> Vec<LaunchConfig> {
        let mut donors: Vec<TuneRecord> = self
            .store
            .records()
            .into_iter()
            .filter(|rec| key.is_sibling_of(&rec.key))
            .collect();
        donors.sort_by(|a, b| b.mpoints.total_cmp(&a.mpoints));
        let mut seeds: Vec<LaunchConfig> = Vec::new();
        for rec in donors {
            if !seeds.contains(&rec.best) {
                seeds.push(rec.best);
                if seeds.len() == MAX_WARM_SEEDS {
                    break;
                }
            }
        }
        seeds
    }
}
