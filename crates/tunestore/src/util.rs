//! Filesystem helpers shared by the disk store and the experiment
//! output writers.

use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically: the bytes go to a sibling
/// temporary file first and are renamed into place, so a reader (or a
/// crash) never observes a half-written file. Parent directories are
/// created as needed.
///
/// The temporary name embeds the process id so concurrent writers from
/// different processes cannot collide on the staging file; the final
/// rename is last-writer-wins either way.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Don't leave the staging file behind on a failed rename.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("tunestore-util-{tag}-{}-{t}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_without_leftover_tmp() {
        let dir = scratch_dir("aw");
        let path = dir.join("nested").join("out.txt");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pathological_paths_error_instead_of_panicking() {
        assert!(atomic_write(std::path::Path::new(".."), "x").is_err());
    }
}
