//! Generic single-flight guard: concurrent requests for one key
//! collapse onto a single leader; the rest wait and share its result.
//!
//! Extracted from [`TuneService`](crate::TuneService) so the
//! collapse/wait protocol is (a) reusable and (b) drivable under the
//! `conc-check` model with cheap closures — the service wires it to a
//! full tuner search, the concurrency proofs to a counter bump.
//!
//! The panic contract is the part worth the extraction: if a leader
//! unwinds mid-compute (a tuner assertion, an injected fault), its
//! [`LeaderGuard`] marks the flight failed, removes it from the map,
//! and wakes every waiter. Waiters observe the failure and *retry* —
//! one of them becomes the next leader. The pre-extraction code left
//! the dead flight in the map, so every later request for that key
//! blocked forever on a condvar nobody would ever signal.

use std::collections::HashMap;
use std::sync::Arc;

use conc_check::sync::{fault, Condvar, Mutex};

/// Tags for the fault-injection sites in this module (arbitrary but
/// stable; they show up in counterexample traces).
const FAULT_LEADER_ELECTED: u32 = 0x5F01;

enum FlightState<V> {
    /// The leader is computing.
    Pending,
    /// Published; waiters clone this.
    Ready(V),
    /// The leader unwound without publishing; waiters must retry.
    Failed,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new_named(FlightState::Pending, "singleflight.state"),
            ready: Condvar::new_named("singleflight.ready"),
        }
    }
}

/// The outcome of [`SingleFlight::join`]: lead, or a shared value,
/// or a failed flight to retry after.
pub enum Joined<'a, V: Clone> {
    /// This caller leads: compute, then
    /// [`publish`](LeaderGuard::publish).
    Lead(LeaderGuard<'a, V>),
    /// Another leader published; this is its (cloned) value.
    Shared(V),
    /// The flight this caller joined failed (its leader unwound).
    /// Retry [`join`](SingleFlight::join) — the caller may lead now.
    Retry,
}

/// Keyed single-flight collapse. `V` is the published value;
/// waiters receive clones.
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<u64, Arc<Flight<V>>>>,
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty guard.
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new_named(HashMap::new(), "singleflight.map"),
        }
    }

    /// Join the flight for `key`: the first caller per key leads (and
    /// must [`publish`](LeaderGuard::publish) or unwind), later
    /// callers block until the leader resolves. See [`Joined`].
    pub fn join(&self, key: u64) -> Joined<'_, V> {
        let existing = {
            let mut flights = self.flights.lock_recovered();
            match flights.get(&key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    flights.insert(key, Arc::new(Flight::new()));
                    None
                }
            }
        };
        match existing {
            None => {
                let guard = LeaderGuard {
                    sf: self,
                    key,
                    armed: true,
                };
                // The window where a dying leader used to strand its
                // waiters: from here until publish, only the guard's
                // unwind path keeps the map clean.
                fault::point(FAULT_LEADER_ELECTED);
                Joined::Lead(guard)
            }
            Some(flight) => match Self::await_flight(&flight) {
                Some(v) => Joined::Shared(v),
                None => Joined::Retry,
            },
        }
    }

    /// Wait on an *already running* flight for `key` and share its
    /// value; `None` when nothing is in flight (or the flight failed
    /// — this call never starts or restarts a computation).
    pub fn wait_existing(&self, key: u64) -> Option<V> {
        let flight = Arc::clone(self.flights.lock_recovered().get(&key)?);
        Self::await_flight(&flight)
    }

    /// Number of flights currently pending (for shed heuristics and
    /// tests).
    pub fn inflight_len(&self) -> usize {
        self.flights.lock_recovered().len()
    }

    fn await_flight(flight: &Flight<V>) -> Option<V> {
        let mut state = flight.state.lock_recovered();
        loop {
            match &*state {
                FlightState::Pending => state = flight.ready.wait_recovered(state),
                FlightState::Ready(v) => return Some(v.clone()),
                FlightState::Failed => return None,
            }
        }
    }

    fn resolve(&self, key: u64, outcome: FlightState<V>) {
        // Retire the flight first so a request arriving after the
        // removal starts fresh (for the service: hits the store the
        // leader just wrote) instead of joining a finished flight.
        // The leader always owns the map entry; the if-let (rather
        // than an expect) keeps the unwind path abort-free even if
        // that invariant is ever broken.
        let flight = self.flights.lock_recovered().remove(&key);
        if let Some(flight) = flight {
            *flight.state.lock_recovered() = outcome;
            flight.ready.notify_all();
        }
    }
}

/// Leadership of one in-flight key. Dropping without
/// [`publish`](Self::publish) — i.e. unwinding — marks the flight
/// failed and wakes all waiters so they can retry.
pub struct LeaderGuard<'a, V: Clone> {
    sf: &'a SingleFlight<V>,
    key: u64,
    armed: bool,
}

impl<V: Clone> LeaderGuard<'_, V> {
    /// Publish the computed value to every waiter and retire the
    /// flight.
    pub fn publish(mut self, value: V) {
        self.armed = false;
        self.sf.resolve(self.key, FlightState::Ready(value));
    }

    /// The key this guard leads.
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl<V: Clone> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            self.sf.resolve(self.key, FlightState::Failed);
        }
    }
}
