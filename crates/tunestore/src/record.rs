//! One persisted tuning result and its JSONL wire format.
//!
//! Each line is `{"crc":"<16 hex>","rec":{...}}`: the FNV-1a checksum
//! of the exact `rec` payload bytes wraps a flat JSON object holding
//! every [`TuneKey`] field plus the winning configuration. On load the
//! checksum is verified against the raw substring *before* any parsing,
//! the schema-version field gates stale layouts, and the key hash is
//! recomputed from the parsed fields and compared against the stored
//! one — so a record survives only if it is byte-intact, current, and
//! self-consistent. Everything else is skipped with a counter, never a
//! panic.

use std::collections::BTreeMap;
use std::fmt;

use gpu_sim::GridDims;
use inplane_core::{KernelSpec, LaunchConfig};

use crate::json::{escape, parse_flat_object, Value};
use crate::key::{fnv64, method_from_label, TuneKey, TunerKind, SCHEMA_VERSION};

/// A tuning result bound to its [`TuneKey`].
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRecord {
    /// Identity of the tuning problem.
    pub key: TuneKey,
    /// The winning configuration.
    pub best: LaunchConfig,
    /// Its measured throughput, MPoint/s (bit-exact across the disk
    /// round-trip: persisted as the `f64` bit pattern).
    pub mpoints: f64,
    /// Configurations the producing search executed.
    pub evaluated: u64,
}

/// Why a persisted line was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Structurally broken: bad framing, bad JSON, missing or
    /// out-of-range fields. Includes truncated (torn) lines.
    Malformed(&'static str),
    /// The payload bytes do not match their checksum.
    Checksum,
    /// Written under a different schema version.
    StaleSchema(u64),
    /// Parsed cleanly but the recomputed key hash differs from the
    /// stored one (key layout or hash function changed under the same
    /// schema version — treated as stale).
    KeyMismatch,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Malformed(why) => write!(f, "malformed record: {why}"),
            RecordError::Checksum => write!(f, "checksum mismatch"),
            RecordError::StaleSchema(v) => write!(f, "stale schema version {v}"),
            RecordError::KeyMismatch => write!(f, "stored key hash does not match fields"),
        }
    }
}

impl std::error::Error for RecordError {}

impl RecordError {
    /// True for schema/key staleness (vs byte-level corruption).
    pub fn is_stale(&self) -> bool {
        matches!(self, RecordError::StaleSchema(_) | RecordError::KeyMismatch)
    }
}

fn get_u64(map: &BTreeMap<String, Value>, key: &'static str) -> Result<u64, RecordError> {
    map.get(key)
        .and_then(Value::as_u64)
        .ok_or(RecordError::Malformed("missing integer field"))
}

fn get_str<'m>(
    map: &'m BTreeMap<String, Value>,
    key: &'static str,
) -> Result<&'m str, RecordError> {
    map.get(key)
        .and_then(Value::as_str)
        .ok_or(RecordError::Malformed("missing string field"))
}

fn get_hex(map: &BTreeMap<String, Value>, key: &'static str) -> Result<u64, RecordError> {
    let s = get_str(map, key)?;
    u64::from_str_radix(s, 16).map_err(|_| RecordError::Malformed("bad hex field"))
}

const CRC_PREFIX: &str = "{\"crc\":\"";
const REC_INFIX: &str = "\",\"rec\":";

impl TuneRecord {
    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let k = &self.key;
        let params = k.tuner.params();
        let payload = format!(
            "{{\"v\":{v},\"key\":\"{key:016x}\",\"dev\":\"{dev}\",\"dev_fp\":\"{dev_fp:016x}\",\
             \"kernel\":\"{kernel}\",\"method\":\"{method}\",\"radius\":{radius},\
             \"elem_bytes\":{elem},\"flops\":{flops},\"streamed\":{streamed},\
             \"coeff\":{coeff},\"outputs\":{outputs},\
             \"lx\":{lx},\"ly\":{ly},\"lz\":{lz},\
             \"tuner\":\"{tuner}\",\"tp0\":\"{tp0:016x}\",\"tp1\":\"{tp1:016x}\",\
             \"tp2\":\"{tp2:016x}\",\"seed\":{seed},\"space_fp\":\"{space_fp:016x}\",\
             \"tx\":{tx},\"ty\":{ty},\"rx\":{rx},\"ry\":{ry},\
             \"mp_bits\":\"{mp_bits:016x}\",\"mpoints\":{mpoints:.3},\"evaluated\":{eval}}}",
            v = SCHEMA_VERSION,
            key = k.stable_hash(),
            dev = escape(&k.device_name),
            dev_fp = k.device_fp,
            kernel = escape(&k.kernel.name),
            method = escape(&k.kernel.method.label()),
            radius = k.kernel.radius,
            elem = k.kernel.elem_bytes,
            flops = k.kernel.flops_per_point,
            streamed = k.kernel.streamed_inputs,
            coeff = k.kernel.coeff_inputs,
            outputs = k.kernel.outputs,
            lx = k.dims.lx,
            ly = k.dims.ly,
            lz = k.dims.lz,
            tuner = k.tuner.label(),
            tp0 = params[0],
            tp1 = params[1],
            tp2 = params[2],
            seed = k.seed,
            space_fp = k.space_fp,
            tx = self.best.tx,
            ty = self.best.ty,
            rx = self.best.rx,
            ry = self.best.ry,
            mp_bits = self.mpoints.to_bits(),
            mpoints = self.mpoints,
            eval = self.evaluated,
        );
        format!(
            "{CRC_PREFIX}{:016x}{REC_INFIX}{payload}}}",
            fnv64(payload.as_bytes())
        )
    }

    /// Parse one JSONL line. See the [module docs](self) for the
    /// verification layering.
    pub fn from_jsonl(line: &str) -> Result<TuneRecord, RecordError> {
        // Framing: {"crc":"<16 hex>","rec":<payload>}
        let rest = line
            .strip_prefix(CRC_PREFIX)
            .ok_or(RecordError::Malformed("bad framing prefix"))?;
        if rest.len() < 16 {
            return Err(RecordError::Malformed("truncated before checksum"));
        }
        let (crc_hex, rest) = rest.split_at(16);
        let stored_crc =
            u64::from_str_radix(crc_hex, 16).map_err(|_| RecordError::Malformed("bad crc hex"))?;
        let rest = rest
            .strip_prefix(REC_INFIX)
            .ok_or(RecordError::Malformed("bad framing infix"))?;
        let payload = rest
            .strip_suffix('}')
            .ok_or(RecordError::Malformed("truncated line"))?;

        // Byte-level integrity before any parsing.
        if fnv64(payload.as_bytes()) != stored_crc {
            return Err(RecordError::Checksum);
        }

        let map = parse_flat_object(payload).map_err(|e| RecordError::Malformed(e.reason))?;

        // Schema gate.
        let version = get_u64(&map, "v")?;
        if version != SCHEMA_VERSION {
            return Err(RecordError::StaleSchema(version));
        }

        let method = method_from_label(get_str(&map, "method")?)
            .ok_or(RecordError::Malformed("unknown method label"))?;
        let kernel = KernelSpec {
            name: get_str(&map, "kernel")?.to_string(),
            method,
            radius: get_u64(&map, "radius")? as usize,
            elem_bytes: get_u64(&map, "elem_bytes")? as usize,
            flops_per_point: get_u64(&map, "flops")? as usize,
            streamed_inputs: get_u64(&map, "streamed")? as usize,
            coeff_inputs: get_u64(&map, "coeff")? as usize,
            outputs: get_u64(&map, "outputs")? as usize,
        };
        let (lx, ly, lz) = (
            get_u64(&map, "lx")? as usize,
            get_u64(&map, "ly")? as usize,
            get_u64(&map, "lz")? as usize,
        );
        if lx == 0 || ly == 0 || lz == 0 {
            return Err(RecordError::Malformed("zero grid dimension"));
        }
        let tuner = TunerKind::from_parts(
            get_str(&map, "tuner")?,
            [
                get_hex(&map, "tp0")?,
                get_hex(&map, "tp1")?,
                get_hex(&map, "tp2")?,
            ],
        )
        .ok_or(RecordError::Malformed("unknown tuner label"))?;
        let key = TuneKey::from_parts(
            get_str(&map, "dev")?.to_string(),
            get_hex(&map, "dev_fp")?,
            kernel,
            GridDims::new(lx, ly, lz),
            tuner,
            get_u64(&map, "seed")?,
            get_hex(&map, "space_fp")?,
        );

        // Self-consistency: the stored hash must equal the recomputed
        // one, or the key layout changed since this record was written.
        if key.stable_hash() != get_hex(&map, "key")? {
            return Err(RecordError::KeyMismatch);
        }

        let (tx, ty, rx, ry) = (
            get_u64(&map, "tx")? as usize,
            get_u64(&map, "ty")? as usize,
            get_u64(&map, "rx")? as usize,
            get_u64(&map, "ry")? as usize,
        );
        if tx == 0 || ty == 0 || rx == 0 || ry == 0 {
            return Err(RecordError::Malformed("zero blocking factor"));
        }
        Ok(TuneRecord {
            key,
            best: LaunchConfig::new(tx, ty, rx, ry),
            mpoints: f64::from_bits(get_hex(&map, "mp_bits")?),
            evaluated: get_u64(&map, "evaluated")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use inplane_core::{Method, Variant};
    use stencil_autotune::ParameterSpace;
    use stencil_grid::Precision;

    fn record() -> TuneRecord {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 64);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        TuneRecord {
            key: TuneKey::new(&dev, &k, dims, &space, TunerKind::model_based(5.0), 7),
            best: LaunchConfig::new(64, 4, 2, 1),
            mpoints: 1234.567891234,
            evaluated: 42,
        }
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        let rec = record();
        let line = rec.to_jsonl();
        let back = TuneRecord::from_jsonl(&line).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.mpoints.to_bits(), rec.mpoints.to_bits());
        assert_eq!(back.key.stable_hash(), rec.key.stable_hash());
    }

    #[test]
    fn truncated_lines_are_malformed_not_panics() {
        let line = record().to_jsonl();
        for cut in [0, 1, 7, 8, 20, 30, 31, 32, line.len() / 2, line.len() - 1] {
            let torn = &line[..cut];
            match TuneRecord::from_jsonl(torn) {
                Err(RecordError::Malformed(_)) | Err(RecordError::Checksum) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let line = record().to_jsonl();
        // Flip a digit inside the payload (well past the framing).
        let idx = line.find("\"evaluated\":").unwrap() + "\"evaluated\":".len();
        let mut bytes = line.into_bytes();
        bytes[idx] = if bytes[idx] == b'9' { b'8' } else { b'9' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert_eq!(
            TuneRecord::from_jsonl(&tampered),
            Err(RecordError::Checksum)
        );
    }

    #[test]
    fn stale_schema_is_reported_as_stale() {
        let rec = record();
        let line = rec.to_jsonl();
        // Re-frame a payload claiming a different schema version with a
        // *valid* checksum: only the version gate may reject it.
        let payload_start = CRC_PREFIX.len() + 16 + REC_INFIX.len();
        let payload = &line[payload_start..line.len() - 1];
        let old = payload.replacen("{\"v\":1,", "{\"v\":0,", 1);
        let reframed = format!(
            "{CRC_PREFIX}{:016x}{REC_INFIX}{old}}}",
            fnv64(old.as_bytes())
        );
        let err = TuneRecord::from_jsonl(&reframed).unwrap_err();
        assert_eq!(err, RecordError::StaleSchema(0));
        assert!(err.is_stale());
    }

    #[test]
    fn inconsistent_key_hash_is_rejected() {
        let line = record().to_jsonl();
        // Change a hashed field (seed) but keep the stored key hash;
        // re-checksum so only the key check can catch it.
        let payload_start = CRC_PREFIX.len() + 16 + REC_INFIX.len();
        let payload = &line[payload_start..line.len() - 1];
        let edited = payload.replacen("\"seed\":7,", "\"seed\":8,", 1);
        assert_ne!(edited, payload);
        let reframed = format!(
            "{CRC_PREFIX}{:016x}{REC_INFIX}{edited}}}",
            fnv64(edited.as_bytes())
        );
        assert_eq!(
            TuneRecord::from_jsonl(&reframed),
            Err(RecordError::KeyMismatch)
        );
    }
}
