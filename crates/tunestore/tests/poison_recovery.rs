//! Regression: a leader that panics mid-resolution must not poison
//! the service or strand its waiters. Before the `SingleFlight`
//! extraction the dead flight stayed in the inflight map, so every
//! later request for that key blocked forever on a condvar nobody
//! would ever signal — and the poisoned mutexes turned *unrelated*
//! requests into panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, Method, Variant};
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;
use stencil_tunestore::{
    MemStore, ResolveTrace, StoreStats, TuneKey, TuneRecord, TuneRequest, TuneService, TuneStore,
    TunerSpec,
};

/// Delegates to a [`MemStore`] but panics on the first `put` — the
/// leader dies *after* computing, mid-flight, with waiters possibly
/// parked.
struct FaultyStore {
    inner: MemStore,
    puts: AtomicU64,
    panic_on_put: u64,
}

impl FaultyStore {
    fn panicking_once() -> Self {
        FaultyStore {
            inner: MemStore::new(),
            puts: AtomicU64::new(0),
            panic_on_put: 0,
        }
    }
}

impl TuneStore for FaultyStore {
    fn get(&self, key: &TuneKey) -> Option<TuneRecord> {
        self.inner.get(key)
    }

    fn put(&self, record: &TuneRecord) {
        if self.puts.fetch_add(1, Ordering::SeqCst) == self.panic_on_put {
            panic!("injected: store write failed mid-flight");
        }
        self.inner.put(record);
    }

    fn records(&self) -> Vec<TuneRecord> {
        self.inner.records()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

fn request(seed: u64) -> TuneRequest {
    let device = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let dims = GridDims::new(64, 64, 8);
    let space = ParameterSpace::quick_space(&device, &kernel, &dims);
    TuneRequest {
        device,
        kernel,
        dims,
        space,
        tuner: TunerSpec::Exhaustive,
        seed,
    }
}

#[test]
fn panicking_leader_cleans_up_and_later_resolves_succeed() {
    let svc = TuneService::new(
        Arc::new(FaultyStore::panicking_once()),
        Arc::new(EvalContext::new()),
    );
    let req = request(1);

    let died = catch_unwind(AssertUnwindSafe(|| svc.resolve(&req)));
    assert!(died.is_err(), "first resolve must propagate the panic");

    // The flight must be retired despite the unwind...
    assert_eq!(svc.inflight_len(), 0, "dead flight left in the map");
    // ...and nobody can be left waiting on it.
    assert!(svc.wait_if_inflight(req.key().stable_hash()).is_none());

    // The same key resolves fine afterwards (store put now succeeds),
    // as do unrelated keys: nothing got poisoned.
    let (resp, trace) = svc.resolve_traced(&req);
    assert_eq!(trace, ResolveTrace::Led);
    assert_eq!(svc.inflight_len(), 0);
    let (again, trace2) = svc.resolve_traced(&req);
    assert_eq!(trace2, ResolveTrace::Store);
    assert_eq!(resp.best.config, again.best.config);
    let (_, trace3) = svc.resolve_traced(&request(2));
    assert_eq!(trace3, ResolveTrace::Led);
}

#[test]
fn concurrent_waiters_survive_a_dying_leader() {
    let svc = Arc::new(TuneService::new(
        Arc::new(FaultyStore::panicking_once()),
        Arc::new(EvalContext::new()),
    ));
    let req = request(3);

    // Several threads race the same key; exactly one put panics, so
    // exactly one thread dies. Everyone else must finish (retrying
    // past the failed flight, never hanging) with identical numbers.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let req = req.clone();
            std::thread::spawn(move || catch_unwind(AssertUnwindSafe(|| svc.resolve(&req))).ok())
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let died = results.iter().filter(|r| r.is_none()).count();
    assert_eq!(died, 1, "exactly the leader with the failing put dies");
    let bits: Vec<u64> = results
        .iter()
        .flatten()
        .map(|r| r.best.mpoints.to_bits())
        .collect();
    assert_eq!(bits.len(), 3);
    assert!(bits.windows(2).all(|w| w[0] == w[1]), "divergent responses");
    assert_eq!(svc.inflight_len(), 0);
}
