//! Store robustness: the disk format must survive every realistic
//! failure mode — reopen, torn tails, flipped bytes, stale schemas —
//! by degrading to a re-tune, never by panicking; and the service must
//! collapse concurrent identical requests onto one computation.

use std::sync::{Arc, Barrier};

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::{ParameterSpace, Provenance};
use stencil_grid::Precision;
use stencil_tunestore::{
    JsonlDiskStore, TuneKey, TuneRecord, TuneRequest, TuneService, TuneStore, TunerKind, TunerSpec,
};

fn scratch_path(tag: &str) -> std::path::PathBuf {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("tunestore-{tag}-{}-{t}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("store.jsonl")
}

fn kernel(order: usize) -> KernelSpec {
    KernelSpec::star_order(
        Method::InPlane(Variant::FullSlice),
        order,
        Precision::Single,
    )
}

fn sample_record(order: usize, seed: u64, mpoints: f64) -> TuneRecord {
    let dev = DeviceSpec::gtx580();
    let k = kernel(order);
    let dims = GridDims::new(256, 256, 32);
    let space = ParameterSpace::quick_space(&dev, &k, &dims);
    TuneRecord {
        key: TuneKey::new(&dev, &k, dims, &space, TunerKind::Exhaustive, seed),
        best: LaunchConfig::new(64, 4, 2, 1),
        mpoints,
        evaluated: 99,
    }
}

#[test]
fn round_trip_and_reopen_after_append() {
    let path = scratch_path("reopen");
    let a = sample_record(2, 1, 1000.5);
    let b = sample_record(4, 1, 2000.25);
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&a);
        store.put(&b);
        assert_eq!(store.len(), 2);
    }
    // Reopen: both records live, bit-exact.
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 2);
    let got = store.get(&a.key).expect("record a survives reopen");
    assert_eq!(got, a);
    assert_eq!(got.mpoints.to_bits(), a.mpoints.to_bits());
    assert_eq!(store.get(&b.key).expect("record b survives reopen"), b);
    assert_eq!(store.stats().hits, 2);
    // Appending after reopen keeps earlier records.
    let c = sample_record(8, 1, 3000.0);
    store.put(&c);
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 3);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn newest_record_per_key_wins() {
    let path = scratch_path("newest");
    let old = sample_record(2, 1, 111.0);
    let mut new = old.clone();
    new.mpoints = 222.0;
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&old);
        store.put(&new);
    }
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.get(&old.key).unwrap().mpoints, 222.0);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn truncated_final_line_is_skipped_and_counted() {
    let path = scratch_path("torn");
    let a = sample_record(2, 1, 1000.0);
    let b = sample_record(4, 1, 2000.0);
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&a);
        store.put(&b);
    }
    // Simulate a crash mid-append: cut the file inside the last line.
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.len() - 25;
    std::fs::write(&path, &text[..cut]).unwrap();
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 1, "only the intact line survives");
    assert!(store.get(&a.key).is_some());
    assert!(store.get(&b.key).is_none());
    assert_eq!(store.stats().corrupt, 1);
    assert_eq!(store.stats().stale, 0);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn checksum_corrupted_record_is_skipped_and_counted() {
    let path = scratch_path("crc");
    let a = sample_record(2, 1, 1000.0);
    let b = sample_record(4, 1, 2000.0);
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&a);
        store.put(&b);
    }
    // Flip one digit inside the first line's payload.
    let text = std::fs::read_to_string(&path).unwrap();
    let idx = text.find("\"evaluated\":99").unwrap() + "\"evaluated\":".len();
    let mut bytes = text.into_bytes();
    bytes[idx] = b'7';
    std::fs::write(&path, bytes).unwrap();
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 1);
    assert!(
        store.get(&a.key).is_none(),
        "tampered record must not serve"
    );
    assert!(store.get(&b.key).is_some());
    assert_eq!(store.stats().corrupt, 1);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn schema_version_mismatch_evicts_the_record() {
    let path = scratch_path("schema");
    let a = sample_record(2, 1, 1000.0);
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&a);
    }
    // Rewrite the line to claim schema version 0 with a valid checksum
    // (the record parser re-checksums, so fabricate via the public
    // format: easiest is to corrupt v and re-frame through TuneRecord's
    // own serialization of a doctored line).
    let text = std::fs::read_to_string(&path).unwrap();
    let payload_start = text.find(",\"rec\":").unwrap() + ",\"rec\":".len();
    let payload = text[payload_start..].trim_end().strip_suffix('}').unwrap();
    let old_payload = payload.replacen("{\"v\":1,", "{\"v\":0,", 1);
    let crc = {
        // FNV-1a, same fold as the store's.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in old_payload.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    std::fs::write(
        &path,
        format!("{{\"crc\":\"{crc:016x}\",\"rec\":{old_payload}}}\n"),
    )
    .unwrap();
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 0);
    assert_eq!(store.stats().stale, 1);
    assert_eq!(store.stats().corrupt, 0);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn garbage_and_blank_lines_never_panic() {
    let path = scratch_path("garbage");
    let a = sample_record(2, 1, 1000.0);
    {
        let store = JsonlDiskStore::open(&path).unwrap();
        store.put(&a);
    }
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("\nnot json\n\n{\"crc\":\"zz\"}\n{}\n");
    std::fs::write(&path, text).unwrap();
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.stats().corrupt, 3, "blank lines are not counted");
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn compaction_keeps_newest_per_key_atomically() {
    let path = scratch_path("compact");
    let store = JsonlDiskStore::open(&path).unwrap();
    for round in 0..4u64 {
        for order in [2usize, 4] {
            store.put(&sample_record(order, 1, 100.0 * (round + 1) as f64));
        }
    }
    assert_eq!(store.len(), 2);
    let reclaimed = store.compact().unwrap();
    assert_eq!(reclaimed, 6, "8 appended lines collapse to 2");
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 2);
    // Compacted file reloads cleanly with the newest values.
    let store = JsonlDiskStore::open(&path).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(
        store.get(&sample_record(2, 1, 0.0).key).unwrap().mpoints,
        400.0
    );
    assert_eq!(store.stats().skipped(), 0);
    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn concurrent_identical_requests_single_flight() {
    const N: usize = 8;
    let dev = DeviceSpec::gtx580();
    let k = kernel(4);
    let dims = GridDims::new(256, 256, 32);
    let space = ParameterSpace::quick_space(&dev, &k, &dims);
    let svc = Arc::new(TuneService::new(
        Arc::new(stencil_tunestore::MemStore::new()),
        Arc::new(EvalContext::new()),
    ));
    let req = TuneRequest {
        device: dev,
        kernel: k,
        dims,
        space,
        tuner: TunerSpec::Exhaustive,
        seed: 5,
    };
    let barrier = Arc::new(Barrier::new(N));
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let req = req.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    svc.resolve(&req)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = svc.stats();
    assert_eq!(stats.computed, 1, "exactly one worker computes");
    assert_eq!(
        stats.computed + stats.shared + stats.served_from_store,
        N as u64
    );
    for r in &responses {
        assert_eq!(r.best.config, responses[0].best.config);
        assert_eq!(
            r.best.mpoints.to_bits(),
            responses[0].best.mpoints.to_bits()
        );
    }
    // A later request is served from the store.
    let late = svc.resolve(&req);
    assert_eq!(late.provenance, Provenance::Store);
}

#[test]
fn warm_start_seeds_model_based_from_sibling_device() {
    let d580 = DeviceSpec::gtx580();
    let d680 = DeviceSpec::gtx680();
    let k = kernel(4);
    let dims = GridDims::new(256, 256, 32);
    let svc = TuneService::new(
        Arc::new(stencil_tunestore::MemStore::new()),
        Arc::new(EvalContext::new()),
    );
    // Tune exhaustively on the GTX580 to seed the store.
    let cold = svc.resolve(&TuneRequest {
        device: d580.clone(),
        kernel: k.clone(),
        dims,
        space: ParameterSpace::quick_space(&d580, &k, &dims),
        tuner: TunerSpec::Exhaustive,
        seed: 1,
    });
    assert_eq!(cold.provenance, Provenance::Computed);
    // A model-based run for the same kernel on the GTX680 warm-starts
    // from the stored GTX580 optimum (unless the model's own top β%
    // already contains it, in which case it stays Computed — with the
    // tiny β used here the injected seed is measured as an extra).
    let space680 = ParameterSpace::quick_space(&d680, &k, &dims);
    let warm = svc.resolve(&TuneRequest {
        device: d680,
        kernel: k,
        dims,
        space: space680,
        tuner: TunerSpec::ModelBased { beta_percent: 1.0 },
        seed: 1,
    });
    assert!(
        matches!(
            warm.provenance,
            Provenance::WarmStarted | Provenance::Computed
        ),
        "unexpected provenance {:?}",
        warm.provenance
    );
    let stats = svc.stats();
    assert_eq!(stats.warm_started + stats.computed, 2);
}
