//! In-batch dedup and the traced resolve primitives: duplicates inside
//! one `resolve_batch` call collapse onto a single search, and the
//! serving-layer primitives (`try_resolve_cached`, `wait_if_inflight`,
//! `resolve_traced`) report the path that actually served them.

use std::sync::Arc;

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, Method, Variant};
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;
use stencil_tunestore::{MemStore, ResolveTrace, TuneRequest, TuneService, TunerSpec};

fn service() -> TuneService {
    TuneService::new(Arc::new(MemStore::new()), Arc::new(EvalContext::new()))
}

fn request(order: usize, seed: u64) -> TuneRequest {
    let device = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(
        Method::InPlane(Variant::FullSlice),
        order,
        Precision::Single,
    );
    let dims = GridDims::new(128, 128, 32);
    let space = ParameterSpace::quick_space(&device, &kernel, &dims);
    TuneRequest {
        device,
        kernel,
        dims,
        space,
        tuner: TunerSpec::Exhaustive,
        seed,
    }
}

/// A batch carrying the same key five times (plus one distinct key)
/// runs exactly two searches; the four duplicate slots are counted
/// `shared` and served responses identical to their canonical slot.
#[test]
fn batch_duplicates_collapse_to_one_search() {
    let svc = service();
    let a = request(2, 1);
    let b = request(4, 1);
    let batch = vec![a.clone(), a.clone(), b, a.clone(), a.clone(), a];

    let responses = svc.resolve_batch(&batch);
    assert_eq!(responses.len(), 6);
    let stats = svc.stats();
    assert_eq!(stats.computed, 2, "one search per distinct key");
    assert_eq!(stats.shared, 4, "four in-batch duplicates shared");
    assert_eq!(stats.served_from_store, 0);
    for dup in [1, 3, 4, 5] {
        assert_eq!(responses[dup], responses[0], "slot {dup} mirrors slot 0");
    }
    assert_ne!(responses[2].key_hash, responses[0].key_hash);
    // Output order matches input order: slot 2 is the other key.
    assert_eq!(responses[2].key_hash, svc.resolve(&batch[2]).key_hash);
}

/// Duplicates in a *second* batch are store hits, not re-shares: the
/// dedup only spans one batch, persistence spans all of them.
#[test]
fn second_batch_is_served_from_the_store() {
    let svc = service();
    let a = request(2, 3);
    svc.resolve_batch(&[a.clone(), a.clone()]);
    let before = svc.stats();
    assert_eq!(before.computed, 1);
    assert_eq!(before.shared, 1);

    let responses = svc.resolve_batch(&[a.clone(), a]);
    let after = svc.stats();
    assert_eq!(after.computed, 1, "no re-search on a warm store");
    assert_eq!(after.served_from_store, 1, "canonical slot hit the store");
    assert_eq!(after.shared, 2, "the duplicate slot deduped in-batch");
    assert_eq!(responses[0], responses[1]);
}

/// The traced resolve distinguishes leading from store-hit serving, and
/// the serving-layer primitives never start work of their own.
#[test]
fn traced_primitives_report_their_path() {
    let svc = service();
    let req = request(4, 9);
    let hash = req.key().stable_hash();

    // Nothing cached, nothing in flight: the cheap probes decline.
    assert!(svc.try_resolve_cached(&req).is_none());
    assert!(svc.wait_if_inflight(hash).is_none());
    assert_eq!(svc.stats().computed, 0, "probes started no search");

    let (led, trace) = svc.resolve_traced(&req);
    assert_eq!(trace, ResolveTrace::Led);

    // Now the store answers — both through the probe and the resolve.
    let cached = svc.try_resolve_cached(&req).expect("store is warm");
    assert_eq!(cached.best, led.best);
    let (again, trace) = svc.resolve_traced(&req);
    assert_eq!(trace, ResolveTrace::Store);
    assert_eq!(again.best, led.best);
    assert_eq!(svc.stats().computed, 1);
}
