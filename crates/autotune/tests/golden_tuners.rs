//! Golden pins for the four tuners on one fixed (device, kernel) case.
//!
//! Every tuner routes its measurements through the shared `EvalContext`
//! pipeline (plan → cached clean price → seeded noise). These tests pin
//! the exact winner and its throughput for GTX580 / order-4 full-slice /
//! the paper grid / seed 42, so any accidental change to the evaluation
//! pipeline — the lowering, the pricing engine, the noise stream or the
//! cache routing — shows up as a golden diff rather than a silent drift.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::{
    exhaustive_tune, exhaustive_tune_with, model_based_tune, performance_surface, stochastic_tune,
    AnnealOptions, ParameterSpace,
};
use stencil_grid::Precision;

const SEED: u64 = 42;
const TOL: f64 = 1e-3; // MPoint/s; the pipeline is deterministic, this absorbs printing truncation only

fn setup() -> (DeviceSpec, KernelSpec, GridDims, ParameterSpace) {
    let dev = DeviceSpec::gtx580();
    let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let dims = GridDims::paper();
    let space = ParameterSpace::quick_space(&dev, &k, &dims);
    (dev, k, dims, space)
}

#[test]
fn golden_exhaustive() {
    let (dev, k, dims, space) = setup();
    let out = exhaustive_tune(&dev, &k, dims, &space, SEED);
    assert_eq!(out.best.config, LaunchConfig::new(128, 4, 2, 4));
    assert!(
        (out.best.mpoints - 14947.005681).abs() < TOL,
        "got {:.6}",
        out.best.mpoints
    );
}

#[test]
fn golden_model_based() {
    let (dev, k, dims, space) = setup();
    let out = model_based_tune(&dev, &k, dims, &space, 5.0, SEED);
    assert_eq!(out.best.config, LaunchConfig::new(128, 4, 2, 4));
    assert!(
        (out.best.mpoints - 14947.005681).abs() < TOL,
        "got {:.6}",
        out.best.mpoints
    );
    assert_eq!(out.executed, 12);
}

#[test]
fn golden_stochastic() {
    let (dev, k, dims, space) = setup();
    let out = stochastic_tune(&dev, &k, dims, &space, &AnnealOptions::default(), SEED);
    assert_eq!(out.best.config, LaunchConfig::new(64, 8, 4, 2));
    assert!(
        (out.best.mpoints - 14743.248264).abs() < TOL,
        "got {:.6}",
        out.best.mpoints
    );
    assert_eq!(out.executed, 41);
}

#[test]
fn golden_surface() {
    let (dev, k, dims, _) = setup();
    let surf = performance_surface(&dev, &k, dims, 256, 1, SEED);
    let best = surf
        .iter()
        .max_by(|a, b| a.mpoints.total_cmp(&b.mpoints))
        .unwrap();
    assert_eq!((best.rx, best.ry), (1, 8));
    assert!(
        (best.mpoints - 12784.842696).abs() < TOL,
        "got {:.6}",
        best.mpoints
    );
}

#[test]
fn golden_is_cache_state_independent() {
    // The same sweep against a cold private context and against the
    // (likely warm) global context must agree bit for bit — caching can
    // never change a result, only skip recomputation.
    let (dev, k, dims, space) = setup();
    let global = exhaustive_tune(&dev, &k, dims, &space, SEED);
    let cold = exhaustive_tune_with(&EvalContext::new(), &dev, &k, dims, &space, SEED);
    assert_eq!(global.best.config, cold.best.config);
    assert_eq!(global.best.mpoints.to_bits(), cold.best.mpoints.to_bits());
    for (a, b) in global.samples.iter().zip(&cold.samples) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.mpoints.to_bits(), b.mpoints.to_bits());
    }
}
