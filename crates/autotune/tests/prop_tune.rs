//! Property-based tests for the auto-tuner: constraint soundness, model
//! sanity and tuner optimality invariants.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::resources::smem_bytes;
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use proptest::prelude::*;
use stencil_autotune::{exhaustive_tune, model_based_tune, predict_mpoints, ParameterSpace};
use stencil_grid::Precision;

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    prop::sample::select(DeviceSpec::paper_devices())
}

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    (
        prop::sample::select(vec![2usize, 4, 8, 12]),
        prop::sample::select(vec![Precision::Single, Precision::Double]),
    )
        .prop_map(|(order, prec)| {
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, prec)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every configuration the space enumerates satisfies the paper's
    /// four constraints (§IV-C).
    #[test]
    fn enumerated_configs_satisfy_constraints(dev in arb_device(), k in arb_kernel()) {
        let dims = GridDims::paper();
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        for c in space.configs() {
            prop_assert_eq!(c.tx % (dev.warp_size / 2), 0);
            prop_assert!(c.threads() <= dev.max_threads_per_block);
            prop_assert!(smem_bytes(&k, c) <= dev.smem_per_sm);
            prop_assert_eq!(dims.ly % c.tile_y(), 0);
        }
    }

    /// Model predictions are finite, non-negative and deterministic.
    #[test]
    fn model_is_sane(
        dev in arb_device(),
        k in arb_kernel(),
        tx in prop::sample::select(vec![16usize, 32, 64, 128]),
        ty in 1usize..17,
        rx in prop::sample::select(vec![1usize, 2, 4]),
        ry in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let c = LaunchConfig::new(tx, ty, rx, ry);
        let dims = GridDims::paper();
        let p = predict_mpoints(&dev, &k, &c, &dims);
        prop_assert!(p.is_finite());
        prop_assert!(p >= 0.0);
        prop_assert_eq!(p, predict_mpoints(&dev, &k, &c, &dims));
        // Nothing can beat the achieved-bandwidth roofline by more than
        // rounding: points * elem_bytes * 2 (read + write) per sweep.
        let roofline = dev.achieved_bandwidth()
            / (2.0 * k.elem_bytes as f64)
            / 1e6;
        prop_assert!(p <= roofline * 1.2, "prediction {p} above roofline {roofline}");
    }

    /// The exhaustive best is at least as good as any explicitly checked
    /// configuration, and model-based never beats exhaustive.
    #[test]
    fn exhaustive_dominates(dev in arb_device(), seed in 0u64..64) {
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let ex = exhaustive_tune(&dev, &k, dims, &space, seed);
        for s in ex.samples.iter() {
            prop_assert!(ex.best.mpoints >= s.mpoints);
        }
        let mb = model_based_tune(&dev, &k, dims, &space, 10.0, seed);
        prop_assert!(mb.best.mpoints <= ex.best.mpoints + 1e-9);
        // The model-based pick is one of the space's configurations.
        prop_assert!(space.configs().contains(&mb.best.config));
    }
}
