//! Differential test: the historical boolean feasibility predicate, the
//! `ParameterSpace::feasible` shim and the explained analyzer in
//! `stencil-lint` must agree on every point of the enumeration grid.
//!
//! The replica below is a literal copy of the boolean logic that
//! `ParameterSpace::feasible` contained before it became a shim over
//! `stencil_lint::explain_feasibility` — if the analyzer ever drifts
//! (changes a threshold, reorders a check in a way that changes the
//! verdict, or promotes the sub-warp warning to an error), this test
//! pins the regression to the exact configuration.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::resources::{regs_per_thread, smem_bytes};
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::ParameterSpace;
use stencil_grid::Precision;
use stencil_lint::{explain_feasibility, has_errors, Severity};

/// The boolean predicate exactly as it stood before the analyzer.
fn legacy_feasible(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    c: &LaunchConfig,
) -> bool {
    let half_warp = device.warp_size / 2;
    // (i) TX multiple of a half-warp.
    if !c.tx.is_multiple_of(half_warp) {
        return false;
    }
    // (ii) thread limit.
    if c.threads() > device.max_threads_per_block {
        return false;
    }
    // (iii) shared-memory limit.
    if smem_bytes(kernel, c) > device.smem_per_sm {
        return false;
    }
    // (iv) TY·RY divides LY.
    if !dims.ly.is_multiple_of(c.tile_y()) {
        return false;
    }
    // Tile must fit the plane; register estimate must compile.
    c.tile_x() <= dims.lx
        && c.tile_y() <= dims.ly
        && regs_per_thread(kernel, c) <= device.max_regs_per_thread
}

/// Every grid point the paper's enumeration would visit, **plus**
/// off-grid TX values (not half-warp multiples) the legacy predicate
/// also rejected, so constraint (i) is differentially covered too.
fn grid(device: &DeviceSpec) -> Vec<LaunchConfig> {
    let half_warp = device.warp_size / 2;
    let mut out = Vec::new();
    let mut tx = 8;
    while tx <= 512 {
        for ty in 1..=32usize {
            for rx in [1usize, 2, 4, 8] {
                for ry in [1usize, 2, 4, 8] {
                    out.push(LaunchConfig::new(tx, ty, rx, ry));
                }
            }
        }
        tx += half_warp / 2;
    }
    out
}

#[test]
fn boolean_shim_matches_legacy_and_analyzer_everywhere() {
    let devices = [
        DeviceSpec::gtx580(),
        DeviceSpec::gtx680(),
        DeviceSpec::c2070(),
    ];
    let dims_set = [GridDims::paper(), GridDims::new(512, 96, 64)];
    let kernels = [
        KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Single),
        KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single),
        KernelSpec::star_order(Method::InPlane(Variant::Vertical), 8, Precision::Double),
        KernelSpec::star_order(Method::InPlane(Variant::Classical), 12, Precision::Double),
    ];

    let mut checked = 0usize;
    let mut rejected = 0usize;
    for device in &devices {
        for dims in &dims_set {
            for kernel in &kernels {
                for c in grid(device) {
                    let legacy = legacy_feasible(device, kernel, dims, &c);
                    let shim = ParameterSpace::feasible(device, kernel, dims, &c);
                    let diags = explain_feasibility(device, kernel, dims, &c);
                    let analyzer = !has_errors(&diags);
                    assert_eq!(
                        legacy, shim,
                        "{} {} {dims:?} {c}: legacy {legacy} vs shim {shim}",
                        device.name, kernel.name
                    );
                    assert_eq!(
                        legacy, analyzer,
                        "{} {} {dims:?} {c}: legacy {legacy} vs analyzer {analyzer} ({diags:?})",
                        device.name, kernel.name
                    );
                    // Contract: every rejection is explained by at least
                    // one error-severity code.
                    if !legacy {
                        rejected += 1;
                        assert!(
                            diags.iter().any(|d| d.severity == Severity::Error),
                            "{} {} {dims:?} {c}: rejected without a coded reason",
                            device.name,
                            kernel.name
                        );
                    }
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 100_000, "differential grid too small: {checked}");
    assert!(rejected > 10_000, "grid exercised too few rejections");
}
