//! The paper's analytic performance model — §VI, Eqns (6)–(14) —
//! implemented as faithfully as the text allows.
//!
//! ```text
//! Blks    = (LX·LY) / ((TX·RX)(TY·RY))                           (6)
//! ActBlks = min(⌊Reg/K_R⌋, ⌊Smem/K_S⌋, ⌊Warp_SM/Warp_Blk⌋, Blk_SM) (7)
//! Stages  = ⌈Blks / (SM · ActBlks)⌉                               (8)
//! RemBlks = ⌈(Blks − (Stages−1)·ActBlks·SM) / SM⌉                 (9)
//! T_m     = Lat/Clock + Bytes_Blk / BW_SM                        (10)
//! T_c     = ActBlks · Ops · RX·RY · Warp_Blk / Clock             (11)
//! T_s     = f(ActBlks) · T_m + ActBlks · T_c                     (12)
//! T_l     = f(RemBlks) · T_m + RemBlks · T_c                     (13)
//! Perf    = (LX·LY) / (T_s · (Stages − 1) + T_l)                 (14)
//! ```
//!
//! `Bytes_Blk` is the closed-form per-plane traffic of one block (slab
//! reads plus tile writes — no address-level coalescing detail), and
//! `f(·)` is the linear latency-hiding interpolation the paper
//! specifies: perfect hiding (value 1) at full occupancy, full
//! serialisation (value `arg`) with a single resident warp.
//!
//! The model deliberately ignores bank conflicts, scheduling overhead
//! and cache effects — the paper says so — which is why its ranking only
//! *approximates* the simulator's "measurements" (the gap Fig 12
//! quantifies). For Eqn (11) we normalise the instruction-throughput
//! constant so `T_c` is in seconds of SM compute time; the paper leaves
//! that constant implicit and it does not affect the ranking.

use gpu_sim::occupancy::{active_blocks, BlockResources};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::resources::{regs_per_thread, smem_bytes};
use inplane_core::{KernelSpec, LaunchConfig};

/// The paper's `f(arg)`: between 1 (perfect hiding at full occupancy)
/// and `arg` (full serialisation at one resident warp), linear in the
/// number of resident warps.
pub fn latency_overlap_factor(device: &DeviceSpec, arg: f64, warps_per_block: usize) -> f64 {
    if arg <= 1.0 {
        // A single resident block still overlaps within itself only; the
        // factor is defined on [1, arg] so it degenerates to 1.
        return 1.0;
    }
    let total_warps = arg * warps_per_block as f64;
    let full = device.max_warps_per_sm as f64;
    // A device that can hold only one resident warp has nothing to
    // hide latency with: the interpolation's denominator (full - 1)
    // degenerates, so pin the factor at full serialisation instead of
    // dividing by zero.
    let hide = if full <= 1.0 {
        0.0
    } else {
        ((total_warps - 1.0) / (full - 1.0)).clamp(0.0, 1.0)
    };
    // hide = 1 → factor 1; hide = 0 → factor arg.
    arg - (arg - 1.0) * hide
}

/// Closed-form per-plane bytes of one block (Eqn (10)'s `Bytes_Blk`):
/// halo-framed slab reads for every streamed grid, interior reads for
/// coefficient grids, interior writes for outputs.
///
/// The transaction granularity the model assumes is the device's
/// `coalesce_segment_bytes` — the padding granule its host allocator
/// rounds rows to (128 bytes on every NVIDIA preset, Fermi's cached-
/// load segment; 64 bytes on GCN-class wave64 parts). The paper's
/// model was built against Fermi cards; §VI attributes its worst
/// mis-rankings (~6%, on the GTX680) to "architectural differences in
/// the newer Kepler cards which the model does not capture" —
/// Kepler's 32-byte L2 sectors being exactly such a difference. The
/// model therefore keeps the *allocation* granule rather than chasing
/// per-generation sector sizes, and Fig 12 measures the consequence.
///
/// Bytes are *bus* bytes: each row is rounded up to whole memory
/// transactions of `segment_bytes` — without this, the model grossly
/// overrates narrow tiles whose rows use a fraction of every segment.
/// The model still knows nothing about alignment, vector-load extension,
/// loading-variant patterns or caches; those live only in the simulator.
pub fn bytes_per_block_plane(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    segment_bytes: u64,
) -> f64 {
    let r = kernel.radius;
    let (wx, wy) = (config.tile_x(), config.tile_y());
    let seg = segment_bytes as f64;
    let row_bytes = |elems: usize| (elems * kernel.elem_bytes) as f64 / seg;
    let slab = (wy + 2 * r) as f64 * row_bytes(wx + 2 * r).ceil() * seg;
    let tile = wy as f64 * row_bytes(wx).ceil() * seg;
    slab * kernel.streamed_inputs as f64
        + tile * kernel.coeff_inputs as f64
        + tile * kernel.outputs as f64
}

/// Predict the performance of `(kernel, config)` in MPoint/s using the
/// paper's model. Returns 0 for configurations with no resident block.
pub fn predict_mpoints(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: &GridDims,
) -> f64 {
    // Eqn (7) via the occupancy calculator (the paper's min(...) with
    // hardware granularities).
    let res = BlockResources {
        threads: config.threads(),
        regs_per_thread: regs_per_thread(kernel, config),
        smem_bytes: smem_bytes(kernel, config),
    };
    let occ = active_blocks(device, &res);
    if occ.active_blocks == 0 {
        return 0.0;
    }
    let act_blks = occ.active_blocks as f64;
    let warp_blk = config.threads().div_ceil(device.warp_size);

    // Eqn (6): blocks per plane (ceil for non-dividing tiles).
    let blks = config.blocks_per_plane(dims.lx, dims.ly) as f64;

    // Eqns (8)-(9).
    let per_round = device.sm_count as f64 * act_blks;
    let stages = (blks / per_round).ceil().max(1.0);
    let rem_blks = ((blks - (stages - 1.0) * per_round) / device.sm_count as f64)
        .ceil()
        .max(1.0);

    // Eqn (10): memory time of one block-plane, split into its latency
    // component (hidable, scaled by f(·) in Eqns (12)-(13)) and its
    // bandwidth component (DRAM bytes are additive across blocks and can
    // never be hidden). Applying f to the *whole* T_m, as a literal
    // reading of Eqn (12) would, under-counts bandwidth ActBlks-fold at
    // full occupancy and cannot reproduce the paper's reported accuracy.
    let t_lat = device.mem_latency_cycles / device.clock_hz();
    let t_bw = bytes_per_block_plane(kernel, config, device.coalesce_segment_bytes)
        / device.bandwidth_per_sm();

    // Eqn (11): compute time of one block-plane, seconds, normalised by
    // the SM's flop throughput for the element width.
    let flops_per_block = (kernel.flops_per_point * config.tile_x() * config.tile_y()) as f64;
    let t_c_one =
        flops_per_block / (device.flops_per_cycle_per_sm(kernel.elem_bytes) * device.clock_hz());

    // Eqns (12)-(13).
    let t_s =
        latency_overlap_factor(device, act_blks, warp_blk) * t_lat + act_blks * (t_bw + t_c_one);
    let t_l =
        latency_overlap_factor(device, rem_blks, warp_blk) * t_lat + rem_blks * (t_bw + t_c_one);

    // Eqn (14): points per plane over per-plane time.
    let plane_time = t_s * (stages - 1.0) + t_l;
    (dims.lx * dims.ly) as f64 / plane_time / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    #[test]
    fn infeasible_config_predicts_zero() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        let p = predict_mpoints(
            &dev,
            &k,
            &LaunchConfig::new(32, 32, 1, 8),
            &GridDims::paper(),
        );
        assert_eq!(p, 0.0);
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(4);
        let p = predict_mpoints(
            &dev,
            &k,
            &LaunchConfig::new(64, 4, 1, 2),
            &GridDims::paper(),
        );
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn prediction_in_plausible_range() {
        // Order-2 SP on GTX580 near the paper's optimum: the model should
        // land within a factor ~2 of the ~17 GPoint/s scale.
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let p = predict_mpoints(
            &dev,
            &k,
            &LaunchConfig::new(256, 1, 1, 8),
            &GridDims::paper(),
        );
        assert!((6000.0..40000.0).contains(&p), "predicted {p} MPoint/s");
    }

    #[test]
    fn higher_order_predicts_slower() {
        let dev = DeviceSpec::gtx580();
        let c = LaunchConfig::new(64, 4, 1, 2);
        let p2 = predict_mpoints(&dev, &kernel(2), &c, &GridDims::paper());
        let p12 = predict_mpoints(&dev, &kernel(12), &c, &GridDims::paper());
        assert!(p2 > p12);
    }

    #[test]
    fn dp_predicts_slower_than_sp() {
        let dev = DeviceSpec::c2070();
        let c = LaunchConfig::new(64, 4, 1, 2);
        let sp = predict_mpoints(&dev, &kernel(4), &c, &GridDims::paper());
        let dp = predict_mpoints(
            &dev,
            &KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Double),
            &c,
            &GridDims::paper(),
        );
        assert!(dp < sp);
    }

    #[test]
    fn latency_overlap_endpoints() {
        let dev = DeviceSpec::gtx580();
        // Full occupancy: 6 blocks × 8 warps = 48 → perfect hiding → 1.
        assert!((latency_overlap_factor(&dev, 6.0, 8) - 1.0).abs() < 1e-12);
        // One block of one warp → full serialisation → arg.
        assert!((latency_overlap_factor(&dev, 1.0, 1) - 1.0).abs() < 1e-12);
        // Two blocks of one warp each: barely any hiding.
        let f = latency_overlap_factor(&dev, 2.0, 1);
        assert!(f > 1.9 && f <= 2.0, "{f}");
    }

    #[test]
    fn single_resident_warp_device_stays_finite() {
        // max_warps_per_sm == 1 degenerates the hiding interpolation's
        // (full - 1) denominator; the factor must pin at full
        // serialisation (= arg), not divide by zero.
        let mut dev = DeviceSpec::gtx580();
        dev.max_warps_per_sm = 1;
        for arg in [1.0, 2.0, 6.0] {
            let f = latency_overlap_factor(&dev, arg, 4);
            assert!(f.is_finite(), "arg {arg}: {f}");
            assert!((f - arg).abs() < 1e-12, "arg {arg}: {f}");
        }
        let p = predict_mpoints(
            &dev,
            &kernel(4),
            &LaunchConfig::new(64, 4, 1, 2),
            &GridDims::paper(),
        );
        assert!(p.is_finite() && p >= 0.0, "{p}");
    }

    #[test]
    fn model_predicts_on_every_registered_device() {
        let c = LaunchConfig::new(64, 4, 1, 2);
        for dev in DeviceSpec::all_devices() {
            let p = predict_mpoints(&dev, &kernel(4), &c, &GridDims::paper());
            assert!(p.is_finite() && p > 0.0, "{}: {p}", dev.name);
        }
    }

    #[test]
    fn bytes_per_block_plane_closed_form() {
        let k = kernel(2); // r = 1, 1 streamed in, 1 out, SP
        let c = LaunchConfig::new(32, 4, 1, 2);
        // slab rows: 10 rows of 34 SP elements = 136 B -> 2 segments;
        // store rows: 8 rows of 32 elements = 128 B -> 1 segment.
        assert_eq!(
            bytes_per_block_plane(&k, &c, 128),
            (10.0 * 2.0 + 8.0 * 1.0) * 128.0
        );
        // On Kepler's 32-byte sectors the rounding is finer.
        assert_eq!(
            bytes_per_block_plane(&k, &c, 32),
            (10.0 * 5.0 + 8.0 * 4.0) * 32.0
        );
    }

    #[test]
    fn model_ranking_correlates_with_simulator() {
        // Spearman-ish sanity: over a spread of configs, the model's
        // ranking should broadly agree with the detailed simulator
        // (the whole premise of §VI's model-based tuning).
        use inplane_core::simulate_star_kernel;
        let dev = DeviceSpec::gtx580();
        let k = kernel(4);
        let dims = GridDims::paper();
        let configs = [
            LaunchConfig::new(16, 2, 1, 1),
            LaunchConfig::new(32, 4, 1, 1),
            LaunchConfig::new(64, 8, 1, 1),
            LaunchConfig::new(128, 4, 1, 2),
            LaunchConfig::new(64, 8, 2, 2),
            LaunchConfig::new(256, 2, 1, 4),
        ];
        let mut pairs: Vec<(f64, f64)> = configs
            .iter()
            .map(|c| {
                (
                    predict_mpoints(&dev, &k, c, &dims),
                    simulate_star_kernel(&dev, &k, c, dims).mpoints_per_s(),
                )
            })
            .collect();
        // Count concordant pairs.
        let mut concordant = 0;
        let mut total = 0;
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                total += 1;
                if pairs[j].1 >= pairs[i].1 {
                    concordant += 1;
                }
            }
        }
        assert!(
            concordant * 3 >= total * 2,
            "model ranking too discordant: {concordant}/{total}"
        );
    }
}
