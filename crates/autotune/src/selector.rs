//! Routine selection in front of the `(TX, TY, RX, RY)` search.
//!
//! The tuners of this crate search launch configurations *within* one
//! routine; [`RoutineSelector`] decides *which* routine that is:
//!
//! * [`RoutineStrategy::Forced`] pins an exact [`Blueprint`] — the test
//!   escape hatch. The routine's own [`inplane_core::Routine::supports`]
//!   verdict is still consulted, so forcing an illegal problem returns
//!   the coded [`RoutineDiag`] instead of panicking deep in lowering.
//! * [`RoutineStrategy::Auto`] asks every registered routine whether it
//!   supports the problem, lowers one probe blueprint per survivor, and
//!   ranks them by the static traffic oracle's predicted global-memory
//!   bytes ([`stencil_lint::predict_traffic`]) — oracle-first selection:
//!   no candidate is ever executed to be rejected.
//!
//! The per-tuner entry points (`exhaustive_tune_selected`,
//! `model_based_tune_selected`, `stochastic_tune_selected`, and the
//! bench crate's `tune_best_auto`) run the selector first and then tune
//! the chosen routine's kernel respec over the usual space.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{
    registry, routine_by_id, Blueprint, KernelSpec, LaunchConfig, ProblemSpec, RoutineDiag,
};
use stencil_grid::Precision;
use stencil_lint::predict_traffic;

/// Which routine a tuning run searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutineStrategy {
    /// Tune exactly this blueprint's routine (test escape hatch).
    Forced(Blueprint),
    /// Oracle-rank every supporting routine; tune the cheapest.
    Auto,
}

/// One oracle-ranked candidate routine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineRank {
    /// Stable [`inplane_core::Routine::id`].
    pub routine_id: u64,
    /// Display label (`"nvstencil"`, `"in-plane/full-slice"`, ...).
    pub label: String,
    /// Predicted global-memory traffic of the probe blueprint, bytes.
    pub global_bytes: u64,
}

/// The selector's verdict: the blueprint to tune and how the field
/// ranked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineChoice {
    /// The winning routine's probe blueprint (its `config` is the probe
    /// the ranking used, not a tuned best).
    pub blueprint: Blueprint,
    /// All candidates that support the problem, cheapest first. Forced
    /// mode ranks the forced routine alone.
    pub ranking: Vec<RoutineRank>,
}

/// Chooses the routine a tuner searches; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutineSelector {
    strategy: RoutineStrategy,
}

/// Global-memory bytes the oracle predicts for one lowered blueprint:
/// coalesced loads plus write-backs plus interconnect/gather traffic.
fn oracle_global_bytes(bp: &Blueprint, precision: Precision) -> u64 {
    let routine = routine_by_id(bp.routine_id).expect("blueprint names a registered routine");
    let plan = routine.lower(bp);
    let t = predict_traffic(&plan, precision);
    t.global_load_cells * t.word_bytes + t.store_bytes + t.halo_bytes + t.gather_bytes
}

impl RoutineSelector {
    /// Oracle-first automatic selection.
    pub fn auto() -> Self {
        RoutineSelector {
            strategy: RoutineStrategy::Auto,
        }
    }

    /// Pin the search to `blueprint`'s routine.
    pub fn forced(blueprint: Blueprint) -> Self {
        RoutineSelector {
            strategy: RoutineStrategy::Forced(blueprint),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> RoutineStrategy {
        self.strategy
    }

    /// Decide the routine for tuning `kernel` on `device` over `dims`,
    /// probing legality and traffic at `probe`.
    ///
    /// Errors carry the routine's coded [`RoutineDiag`]: the forced
    /// routine's rejection in `Forced` mode, or (when *no* routine
    /// supports the problem) the first registry rejection in `Auto`
    /// mode.
    pub fn select(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: &GridDims,
        probe: &LaunchConfig,
    ) -> Result<RoutineChoice, RoutineDiag> {
        let precision = kernel.precision();
        match self.strategy {
            RoutineStrategy::Forced(bp) => {
                let routine = routine_by_id(bp.routine_id)
                    .expect("forced blueprint names a registered routine");
                let problem = ProblemSpec {
                    radius: bp.radius,
                    elem_bytes: kernel.elem_bytes,
                    config: bp.config,
                    dims: bp.dims,
                    smem_limit: Some(device.smem_per_sm),
                };
                routine.supports(&problem)?;
                let ranking = vec![RoutineRank {
                    routine_id: routine.id(),
                    label: routine.label(),
                    global_bytes: oracle_global_bytes(&bp, precision),
                }];
                Ok(RoutineChoice {
                    blueprint: bp,
                    ranking,
                })
            }
            RoutineStrategy::Auto => {
                let dims3 = (dims.lx, dims.ly, dims.lz);
                let mut first_rejection: Option<RoutineDiag> = None;
                let mut ranked: Vec<(RoutineRank, Blueprint)> = Vec::new();
                for routine in registry() {
                    let problem = ProblemSpec {
                        radius: kernel.radius,
                        elem_bytes: kernel.elem_bytes,
                        config: *probe,
                        dims: dims3,
                        smem_limit: Some(device.smem_per_sm),
                    };
                    match routine.supports(&problem) {
                        Err(diag) => {
                            first_rejection.get_or_insert(diag);
                        }
                        Ok(()) => {
                            let bp = routine.blueprint(probe, kernel.radius, dims3);
                            ranked.push((
                                RoutineRank {
                                    routine_id: routine.id(),
                                    label: routine.label(),
                                    global_bytes: oracle_global_bytes(&bp, precision),
                                },
                                bp,
                            ));
                        }
                    }
                }
                // Cheapest predicted traffic wins; ties break on the
                // stable id so the choice is deterministic.
                ranked.sort_by_key(|(r, _)| (r.global_bytes, r.routine_id));
                match ranked.first() {
                    Some((_, bp)) => Ok(RoutineChoice {
                        blueprint: *bp,
                        ranking: ranked.iter().map(|(r, _)| r.clone()).collect(),
                    }),
                    None => Err(first_rejection.expect("registry is never empty")),
                }
            }
        }
    }

    /// [`Self::select`], additionally re-specifying `kernel` onto the
    /// chosen routine's method (flops overhead re-derived) — what the
    /// `*_tune_selected` entry points feed their inner search.
    pub fn select_kernel(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: &GridDims,
        probe: &LaunchConfig,
    ) -> Result<(RoutineChoice, KernelSpec), RoutineDiag> {
        let choice = self.select(device, kernel, dims, probe)?;
        let kernel = kernel.with_method(choice.blueprint.method);
        Ok((choice, kernel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};

    fn kernel(m: Method, order: usize, p: Precision) -> KernelSpec {
        KernelSpec::star_order(m, order, p)
    }

    #[test]
    fn auto_ranks_every_supporting_routine() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(Method::ForwardPlane, 4, Precision::Single);
        let probe = LaunchConfig::new(64, 4, 1, 2);
        let choice = RoutineSelector::auto()
            .select(&dev, &k, &dims, &probe)
            .expect("a comfortable problem supports every routine");
        assert_eq!(choice.ranking.len(), registry().len());
        for w in choice.ranking.windows(2) {
            assert!(
                (w[0].global_bytes, w[0].routine_id) <= (w[1].global_bytes, w[1].routine_id),
                "ranking must ascend: {:?}",
                choice.ranking
            );
        }
        assert_eq!(choice.blueprint.routine_id, choice.ranking[0].routine_id);
    }

    #[test]
    fn auto_selection_is_deterministic() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(Method::ForwardPlane, 6, Precision::Double);
        let probe = LaunchConfig::new(32, 4, 1, 1);
        let sel = RoutineSelector::auto();
        let a = sel.select(&dev, &k, &dims, &probe).unwrap();
        let b = sel.select(&dev, &k, &dims, &probe).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_with_impossible_grid_returns_the_first_rejection() {
        let dev = DeviceSpec::gtx580();
        // nz = 3 <= 2r = 4: no routine can sweep this grid.
        let dims = GridDims::new(64, 64, 3);
        let k = kernel(Method::ForwardPlane, 4, Precision::Single);
        let err = RoutineSelector::auto()
            .select(&dev, &k, &dims, &LaunchConfig::new(32, 4, 1, 1))
            .unwrap_err();
        assert_eq!(err.code, "LNT-R007");
    }

    #[test]
    fn forced_rejection_is_the_coded_diagnostic_for_every_routine_and_precision() {
        // Satellite: forcing a blueprint the routine's `supports`
        // rejects must surface the coded diagnostic — never panic.
        let dev = DeviceSpec::gtx580();
        for precision in [Precision::Single, Precision::Double] {
            for routine in registry() {
                let k = kernel(routine.method(), 4, precision);
                // r = 2, so a 3-plane grid is too shallow for any sweep.
                let bp = routine.blueprint(&LaunchConfig::new(32, 4, 1, 1), 2, (64, 64, 3));
                let err = RoutineSelector::forced(bp)
                    .select(&dev, &k, &GridDims::new(64, 64, 3), &bp.config)
                    .expect_err("supports must reject the shallow grid");
                assert_eq!(err.code, "LNT-R007", "{}", routine.label());
                assert!(!err.message.is_empty());
            }
        }
    }

    #[test]
    fn forced_double_buffer_over_capacity_is_r008_both_precisions() {
        let dev = DeviceSpec::gtx580();
        let routine = inplane_core::routine_by_label("in-plane/double-buffered")
            .expect("db routine is registered");
        for precision in [Precision::Single, Precision::Double] {
            let k = kernel(routine.method(), 12, precision);
            let config = LaunchConfig::new(512, 2, 1, 8);
            let bp = routine.blueprint(&config, k.radius, (512, 512, 64));
            let err = RoutineSelector::forced(bp)
                .select(&dev, &k, &GridDims::new(512, 512, 64), &config)
                .expect_err("the staging pair cannot fit");
            assert_eq!(err.code, "LNT-R008", "{precision:?}");
        }
    }

    #[test]
    fn forced_legal_blueprint_is_honoured_verbatim() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        for routine in registry() {
            let k = kernel(routine.method(), 4, Precision::Single);
            let config = LaunchConfig::new(64, 4, 1, 2);
            let bp = routine.blueprint(&config, k.radius, (dims.lx, dims.ly, dims.lz));
            let choice = RoutineSelector::forced(bp)
                .select(&dev, &k, &dims, &config)
                .expect("legal blueprint");
            assert_eq!(choice.blueprint, bp);
            assert_eq!(choice.ranking.len(), 1);
            assert_eq!(choice.ranking[0].routine_id, routine.id());
        }
    }

    #[test]
    fn select_kernel_respecs_the_method() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let (choice, tuned) = RoutineSelector::auto()
            .select_kernel(&dev, &k, &dims, &LaunchConfig::new(64, 4, 1, 2))
            .unwrap();
        assert_eq!(tuned.method, choice.blueprint.method);
        // Round-trip respec restores the original flops accounting.
        assert_eq!(
            tuned.with_method(k.method),
            k.with_method(choice.blueprint.method).with_method(k.method)
        );
    }
}
