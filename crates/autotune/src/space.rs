//! The `(TX, TY, RX, RY)` parameter space and the paper's feasibility
//! constraints (§IV-C):
//!
//! 1. `TX` is a multiple of a half-warp (memory coalescing);
//!    `TY` has no such constraint;
//! 2. `TX × TY` is within the device's thread-per-block limit;
//! 3. the shared-memory staging buffer fits the device's per-SM limit;
//! 4. `TY × RY` divides the vertical grid size.
//!
//! Two practical constraints close the space: the register estimate must
//! fit the per-thread hardware cap (otherwise the "kernel" would not
//! compile at that unrolling), and a block's tile cannot exceed the grid
//! extent.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::resources::{regs_per_thread, smem_bytes};
use inplane_core::{KernelSpec, LaunchConfig};

/// An enumerated, constraint-filtered set of launch configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct ParameterSpace {
    configs: Vec<LaunchConfig>,
}

impl ParameterSpace {
    /// The paper's search space for `kernel` on `device` over `dims`:
    /// `TX ∈ {16, 32, 48, ..., 512}`, `TY ∈ {1..=32}`,
    /// `RX, RY ∈ {1, 2, 4, 8}`, filtered by the constraints above.
    pub fn paper_space(device: &DeviceSpec, kernel: &KernelSpec, dims: &GridDims) -> Self {
        let half_warp = device.warp_size / 2;
        let reg_factors = [1usize, 2, 4, 8];
        let mut configs = Vec::new();
        for tx in (half_warp..=512).step_by(half_warp) {
            for ty in 1..=32usize {
                if tx * ty > device.max_threads_per_block || tx * ty < device.warp_size {
                    continue;
                }
                for rx in reg_factors {
                    for ry in reg_factors {
                        let c = LaunchConfig::new(tx, ty, rx, ry);
                        if Self::feasible(device, kernel, dims, &c) {
                            configs.push(c);
                        }
                    }
                }
            }
        }
        ParameterSpace { configs }
    }

    /// Check the constraints for one configuration.
    pub fn feasible(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: &GridDims,
        c: &LaunchConfig,
    ) -> bool {
        let half_warp = device.warp_size / 2;
        // (i) TX multiple of a half-warp.
        if !c.tx.is_multiple_of(half_warp) {
            return false;
        }
        // (ii) thread limit.
        if c.threads() > device.max_threads_per_block {
            return false;
        }
        // (iii) shared-memory limit.
        if smem_bytes(kernel, c) > device.smem_per_sm {
            return false;
        }
        // (iv) TY·RY divides LY.
        if !dims.ly.is_multiple_of(c.tile_y()) {
            return false;
        }
        // Tile must fit the plane; register estimate must compile.
        c.tile_x() <= dims.lx
            && c.tile_y() <= dims.ly
            && regs_per_thread(kernel, c) <= device.max_regs_per_thread
    }

    /// Wrap an explicit list (used by tests and reduced sweeps).
    pub fn from_configs(configs: Vec<LaunchConfig>) -> Self {
        ParameterSpace { configs }
    }

    /// A reduced space for quick runs: powers-of-two TX/TY only.
    pub fn quick_space(device: &DeviceSpec, kernel: &KernelSpec, dims: &GridDims) -> Self {
        let full = Self::paper_space(device, kernel, dims);
        let configs = full
            .configs
            .into_iter()
            .filter(|c| c.tx.is_power_of_two() && c.ty.is_power_of_two())
            .collect();
        ParameterSpace { configs }
    }

    /// The configurations, in enumeration order.
    pub fn configs(&self) -> &[LaunchConfig] {
        &self.configs
    }

    /// Number of configurations (`M` in §VI).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no configuration survives the constraints.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    #[test]
    fn space_is_nonempty_and_all_feasible() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(4);
        let space = ParameterSpace::paper_space(&dev, &k, &dims);
        assert!(space.len() > 100, "space has {} configs", space.len());
        for c in space.configs() {
            assert!(
                ParameterSpace::feasible(&dev, &k, &dims, c),
                "{c} infeasible"
            );
        }
    }

    #[test]
    fn constraint_tx_half_warp() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(2);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(24, 4, 1, 1)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(48, 4, 1, 1)
        ));
    }

    #[test]
    fn constraint_thread_limit() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(2);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(512, 4, 1, 1)
        ));
    }

    #[test]
    fn constraint_smem() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        // A 512×8-tile order-12 slab exceeds 48 KB of shared memory.
        let k = kernel(12);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(512, 1, 1, 8)
        ));
    }

    #[test]
    fn constraint_ty_ry_divides_ly() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let dims = GridDims::new(512, 96, 64);
        // 96 = 2^5·3: TY·RY = 5 never divides it; 3 does... TY in 1..32.
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 5, 1, 1)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 3, 1, 1)
        ));
        // TY·RY = 10 does not divide 96; TY·RY = 32 does.
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 5, 1, 2)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 4, 1, 8)
        ));
    }

    #[test]
    fn constraint_register_cap_prunes_big_dp_tiles() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(16, 8, 2, 2)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(16, 8, 1, 1)
        ));
    }

    #[test]
    fn tile_must_fit_grid() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let dims = GridDims::new(64, 64, 64);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(128, 1, 1, 1)
        ));
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 1, 4, 1)
        ));
    }

    #[test]
    fn quick_space_is_subset() {
        let dev = DeviceSpec::gtx680();
        let dims = GridDims::paper();
        let k = kernel(4);
        let full = ParameterSpace::paper_space(&dev, &k, &dims);
        let quick = ParameterSpace::quick_space(&dev, &k, &dims);
        assert!(quick.len() < full.len());
        for c in quick.configs() {
            assert!(full.configs().contains(c));
        }
    }

    #[test]
    fn paper_optimal_configs_are_in_the_space() {
        // Every optimal configuration reported in Table IV must be
        // enumerable by our space (for its device and precision).
        let dims = GridDims::paper();
        type Case = (DeviceSpec, usize, Precision, (usize, usize, usize, usize));
        let cases: [Case; 6] = [
            (DeviceSpec::gtx580(), 2, Precision::Single, (256, 1, 1, 8)),
            (DeviceSpec::gtx680(), 2, Precision::Single, (256, 4, 1, 4)),
            (DeviceSpec::c2070(), 4, Precision::Single, (32, 2, 2, 4)),
            (DeviceSpec::gtx580(), 10, Precision::Single, (32, 8, 1, 2)),
            (DeviceSpec::gtx580(), 2, Precision::Double, (128, 1, 1, 4)),
            (DeviceSpec::c2070(), 12, Precision::Double, (16, 16, 1, 1)),
        ];
        for (dev, order, prec, (tx, ty, rx, ry)) in cases {
            let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, prec);
            let space = ParameterSpace::paper_space(&dev, &k, &dims);
            let c = LaunchConfig::new(tx, ty, rx, ry);
            assert!(
                space.configs().contains(&c),
                "{} order {order} {}: {c} missing from space",
                dev.name,
                prec.label()
            );
        }
    }
}
