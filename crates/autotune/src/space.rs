//! The `(TX, TY, RX, RY)` parameter space and the paper's feasibility
//! constraints (§IV-C):
//!
//! 1. `TX` is a multiple of a half-warp (memory coalescing);
//!    `TY` has no such constraint;
//! 2. `TX × TY` is within the device's thread-per-block limit;
//! 3. the shared-memory staging buffer fits the device's per-SM limit;
//! 4. `TY × RY` divides the vertical grid size.
//!
//! Two practical constraints close the space: the register estimate must
//! fit the per-thread hardware cap (otherwise the "kernel" would not
//! compile at that unrolling), and a block's tile cannot exceed the grid
//! extent.
//!
//! The checks themselves live in `stencil-lint`'s explained feasibility
//! analyzer ([`stencil_lint::explain_feasibility`]): every rejection
//! carries a coded reason (`LNT-R…`) and a by-how-much context.
//! [`ParameterSpace::feasible`] is a boolean shim over that analyzer,
//! and [`ParameterSpace::paper_space_audited`] keeps the per-code
//! rejection histogram that tuning reports surface.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::plan::lower_step;
use inplane_core::{KernelSpec, LaunchConfig};
use stencil_lint::{analyze_plan, explain_feasibility, Severity};

/// An enumerated, constraint-filtered set of launch configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct ParameterSpace {
    configs: Vec<LaunchConfig>,
}

/// What the enumeration rejected and why: a per-code histogram from the
/// explained feasibility analyzer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpaceAudit {
    /// Grid points examined (before any filtering).
    pub examined: usize,
    /// Configurations accepted into the space.
    pub accepted: usize,
    /// Rejection histogram: `(diagnostic code, count)`, sorted by code.
    /// Error codes are hard constraint violations; `LNT-R101` counts the
    /// sub-warp blocks the enumeration excludes by convention.
    pub rejections: Vec<(String, u64)>,
}

impl ParameterSpace {
    /// The paper's search space for `kernel` on `device` over `dims`:
    /// `TX ∈ {16, 32, 48, ..., 512}`, `TY ∈ {1..=32}`,
    /// `RX, RY ∈ {1, 2, 4, 8}`, filtered by the constraints above.
    pub fn paper_space(device: &DeviceSpec, kernel: &KernelSpec, dims: &GridDims) -> Self {
        Self::paper_space_audited(device, kernel, dims).0
    }

    /// [`Self::paper_space`], also returning the audit of what the
    /// constraints rejected (per diagnostic code).
    pub fn paper_space_audited(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: &GridDims,
    ) -> (Self, SpaceAudit) {
        let half_warp = device.half_wavefront();
        let reg_factors = [1usize, 2, 4, 8];
        let mut configs = Vec::new();
        let mut audit = SpaceAudit::default();
        let mut histogram: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for tx in (half_warp..=512).step_by(half_warp) {
            for ty in 1..=32usize {
                for rx in reg_factors {
                    for ry in reg_factors {
                        let c = LaunchConfig::new(tx, ty, rx, ry);
                        audit.examined += 1;
                        let diags = explain_feasibility(device, kernel, dims, &c);
                        // The enumeration excludes both hard constraint
                        // violations (errors) and sub-warp blocks
                        // (LNT-R101, convention).
                        let mut rejected = false;
                        for d in &diags {
                            if d.severity == Severity::Error || d.code == "LNT-R101" {
                                rejected = true;
                                *histogram.entry(d.code).or_insert(0) += 1;
                            }
                        }
                        if !rejected {
                            configs.push(c);
                        }
                    }
                }
            }
        }
        audit.accepted = configs.len();
        audit.rejections = histogram
            .into_iter()
            .map(|(code, n)| (code.to_string(), n))
            .collect();
        (ParameterSpace { configs }, audit)
    }

    /// Check the constraints for one configuration.
    ///
    /// Boolean shim over [`stencil_lint::explain_feasibility`]: feasible
    /// iff the analyzer emits no error-severity diagnostic. (The sub-warp
    /// `LNT-R101` warning does *not* make a configuration infeasible — it
    /// is an enumeration convention, handled in
    /// [`Self::paper_space_audited`].)
    pub fn feasible(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        dims: &GridDims,
        c: &LaunchConfig,
    ) -> bool {
        stencil_lint::is_feasible(device, kernel, dims, c)
    }

    /// Wrap an explicit list (used by tests and reduced sweeps).
    pub fn from_configs(configs: Vec<LaunchConfig>) -> Self {
        ParameterSpace { configs }
    }

    /// A reduced space for quick runs: powers-of-two TX/TY only.
    pub fn quick_space(device: &DeviceSpec, kernel: &KernelSpec, dims: &GridDims) -> Self {
        let full = Self::paper_space(device, kernel, dims);
        let configs = full
            .configs
            .into_iter()
            .filter(|c| c.tx.is_power_of_two() && c.ty.is_power_of_two())
            .collect();
        ParameterSpace { configs }
    }

    /// The configurations, in enumeration order.
    pub fn configs(&self) -> &[LaunchConfig] {
        &self.configs
    }

    /// Run the whole-plan dataflow proof over up to `limit` accepted
    /// configurations and aggregate the per-code `LNT-D…` histogram.
    ///
    /// Each configuration is checked on a synthetic grid of a few tiles
    /// (the pass is rect algebra, so its cost does not depend on the
    /// real grid), which keeps auditing a 16 384-point paper space
    /// tractable — callers bound the work explicitly instead of paying
    /// for every point. An error-severity `D` code in the result means
    /// the lowering is broken for that configuration shape.
    pub fn dataflow_audit(&self, kernel: &KernelSpec, limit: usize) -> Vec<(String, u64)> {
        let r = kernel.radius;
        let mut histogram: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for c in self.configs.iter().take(limit) {
            let dims = (2 * r + 2 * c.tile_x(), 2 * r + 2 * c.tile_y(), 4 * r + 2);
            let plan = lower_step(kernel.method, c, r, dims);
            for &(code, n) in analyze_plan(&plan).histogram() {
                *histogram.entry(code).or_insert(0) += n;
            }
        }
        histogram
            .into_iter()
            .map(|(code, n)| (code.to_string(), n))
            .collect()
    }

    /// Number of configurations (`M` in §VI).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no configuration survives the constraints.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    #[test]
    fn space_is_nonempty_and_all_feasible() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(4);
        let space = ParameterSpace::paper_space(&dev, &k, &dims);
        assert!(space.len() > 100, "space has {} configs", space.len());
        for c in space.configs() {
            assert!(
                ParameterSpace::feasible(&dev, &k, &dims, c),
                "{c} infeasible"
            );
        }
    }

    #[test]
    fn constraint_tx_half_warp() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(2);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(24, 4, 1, 1)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(48, 4, 1, 1)
        ));
    }

    #[test]
    fn constraint_thread_limit() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(2);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(512, 4, 1, 1)
        ));
    }

    #[test]
    fn constraint_smem() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        // A 512×8-tile order-12 slab exceeds 48 KB of shared memory.
        let k = kernel(12);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(512, 1, 1, 8)
        ));
    }

    #[test]
    fn constraint_ty_ry_divides_ly() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let dims = GridDims::new(512, 96, 64);
        // 96 = 2^5·3: TY·RY = 5 never divides it; 3 does... TY in 1..32.
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 5, 1, 1)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 3, 1, 1)
        ));
        // TY·RY = 10 does not divide 96; TY·RY = 32 does.
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 5, 1, 2)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 4, 1, 8)
        ));
    }

    #[test]
    fn constraint_register_cap_prunes_big_dp_tiles() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(16, 8, 2, 2)
        ));
        assert!(ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(16, 8, 1, 1)
        ));
    }

    #[test]
    fn tile_must_fit_grid() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let dims = GridDims::new(64, 64, 64);
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(128, 1, 1, 1)
        ));
        assert!(!ParameterSpace::feasible(
            &dev,
            &k,
            &dims,
            &LaunchConfig::new(32, 1, 4, 1)
        ));
    }

    #[test]
    fn audited_space_counts_every_grid_point() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(4);
        let (space, audit) = ParameterSpace::paper_space_audited(&dev, &k, &dims);
        // 32 TX steps x 32 TY values x 4 RX x 4 RY.
        assert_eq!(audit.examined, 32 * 32 * 16);
        assert_eq!(audit.accepted, space.len());
        assert!(audit.accepted < audit.examined);
        // Every rejected grid point is accounted for by at least one
        // coded reason (a point can carry several, so the histogram sum
        // is >= the rejected count).
        let coded: u64 = audit.rejections.iter().map(|(_, n)| n).sum();
        assert!(coded >= (audit.examined - audit.accepted) as u64);
        // The paper grid always contains thread-limit violations and
        // sub-warp exclusions.
        assert!(audit.rejections.iter().any(|(c, _)| c == "LNT-R002"));
        assert!(audit.rejections.iter().any(|(c, _)| c == "LNT-R101"));
    }

    #[test]
    fn dataflow_audit_is_bounded_and_finds_no_errors() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(4);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let hist = space.dataflow_audit(&k, 8);
        // Full-slice plans carry the documented dead-arm warning and the
        // corner-staging note, never an error-severity D code.
        assert!(hist.iter().any(|(c, _)| c == "LNT-D103"), "{hist:?}");
        assert!(hist.iter().any(|(c, _)| c == "LNT-D901"), "{hist:?}");
        assert!(
            hist.iter()
                .all(|(c, _)| { stencil_lint::catalog_severity(c) != Some(Severity::Error) }),
            "{hist:?}"
        );
        // The audit caps its work: an empty budget audits nothing.
        assert!(space.dataflow_audit(&k, 0).is_empty());
    }

    #[test]
    fn quick_space_is_subset() {
        let dev = DeviceSpec::gtx680();
        let dims = GridDims::paper();
        let k = kernel(4);
        let full = ParameterSpace::paper_space(&dev, &k, &dims);
        let quick = ParameterSpace::quick_space(&dev, &k, &dims);
        assert!(quick.len() < full.len());
        for c in quick.configs() {
            assert!(full.configs().contains(c));
        }
    }

    #[test]
    fn paper_optimal_configs_are_in_the_space() {
        // Every optimal configuration reported in Table IV must be
        // enumerable by our space (for its device and precision).
        let dims = GridDims::paper();
        type Case = (DeviceSpec, usize, Precision, (usize, usize, usize, usize));
        let cases: [Case; 6] = [
            (DeviceSpec::gtx580(), 2, Precision::Single, (256, 1, 1, 8)),
            (DeviceSpec::gtx680(), 2, Precision::Single, (256, 4, 1, 4)),
            (DeviceSpec::c2070(), 4, Precision::Single, (32, 2, 2, 4)),
            (DeviceSpec::gtx580(), 10, Precision::Single, (32, 8, 1, 2)),
            (DeviceSpec::gtx580(), 2, Precision::Double, (128, 1, 1, 4)),
            (DeviceSpec::c2070(), 12, Precision::Double, (16, 16, 1, 1)),
        ];
        for (dev, order, prec, (tx, ty, rx, ry)) in cases {
            let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, prec);
            let space = ParameterSpace::paper_space(&dev, &k, &dims);
            let c = LaunchConfig::new(tx, ty, rx, ry);
            assert!(
                space.configs().contains(&c),
                "{} order {order} {}: {c} missing from space",
                dev.name,
                prec.label()
            );
        }
    }
}
