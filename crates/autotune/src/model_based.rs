//! Model-based auto-tuning (§VI): rank the whole parameter space with
//! the analytic model, *execute* only the top β% of configurations, and
//! return the best actually-measured one.

use crate::exhaustive::{Provenance, TuneSample};
use crate::model::predict_mpoints;
use crate::selector::{RoutineChoice, RoutineSelector};
use crate::space::ParameterSpace;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, RoutineDiag};
use rayon::prelude::*;

/// Result of a model-based tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelBasedOutcome {
    /// Best measured configuration among the executed candidates.
    pub best: TuneSample,
    /// Number of configurations actually executed (`N = β/100 · M`,
    /// plus any injected warm-start seeds).
    pub executed: usize,
    /// Total size of the parameter space (`M`).
    pub space_size: usize,
    /// The executed candidates in model-rank order (warm-start seeds
    /// first, when present) with their (prediction, measurement) pairs.
    pub candidates: Vec<(LaunchConfig, f64, f64)>,
    /// [`Provenance::WarmStarted`] when a stored sibling configuration
    /// was injected into the shortlist, [`Provenance::Computed`]
    /// otherwise.
    pub provenance: Provenance,
}

impl ModelBasedOutcome {
    /// Fraction of the space executed.
    pub fn executed_fraction(&self) -> f64 {
        self.executed as f64 / self.space_size as f64
    }

    /// Repackage as a [`crate::TuneOutcome`] over the executed candidates.
    pub fn into_outcome(self) -> crate::TuneOutcome {
        crate::TuneOutcome {
            best: self.best,
            samples: self
                .candidates
                .into_iter()
                .map(|(config, _, mpoints)| TuneSample { config, mpoints })
                .collect(),
            provenance: self.provenance,
        }
    }
}

/// Run model-based tuning with cutoff `beta_percent` (the paper uses 5).
///
/// # Panics
/// Panics on an empty space or a non-positive β.
pub fn model_based_tune(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    beta_percent: f64,
    seed: u64,
) -> ModelBasedOutcome {
    model_based_tune_with(
        EvalContext::global(),
        device,
        kernel,
        dims,
        space,
        beta_percent,
        seed,
    )
}

/// [`model_based_tune`] against an explicit evaluation context, for
/// callers that manage cache scope themselves.
///
/// # Panics
/// Panics on an empty space or a non-positive β.
#[allow(clippy::too_many_arguments)]
pub fn model_based_tune_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    beta_percent: f64,
    seed: u64,
) -> ModelBasedOutcome {
    model_based_tune_seeded_with(ctx, device, kernel, dims, space, beta_percent, seed, &[])
}

/// Run the [`RoutineSelector`] first, then model-rank and tune the
/// chosen routine's kernel respec. Errors are the selector's coded
/// rejection.
///
/// # Panics
/// Panics on an empty space or a non-positive β.
#[allow(clippy::too_many_arguments)]
pub fn model_based_tune_selected(
    ctx: &EvalContext,
    selector: &RoutineSelector,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    beta_percent: f64,
    seed: u64,
) -> Result<(RoutineChoice, ModelBasedOutcome), RoutineDiag> {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    let probe = space.configs()[0];
    let (choice, kernel) = selector.select_kernel(device, kernel, &dims, &probe)?;
    let outcome = model_based_tune_with(ctx, device, &kernel, dims, space, beta_percent, seed);
    Ok((choice, outcome))
}

/// [`model_based_tune_with`] with a warm-start: `warm_seeds` are
/// configurations (typically stored optima of the same kernel on a
/// different device or grid, supplied by the tune-store service) that
/// are injected at the front of the measured shortlist when they are
/// feasible in `space` and not already shortlisted by the model.
///
/// The outcome's provenance is [`Provenance::WarmStarted`] iff at least
/// one seed was injected; seeds the model already ranked into the top
/// β% change nothing and leave the provenance [`Provenance::Computed`].
///
/// # Panics
/// Panics on an empty space or a non-positive β.
#[allow(clippy::too_many_arguments)]
pub fn model_based_tune_seeded_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    beta_percent: f64,
    seed: u64,
    warm_seeds: &[LaunchConfig],
) -> ModelBasedOutcome {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    assert!(beta_percent > 0.0, "beta must be positive");

    // Rank every configuration by predicted performance (descending).
    let mut ranked: Vec<(LaunchConfig, f64)> = space
        .configs()
        .par_iter()
        .map(|c| (*c, predict_mpoints(device, kernel, c, &dims)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Select the top N = β/100 · M candidates (at least one).
    let n = ((beta_percent / 100.0) * space.len() as f64).ceil() as usize;
    let n = n.clamp(1, space.len());

    // Seed the shortlist: stored sibling optima ride along in front of
    // the model's own picks (dedup'd, and only if feasible here).
    let mut shortlist: Vec<(LaunchConfig, f64)> = Vec::with_capacity(n + warm_seeds.len());
    let mut injected = false;
    for &c in warm_seeds {
        let in_top = ranked[..n].iter().any(|&(rc, _)| rc == c);
        let in_space = space.configs().contains(&c);
        if !in_top && in_space && !shortlist.iter().any(|&(sc, _)| sc == c) {
            shortlist.push((c, predict_mpoints(device, kernel, &c, &dims)));
            injected = true;
        }
    }
    shortlist.extend_from_slice(&ranked[..n]);

    // Execute them and record actual run-time performance.
    let configs: Vec<LaunchConfig> = shortlist.iter().map(|&(c, _)| c).collect();
    let measured = ctx.measure_batch(device, kernel, &configs, dims, seed);
    let candidates: Vec<(LaunchConfig, f64, f64)> = shortlist
        .iter()
        .zip(&measured)
        .map(|(&(c, pred), report)| (c, pred, report.mpoints_per_s()))
        .collect();

    let best = candidates
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|&(config, _, mpoints)| TuneSample { config, mpoints })
        .expect("at least one candidate");

    ModelBasedOutcome {
        best,
        executed: candidates.len(),
        space_size: space.len(),
        candidates,
        provenance: if injected {
            Provenance::WarmStarted
        } else {
            Provenance::Computed
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_tune;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    #[test]
    fn executes_only_beta_fraction() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 32);
        let k = kernel(4);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = model_based_tune(&dev, &k, dims, &space, 5.0, 1);
        assert_eq!(out.space_size, space.len());
        assert!(out.executed <= (space.len() as f64 * 0.05).ceil() as usize);
        assert!(out.executed_fraction() <= 0.06);
        assert!(out.best.mpoints > 0.0);
    }

    #[test]
    fn model_based_close_to_exhaustive() {
        // The Fig 12 claim: β = 5% typically lands within a few percent
        // of the exhaustive optimum. Allow 10% here (the paper's worst
        // case is ~6%).
        let dims = GridDims::paper();
        for order in [2usize, 8] {
            let dev = DeviceSpec::gtx580();
            let k = kernel(order);
            let space = ParameterSpace::quick_space(&dev, &k, &dims);
            let ex = exhaustive_tune(&dev, &k, dims, &space, 1);
            let mb = model_based_tune(&dev, &k, dims, &space, 5.0, 1);
            let ratio = mb.best.mpoints / ex.best.mpoints;
            assert!(
                ratio > 0.90,
                "order {order}: model-based at {:.3} of exhaustive",
                ratio
            );
            assert!(
                ratio <= 1.0 + 1e-9,
                "model-based cannot beat exhaustive: {ratio}"
            );
        }
    }

    #[test]
    fn beta_100_equals_exhaustive() {
        let dev = DeviceSpec::gtx680();
        let dims = GridDims::new(256, 256, 32);
        let k = kernel(2);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let ex = exhaustive_tune(&dev, &k, dims, &space, 4);
        let mb = model_based_tune(&dev, &k, dims, &space, 100.0, 4);
        assert_eq!(mb.best.config, ex.best.config);
        assert_eq!(mb.executed, space.len());
    }

    #[test]
    fn candidates_are_in_model_rank_order() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 32);
        let k = kernel(4);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = model_based_tune(&dev, &k, dims, &space, 10.0, 1);
        for w in out.candidates.windows(2) {
            assert!(w[0].1 >= w[1].1, "predictions must be descending");
        }
    }

    #[test]
    #[should_panic]
    fn zero_beta_panics() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        let dims = GridDims::new(128, 128, 16);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        model_based_tune(&dev, &k, dims, &space, 0.0, 1);
    }
}
