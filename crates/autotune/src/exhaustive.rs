//! The exhaustive auto-tuning engine of §IV-C: every feasible
//! configuration is "executed" (simulated with measurement noise) and
//! the best measured configuration wins.

use crate::selector::{RoutineChoice, RoutineSelector};
use crate::space::ParameterSpace;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, RoutineDiag};

/// One measured configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuneSample {
    /// The configuration measured.
    pub config: LaunchConfig,
    /// Measured throughput, MPoint/s (0 for infeasible launches).
    pub mpoints: f64,
}

/// How a tuning outcome was produced — the search itself, a persistent
/// store lookup, or a search warm-started from a stored sibling result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The full search ran in this process.
    #[default]
    Computed,
    /// Served verbatim from a persistent tune store without searching.
    Store,
    /// The search ran, but its measured shortlist was seeded with the
    /// stored best configuration of a sibling key (same kernel,
    /// different device or grid).
    WarmStarted,
}

impl Provenance {
    /// Short human-readable label ("computed", "store", "warm-started").
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Computed => "computed",
            Provenance::Store => "store",
            Provenance::WarmStarted => "warm-started",
        }
    }
}

/// Result of a tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneOutcome {
    /// The winning configuration.
    pub best: TuneSample,
    /// Every sample, in descending measured performance.
    pub samples: Vec<TuneSample>,
    /// Where the result came from (always [`Provenance::Computed`] for
    /// an in-process search; the tune-store service overrides it when a
    /// result is served from persistence).
    pub provenance: Provenance,
}

impl TuneOutcome {
    /// Number of configurations executed.
    pub fn evaluated(&self) -> usize {
        self.samples.len()
    }

    /// The top `n` samples.
    pub fn top(&self, n: usize) -> &[TuneSample] {
        &self.samples[..n.min(self.samples.len())]
    }
}

/// Measure every configuration in `space` and return the ranked outcome.
///
/// ```
/// use gpu_sim::{DeviceSpec, GridDims};
/// use inplane_core::{KernelSpec, Method, Variant};
/// use stencil_autotune::{exhaustive_tune, ParameterSpace};
/// use stencil_grid::Precision;
///
/// let dev = DeviceSpec::gtx580();
/// let dims = GridDims::new(256, 256, 32);
/// let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
/// let space = ParameterSpace::quick_space(&dev, &kernel, &dims);
/// let best = exhaustive_tune(&dev, &kernel, dims, &space, 1).best;
/// assert!(best.mpoints > 0.0);
/// ```
///
/// # Panics
/// Panics if the space is empty (nothing to tune).
pub fn exhaustive_tune(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    seed: u64,
) -> TuneOutcome {
    exhaustive_tune_with(EvalContext::global(), device, kernel, dims, space, seed)
}

/// [`exhaustive_tune`] against an explicit evaluation context, for
/// callers that manage cache scope (or read its counters) themselves.
///
/// # Panics
/// Panics if the space is empty (nothing to tune).
pub fn exhaustive_tune_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    seed: u64,
) -> TuneOutcome {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    let reports = ctx.measure_batch(device, kernel, space.configs(), dims, seed);
    let mut samples: Vec<TuneSample> = space
        .configs()
        .iter()
        .zip(&reports)
        .map(|(config, report)| TuneSample {
            config: *config,
            mpoints: report.mpoints_per_s(),
        })
        .collect();
    samples.sort_by(|a, b| b.mpoints.total_cmp(&a.mpoints));
    TuneOutcome {
        best: samples[0],
        samples,
        provenance: Provenance::Computed,
    }
}

/// Run the [`RoutineSelector`] first, then exhaustively tune the chosen
/// routine's kernel respec over `space`. Errors are the selector's
/// coded rejection — the search itself never starts on an unsupported
/// problem.
///
/// # Panics
/// Panics if the space is empty (nothing to probe or tune).
pub fn exhaustive_tune_selected(
    ctx: &EvalContext,
    selector: &RoutineSelector,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    seed: u64,
) -> Result<(RoutineChoice, TuneOutcome), RoutineDiag> {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    let probe = space.configs()[0];
    let (choice, kernel) = selector.select_kernel(device, kernel, &dims, &probe)?;
    let outcome = exhaustive_tune_with(ctx, device, &kernel, dims, space, seed);
    Ok((choice, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    #[test]
    fn tuning_finds_a_positive_best() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let k = kernel(4);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = exhaustive_tune(&dev, &k, dims, &space, 1);
        assert!(out.best.mpoints > 0.0);
        assert_eq!(out.evaluated(), space.len());
        // Ranked descending.
        for w in out.samples.windows(2) {
            assert!(w[0].mpoints >= w[1].mpoints);
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let dev = DeviceSpec::gtx680();
        let dims = GridDims::new(256, 256, 32);
        let k = kernel(2);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let a = exhaustive_tune(&dev, &k, dims, &space, 9);
        let b = exhaustive_tune(&dev, &k, dims, &space, 9);
        assert_eq!(a.best.config, b.best.config);
        assert_eq!(a.best.mpoints, b.best.mpoints);
    }

    #[test]
    fn best_beats_a_deliberately_poor_config() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = kernel(4);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = exhaustive_tune(&dev, &k, dims, &space, 1);
        let poor = out
            .samples
            .iter()
            .find(|s| s.config == LaunchConfig::new(16, 2, 1, 1))
            .expect("16x2 should be in the space");
        assert!(out.best.mpoints > 1.2 * poor.mpoints);
    }

    #[test]
    #[should_panic]
    fn empty_space_panics() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(2);
        exhaustive_tune(
            &dev,
            &k,
            GridDims::paper(),
            &ParameterSpace::from_configs(vec![]),
            0,
        );
    }

    #[test]
    fn top_n_clamps() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(128, 128, 32);
        let k = kernel(2);
        let space = ParameterSpace::from_configs(vec![
            LaunchConfig::new(32, 4, 1, 1),
            LaunchConfig::new(64, 2, 1, 1),
        ]);
        let out = exhaustive_tune(&dev, &k, dims, &space, 3);
        assert_eq!(out.top(10).len(), 2);
        assert_eq!(out.top(1).len(), 1);
    }
}
