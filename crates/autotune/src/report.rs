//! Human-readable tuning reports: what the paper's performance surfaces
//! (Fig 8) summarise, as numbers — distribution statistics over the
//! search space, the top candidates, and what limits them — plus the
//! cache and tune-store counters that make a run's reuse behaviour
//! observable.

use crate::exhaustive::TuneOutcome;
use gpu_sim::{DeviceSpec, GridDims, LimitingFactor, SimOptions};
use inplane_core::{simulate_kernel, CacheStats, EvalContext, ExecStats, KernelSpec};

/// Counters of a persistent tune store, as surfaced in a [`TuneReport`].
///
/// The store itself lives in `stencil-tunestore` (which depends on this
/// crate); this mirror struct keeps the dependency one-way while still
/// letting reports carry store behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that missed and fell through to a search.
    pub misses: u64,
    /// Persisted records skipped as corrupt (checksum/parse failures,
    /// truncated lines) or stale (schema-version mismatch) at load.
    pub corrupt: u64,
}

/// Outcome of proving the winning configuration's emitted kernel
/// source with the `stencil-lint` kernel verifier, as surfaced in a
/// [`TuneReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelVerifySummary {
    /// Backends proven: 1 for CUDA alone, 2 when the routine also has
    /// an OpenCL emitter.
    pub backends: u32,
    /// Error-severity `LNT-K…` findings across all proven backends —
    /// zero on a healthy emitter.
    pub errors: u64,
}

impl KernelVerifySummary {
    /// Run the kernel verifier on `config`'s emitted source for every
    /// supported backend, over the minimal one-block grid the sweep
    /// contract uses (`2R + WX × 2R + WY × 2R + 2`).
    pub fn for_config(kernel: &KernelSpec, config: &inplane_core::LaunchConfig) -> Self {
        let r = kernel.radius;
        let dims = (2 * r + config.tile_x(), 2 * r + config.tile_y(), 2 * r + 2);
        let mut diags = stencil_lint::verify_cuda_kernel(kernel, config, dims);
        let mut backends = 1;
        if kernel.method.routine().opencl_supported() {
            diags.extend(stencil_lint::verify_opencl_kernel(kernel, config, dims));
            backends = 2;
        }
        KernelVerifySummary {
            backends,
            errors: diags
                .iter()
                .filter(|d| d.severity == stencil_lint::Severity::Error)
                .count() as u64,
        }
    }

    /// True when no backend produced an error-severity finding.
    pub fn clean(&self) -> bool {
        self.errors == 0
    }
}

/// Distribution summary of a tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneReport {
    /// Configurations measured.
    pub evaluated: usize,
    /// Best measured MPoint/s.
    pub best: f64,
    /// Median measured MPoint/s.
    pub median: f64,
    /// Lower-quartile MPoint/s.
    pub q1: f64,
    /// Upper-quartile MPoint/s.
    pub q3: f64,
    /// Worst feasible MPoint/s.
    pub worst_feasible: f64,
    /// Ratio best / median: how much auto-tuning buys over a blind pick.
    pub tuning_gain_over_median: f64,
    /// The limiting factor of the winning configuration.
    pub best_limited_by: LimitingFactor,
    /// Evaluation-cache counters for the run (`None` when summarised
    /// without a context).
    pub cache: Option<CacheStats>,
    /// Persistent tune-store counters (`None` when no store was used).
    pub store: Option<StoreCounters>,
    /// Per-code rejection histogram from the space enumeration (`None`
    /// when summarised without an audit).
    pub rejections: Option<Vec<(String, u64)>>,
    /// Instrumented counters from a functional replay of the winning
    /// configuration through the plan interpreter (`None` when the
    /// winner was not replayed).
    pub exec: Option<ExecStats>,
    /// Per-code `LNT-D…` histogram from a bounded whole-plan dataflow
    /// audit of the space (`None` when no audit ran) — what
    /// [`crate::space::ParameterSpace::dataflow_audit`] collected.
    pub dataflow: Option<Vec<(String, u64)>>,
    /// Counters the static traffic oracle predicted for the winning
    /// configuration's plan (`None` when no prediction was attached).
    /// When [`Self::exec`] is also present the two must agree exactly;
    /// rendering surfaces any drift.
    pub predicted: Option<ExecStats>,
    /// Kernel-verifier verdict on the winning configuration's emitted
    /// source (`None` when the verifier was not run).
    pub kernel_verify: Option<KernelVerifySummary>,
}

/// Nearest-rank quantile over an ascending-sorted non-empty slice.
///
/// `(len - 1) · q` is *rounded* to the nearest index — truncation would
/// bias q1/median/q3 low on small sample sets (e.g. the median of five
/// samples must be index 2, not whatever `floor` lands on for q = 0.5
/// after float noise, and q3 must be index 3, not 2).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Summarise a completed tuning run (re-pricing the winner for its
/// limiting factor).
pub fn summarize(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    outcome: &TuneOutcome,
) -> TuneReport {
    let mut feasible: Vec<f64> = outcome
        .samples
        .iter()
        .map(|s| s.mpoints)
        .filter(|&m| m > 0.0)
        .collect();
    feasible.sort_by(f64::total_cmp);
    let best = outcome.best.mpoints;
    let median = nearest_rank(&feasible, 0.5);
    let rep = simulate_kernel(
        device,
        kernel,
        &outcome.best.config,
        dims,
        &SimOptions::default(),
    );
    TuneReport {
        evaluated: outcome.evaluated(),
        best,
        median,
        q1: nearest_rank(&feasible, 0.25),
        q3: nearest_rank(&feasible, 0.75),
        worst_feasible: nearest_rank(&feasible, 0.0),
        tuning_gain_over_median: if median > 0.0 { best / median } else { 0.0 },
        best_limited_by: rep.limiting,
        cache: None,
        store: None,
        rejections: None,
        exec: None,
        dataflow: None,
        predicted: None,
        kernel_verify: None,
    }
}

/// [`summarize`], capturing the evaluation-cache counters of the
/// context the run used.
pub fn summarize_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    outcome: &TuneOutcome,
) -> TuneReport {
    let mut report = summarize(device, kernel, dims, outcome);
    report.cache = Some(ctx.stats());
    report
}

impl TuneReport {
    /// Attach persistent tune-store counters (builder style).
    pub fn with_store(mut self, counters: StoreCounters) -> Self {
        self.store = Some(counters);
        self
    }

    /// Attach the space enumeration's rejection histogram (builder
    /// style) — what [`crate::space::SpaceAudit`] collected.
    pub fn with_rejections(mut self, rejections: Vec<(String, u64)>) -> Self {
        self.rejections = Some(rejections);
        self
    }

    /// Attach the instrumented counters of a functional replay of the
    /// winning configuration (builder style).
    pub fn with_exec(mut self, exec: ExecStats) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Attach a bounded dataflow audit's `LNT-D…` histogram (builder
    /// style).
    pub fn with_dataflow(mut self, histogram: Vec<(String, u64)>) -> Self {
        self.dataflow = Some(histogram);
        self
    }

    /// Attach the static traffic oracle's predicted counters for the
    /// winning configuration's plan (builder style).
    pub fn with_traffic(mut self, predicted: ExecStats) -> Self {
        self.predicted = Some(predicted);
        self
    }

    /// Attach a kernel-verifier verdict for the winning configuration
    /// (builder style) — typically [`KernelVerifySummary::for_config`].
    pub fn with_kernel_verify(mut self, verify: KernelVerifySummary) -> Self {
        self.kernel_verify = Some(verify);
        self
    }

    /// True when both a prediction and a replay are attached and they
    /// agree exactly; `None` when either side is missing.
    pub fn oracle_match(&self) -> Option<bool> {
        match (&self.predicted, &self.exec) {
            (Some(p), Some(e)) => Some(p == e),
            _ => None,
        }
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "evaluated {} configurations\n\
             best {:.0} MPoint/s (limited by {:?})\n\
             quartiles: {:.0} / {:.0} / {:.0} MPoint/s; worst feasible {:.0}\n\
             tuning gain over the median configuration: {:.2}x",
            self.evaluated,
            self.best,
            self.best_limited_by,
            self.q1,
            self.median,
            self.q3,
            self.worst_feasible,
            self.tuning_gain_over_median,
        );
        if let Some(c) = self.cache {
            out.push_str(&format!(
                "\neval cache: {} hits / {} misses / {} inserts ({:.0}% hit rate)",
                c.hits,
                c.misses,
                c.inserts,
                100.0 * c.hit_rate(),
            ));
        }
        if let Some(s) = self.store {
            out.push_str(&format!(
                "\ntune store: {} hits / {} misses / {} corrupt-or-stale skipped",
                s.hits, s.misses, s.corrupt,
            ));
        }
        if let Some(rej) = &self.rejections {
            let total: u64 = rej.iter().map(|(_, n)| n).sum();
            out.push_str(&format!("\nspace rejections ({total} coded reasons):"));
            for (code, n) in rej {
                out.push_str(&format!("\n  {code}  x{n}"));
            }
        }
        if let Some(df) = &self.dataflow {
            let total: u64 = df.iter().map(|(_, n)| n).sum();
            out.push_str(&format!("\ndataflow audit ({total} findings):"));
            for (code, n) in df {
                out.push_str(&format!("\n  {code}  x{n}"));
            }
        }
        if let Some(p) = self.predicted {
            out.push_str(&format!(
                "\ntraffic oracle: {} cells staged, {} writes, {} rotations predicted",
                p.cells_staged, p.global_writes, p.pipeline_rotations,
            ));
            match self.oracle_match() {
                Some(true) => out.push_str(" — matches the replay exactly"),
                Some(false) => out.push_str(" — DISAGREES with the replay"),
                None => {}
            }
        }
        if let Some(v) = self.kernel_verify {
            out.push_str(&format!(
                "\nkernel verify: {} backend(s) proven, {}",
                v.backends,
                if v.clean() {
                    "clean".to_string()
                } else {
                    format!("{} LNT-K error(s)", v.errors)
                },
            ));
        }
        if let Some(e) = self.exec {
            out.push_str(&format!(
                "\nwinner replay: {} blocks, {} cells staged ({} halo / {} corner), \
                 {} writes, {} barriers, {} rotations, {:.2}x redundancy",
                e.blocks,
                e.cells_staged,
                e.staged_cells_by_zone[1..5].iter().sum::<u64>(),
                e.staged_cells_by_zone[5],
                e.useful_writes(),
                e.barriers,
                e.pipeline_rotations,
                e.redundancy(),
            ));
        }
        out
    }

    /// Machine-readable JSON rendering of the report, including the
    /// winner-replay [`ExecStats`] when one was attached.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"evaluated\":{},\"best_mpoints\":{:.3},\"median_mpoints\":{:.3},\
             \"q1_mpoints\":{:.3},\"q3_mpoints\":{:.3},\"worst_feasible_mpoints\":{:.3},\
             \"tuning_gain_over_median\":{:.4},\"best_limited_by\":\"{:?}\"",
            self.evaluated,
            self.best,
            self.median,
            self.q1,
            self.q3,
            self.worst_feasible,
            self.tuning_gain_over_median,
            self.best_limited_by,
        );
        if let Some(c) = self.cache {
            s.push_str(&format!(
                ",\"cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{}}}",
                c.hits, c.misses, c.inserts
            ));
        }
        if let Some(st) = self.store {
            s.push_str(&format!(
                ",\"store\":{{\"hits\":{},\"misses\":{},\"corrupt\":{}}}",
                st.hits, st.misses, st.corrupt
            ));
        }
        if let Some(rej) = &self.rejections {
            let items: Vec<String> = rej
                .iter()
                .map(|(code, n)| format!("\"{code}\":{n}"))
                .collect();
            s.push_str(&format!(",\"rejections\":{{{}}}", items.join(",")));
        }
        if let Some(df) = &self.dataflow {
            let items: Vec<String> = df
                .iter()
                .map(|(code, n)| format!("\"{code}\":{n}"))
                .collect();
            s.push_str(&format!(",\"dataflow\":{{{}}}", items.join(",")));
        }
        if let Some(p) = self.predicted {
            s.push_str(&format!(
                ",\"predicted\":{{\"cells_staged\":{},\"global_writes\":{},\
                 \"barriers\":{},\"pipeline_rotations\":{},\"points_computed\":{}}}",
                p.cells_staged,
                p.global_writes,
                p.barriers,
                p.pipeline_rotations,
                p.points_computed,
            ));
            if let Some(matches) = self.oracle_match() {
                s.push_str(&format!(",\"oracle_match\":{matches}"));
            }
        }
        if let Some(v) = self.kernel_verify {
            s.push_str(&format!(
                ",\"kernel_verify\":{{\"backends\":{},\"errors\":{},\"clean\":{}}}",
                v.backends,
                v.errors,
                v.clean()
            ));
        }
        if let Some(e) = self.exec {
            let zones: Vec<String> = e.staged_cells_by_zone.iter().map(u64::to_string).collect();
            s.push_str(&format!(
                ",\"exec\":{{\"blocks\":{},\"planes_staged\":{},\"cells_staged\":{},\
                 \"staged_cells_by_zone\":[{}],\"global_writes\":{},\"barriers\":{},\
                 \"pipeline_rotations\":{},\"points_computed\":{},\
                 \"halo_planes_exchanged\":{},\"halo_cells_exchanged\":{},\
                 \"cells_copied_out\":{},\"redundancy\":{:.4}}}",
                e.blocks,
                e.planes_staged,
                e.cells_staged,
                zones.join(","),
                e.global_writes,
                e.barriers,
                e.pipeline_rotations,
                e.points_computed,
                e.halo_planes_exchanged,
                e.halo_cells_exchanged,
                e.cells_copied_out,
                e.redundancy(),
            ));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_tune, exhaustive_tune_with, ParameterSpace};
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn run() -> (DeviceSpec, KernelSpec, GridDims, TuneOutcome) {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = exhaustive_tune(&dev, &k, dims, &space, 1);
        (dev, k, dims, out)
    }

    #[test]
    fn quartiles_are_ordered() {
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        assert!(rep.worst_feasible <= rep.q1);
        assert!(rep.q1 <= rep.median);
        assert!(rep.median <= rep.q3);
        assert!(rep.q3 <= rep.best);
        assert!(rep.tuning_gain_over_median >= 1.0);
        assert!(rep.evaluated > 0);
    }

    #[test]
    fn nearest_rank_pins_known_five_element_quartiles() {
        // Truncating (len-1)·q floors q1 to index 0 and q3 to index 2;
        // nearest-rank must land on indices 1 / 2 / 3.
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(nearest_rank(&sorted, 0.0), 10.0);
        assert_eq!(nearest_rank(&sorted, 0.25), 20.0);
        assert_eq!(nearest_rank(&sorted, 0.5), 30.0);
        assert_eq!(nearest_rank(&sorted, 0.75), 40.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 50.0);
        // Four samples: q1 rounds (3·0.25 = 0.75) up to index 1.
        let four = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&four, 0.25), 2.0);
        assert_eq!(nearest_rank(&four, 0.75), 3.0);
        // Degenerate inputs stay total.
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
        assert_eq!(nearest_rank(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn tuning_buys_something_real() {
        // The paper's whole §IV-C point: the spread between a blind pick
        // and the tuned optimum is large.
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        assert!(
            rep.tuning_gain_over_median > 1.15,
            "tuning gain {:.2}",
            rep.tuning_gain_over_median
        );
    }

    #[test]
    fn render_contains_the_numbers() {
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        let s = rep.render();
        assert!(s.contains("best"));
        assert!(s.contains("quartiles"));
        assert!(!s.contains("eval cache"), "no counters without a context");
    }

    #[test]
    fn rejections_surface_in_render() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let (space, audit) = ParameterSpace::paper_space_audited(&dev, &k, &dims);
        let out = exhaustive_tune(&dev, &k, dims, &space, 1);
        let rep = summarize(&dev, &k, dims, &out).with_rejections(audit.rejections.clone());
        let s = rep.render();
        assert!(s.contains("space rejections"), "{s}");
        assert!(s.contains("LNT-R002"), "{s}");
        // Without an audit the section is absent.
        let plain = summarize(&dev, &k, dims, &out).render();
        assert!(!plain.contains("space rejections"));
    }

    #[test]
    fn exec_stats_surface_in_render_and_json() {
        let (dev, k, dims, out) = run();
        let stats = {
            use stencil_grid::{Boundary, FillPattern, Grid3, StarStencil};
            let s: StarStencil<f32> = StarStencil::from_order(4);
            let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 12);
            let mut o = Grid3::new(12, 12, 12);
            inplane_core::execute_step(
                Method::InPlane(Variant::FullSlice),
                &s,
                &inplane_core::LaunchConfig::new(4, 4, 1, 1),
                &input,
                &mut o,
                Boundary::CopyInput,
            )
        };
        let rep = summarize(&dev, &k, dims, &out).with_exec(stats);
        let rendered = rep.render();
        assert!(rendered.contains("winner replay:"), "{rendered}");
        assert!(rendered.contains("redundancy"), "{rendered}");
        let json = rep.to_json();
        for key in [
            "\"exec\":",
            "\"cells_staged\":",
            "\"staged_cells_by_zone\":",
            "\"barriers\":",
            "\"pipeline_rotations\":",
            "\"redundancy\":",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        // A plain single-step replay writes every point exactly once.
        assert!(json.contains("\"redundancy\":1.0000"), "{json}");
        // Without a replay the section is absent.
        let plain = summarize(&dev, &k, dims, &out);
        assert!(!plain.render().contains("winner replay"));
        assert!(!plain.to_json().contains("\"exec\""));
    }

    #[test]
    fn dataflow_and_oracle_surface_in_render_and_json() {
        let (dev, k, dims, out) = run();
        let plan = inplane_core::lower_step(
            Method::InPlane(Variant::FullSlice),
            &inplane_core::LaunchConfig::new(4, 4, 1, 1),
            2,
            (12, 12, 10),
        );
        let predicted = stencil_lint::predict_stats(&plan);
        let dynamic = {
            use stencil_grid::{FillPattern, Grid3, StarStencil};
            let s: StarStencil<f32> = StarStencil::diffusion(2);
            let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 10);
            let mut o = Grid3::new(12, 12, 10);
            inplane_core::interpret_plan(&plan, &s, &input, &mut o)
        };
        let hist = vec![("LNT-D103".to_string(), 4u64)];
        let rep = summarize(&dev, &k, dims, &out)
            .with_dataflow(hist)
            .with_traffic(predicted)
            .with_exec(dynamic);
        assert_eq!(rep.oracle_match(), Some(true));
        let rendered = rep.render();
        assert!(rendered.contains("dataflow audit"), "{rendered}");
        assert!(rendered.contains("LNT-D103"), "{rendered}");
        assert!(
            rendered.contains("matches the replay exactly"),
            "{rendered}"
        );
        let json = rep.to_json();
        for key in ["\"dataflow\":", "\"predicted\":", "\"oracle_match\":true"] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        // A doctored prediction is called out, not silently accepted.
        let mut wrong = predicted;
        wrong.cells_staged += 1;
        let drifted = summarize(&dev, &k, dims, &out)
            .with_traffic(wrong)
            .with_exec(dynamic);
        assert_eq!(drifted.oracle_match(), Some(false));
        assert!(
            drifted.render().contains("DISAGREES"),
            "{}",
            drifted.render()
        );
        assert!(drifted.to_json().contains("\"oracle_match\":false"));
        // Without attachments the sections are absent.
        let plain = summarize(&dev, &k, dims, &out);
        assert_eq!(plain.oracle_match(), None);
        assert!(!plain.render().contains("dataflow audit"));
        assert!(!plain.to_json().contains("\"predicted\""));
    }

    #[test]
    fn kernel_verify_surfaces_in_render_and_json() {
        let (dev, k, dims, out) = run();
        // The winner's emitted source is proven on both backends (the
        // full-slice routine has an OpenCL emitter) with zero findings.
        let v = KernelVerifySummary::for_config(&k, &out.best.config);
        assert_eq!(v.backends, 2);
        assert!(v.clean(), "{v:?}");
        let rep = summarize(&dev, &k, dims, &out).with_kernel_verify(v);
        let rendered = rep.render();
        assert!(
            rendered.contains("kernel verify: 2 backend(s) proven, clean"),
            "{rendered}"
        );
        let json = rep.to_json();
        assert!(
            json.contains("\"kernel_verify\":{\"backends\":2,\"errors\":0,\"clean\":true}"),
            "{json}"
        );
        // A dirty verdict is rendered as an error count, and without an
        // attachment the section is absent.
        let dirty = summarize(&dev, &k, dims, &out).with_kernel_verify(KernelVerifySummary {
            backends: 1,
            errors: 3,
        });
        assert!(
            dirty.render().contains("3 LNT-K error(s)"),
            "{}",
            dirty.render()
        );
        let plain = summarize(&dev, &k, dims, &out);
        assert!(!plain.render().contains("kernel verify"));
        assert!(!plain.to_json().contains("\"kernel_verify\""));
    }

    #[test]
    fn counters_surface_in_render() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let ctx = EvalContext::new();
        let out = exhaustive_tune_with(&ctx, &dev, &k, dims, &space, 1);
        let rep = summarize_with(&ctx, &dev, &k, dims, &out).with_store(StoreCounters {
            hits: 1,
            misses: 2,
            corrupt: 0,
        });
        let cache = rep.cache.expect("cache counters captured");
        assert_eq!(cache.misses as usize, space.len());
        let s = rep.render();
        assert!(s.contains("eval cache:"));
        assert!(s.contains("tune store: 1 hits / 2 misses"));
    }
}
