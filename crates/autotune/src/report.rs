//! Human-readable tuning reports: what the paper's performance surfaces
//! (Fig 8) summarise, as numbers — distribution statistics over the
//! search space, the top candidates, and what limits them.

use crate::exhaustive::TuneOutcome;
use gpu_sim::{DeviceSpec, GridDims, LimitingFactor, SimOptions};
use inplane_core::{simulate_kernel, KernelSpec};

/// Distribution summary of a tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneReport {
    /// Configurations measured.
    pub evaluated: usize,
    /// Best measured MPoint/s.
    pub best: f64,
    /// Median measured MPoint/s.
    pub median: f64,
    /// Lower-quartile MPoint/s.
    pub q1: f64,
    /// Upper-quartile MPoint/s.
    pub q3: f64,
    /// Worst feasible MPoint/s.
    pub worst_feasible: f64,
    /// Ratio best / median: how much auto-tuning buys over a blind pick.
    pub tuning_gain_over_median: f64,
    /// The limiting factor of the winning configuration.
    pub best_limited_by: LimitingFactor,
}

/// Summarise a completed tuning run (re-pricing the winner for its
/// limiting factor).
pub fn summarize(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    outcome: &TuneOutcome,
) -> TuneReport {
    let mut feasible: Vec<f64> = outcome
        .samples
        .iter()
        .map(|s| s.mpoints)
        .filter(|&m| m > 0.0)
        .collect();
    feasible.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        if feasible.is_empty() {
            0.0
        } else {
            feasible[((feasible.len() - 1) as f64 * q) as usize]
        }
    };
    let best = outcome.best.mpoints;
    let median = pick(0.5);
    let rep = simulate_kernel(
        device,
        kernel,
        &outcome.best.config,
        dims,
        &SimOptions::default(),
    );
    TuneReport {
        evaluated: outcome.evaluated(),
        best,
        median,
        q1: pick(0.25),
        q3: pick(0.75),
        worst_feasible: pick(0.0),
        tuning_gain_over_median: if median > 0.0 { best / median } else { 0.0 },
        best_limited_by: rep.limiting,
    }
}

impl TuneReport {
    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "evaluated {} configurations\n\
             best {:.0} MPoint/s (limited by {:?})\n\
             quartiles: {:.0} / {:.0} / {:.0} MPoint/s; worst feasible {:.0}\n\
             tuning gain over the median configuration: {:.2}x",
            self.evaluated,
            self.best,
            self.best_limited_by,
            self.q1,
            self.median,
            self.q3,
            self.worst_feasible,
            self.tuning_gain_over_median,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive_tune, ParameterSpace};
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn run() -> (DeviceSpec, KernelSpec, GridDims, TuneOutcome) {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        let out = exhaustive_tune(&dev, &k, dims, &space, 1);
        (dev, k, dims, out)
    }

    #[test]
    fn quartiles_are_ordered() {
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        assert!(rep.worst_feasible <= rep.q1);
        assert!(rep.q1 <= rep.median);
        assert!(rep.median <= rep.q3);
        assert!(rep.q3 <= rep.best);
        assert!(rep.tuning_gain_over_median >= 1.0);
        assert!(rep.evaluated > 0);
    }

    #[test]
    fn tuning_buys_something_real() {
        // The paper's whole §IV-C point: the spread between a blind pick
        // and the tuned optimum is large.
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        assert!(
            rep.tuning_gain_over_median > 1.15,
            "tuning gain {:.2}",
            rep.tuning_gain_over_median
        );
    }

    #[test]
    fn render_contains_the_numbers() {
        let (dev, k, dims, out) = run();
        let rep = summarize(&dev, &k, dims, &out);
        let s = rep.render();
        assert!(s.contains("best"));
        assert!(s.contains("quartiles"));
    }
}
