#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-autotune
//!
//! Auto-tuning for the in-plane stencil method, reproducing §IV-C and
//! §VI of the paper:
//!
//! * [`space`] — the 4-dimensional `(TX, TY, RX, RY)` parameter space
//!   with the paper's four feasibility constraints;
//! * [`exhaustive`] — the exhaustive tuner: measure every configuration,
//!   return the best (what Table IV reports);
//! * [`model`] — the paper's analytic performance model, Eqns (6)–(14);
//! * [`model_based`] — model-based tuning: rank all configurations by
//!   the model, measure only the top β% (β = 5% in the paper), return
//!   the best measured (what Fig 12 evaluates);
//! * [`surface`] — performance surfaces over `(RX, RY)` (Fig 8).

pub mod exhaustive;
pub mod model;
pub mod model_based;
pub mod report;
pub mod selector;
pub mod space;
pub mod stochastic;
pub mod surface;

pub use exhaustive::{
    exhaustive_tune, exhaustive_tune_selected, exhaustive_tune_with, Provenance, TuneOutcome,
    TuneSample,
};
pub use model::predict_mpoints;
pub use model_based::{
    model_based_tune, model_based_tune_seeded_with, model_based_tune_selected,
    model_based_tune_with, ModelBasedOutcome,
};
pub use report::{summarize, summarize_with, KernelVerifySummary, StoreCounters, TuneReport};
pub use selector::{RoutineChoice, RoutineRank, RoutineSelector, RoutineStrategy};
pub use space::{ParameterSpace, SpaceAudit};
pub use stochastic::{
    stochastic_tune, stochastic_tune_selected, stochastic_tune_with, AnnealOptions,
    StochasticOutcome,
};
pub use surface::{performance_surface, performance_surface_with, SurfacePoint};
