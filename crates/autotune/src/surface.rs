//! Performance surfaces over the register-blocking plane (Fig 8).
//!
//! The paper visualises the tuning landscape by fixing the optimal
//! `(TX, TY)` and plotting measured performance over `(RX, RY)`, with
//! constraint-violating points set to zero.

use crate::space::ParameterSpace;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig};

/// One point of a Fig 8 surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfacePoint {
    /// Register-block factor in x.
    pub rx: usize,
    /// Register-block factor in y.
    pub ry: usize,
    /// Measured MPoint/s; 0 where the configuration violates the search
    /// constraints (as the paper plots them).
    pub mpoints: f64,
}

/// Measure the `(RX, RY)` surface at fixed `(tx, ty)` over the factors
/// `{1, 2, 4, 8}` (the paper's Fig 8 axes).
pub fn performance_surface(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    tx: usize,
    ty: usize,
    seed: u64,
) -> Vec<SurfacePoint> {
    performance_surface_with(EvalContext::global(), device, kernel, dims, tx, ty, seed)
}

/// [`performance_surface`] against an explicit evaluation context, for
/// callers that manage cache scope themselves.
pub fn performance_surface_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    tx: usize,
    ty: usize,
    seed: u64,
) -> Vec<SurfacePoint> {
    let mut out = Vec::with_capacity(16);
    for rx in [1usize, 2, 4, 8] {
        for ry in [1usize, 2, 4, 8] {
            let c = LaunchConfig::new(tx, ty, rx, ry);
            let mpoints = if ParameterSpace::feasible(device, kernel, &dims, &c) {
                ctx.measure(device, kernel, &c, dims, seed).mpoints_per_s()
            } else {
                0.0
            };
            out.push(SurfacePoint { rx, ry, mpoints });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    #[test]
    fn surface_has_16_points_with_zeroed_infeasibles() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
        let surf = performance_surface(&dev, &k, GridDims::paper(), 256, 1, 1);
        assert_eq!(surf.len(), 16);
        // (256,1,8,8) tiles 2048 in x > 512: must be zero.
        let p = surf.iter().find(|p| p.rx == 8 && p.ry == 8).unwrap();
        assert_eq!(p.mpoints, 0.0);
        // (1,1) must be feasible and positive.
        let p11 = surf.iter().find(|p| p.rx == 1 && p.ry == 1).unwrap();
        assert!(p11.mpoints > 0.0);
    }

    #[test]
    fn fig8_peak_region_for_order2_is_at_high_ry() {
        // Fig 8a: on GTX580 at (TX, TY) = (256, 1), the order-2 surface
        // peaks at RY = 8 (the paper's optimum (256, 1, 1, 8)).
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
        let surf = performance_surface(&dev, &k, GridDims::paper(), 256, 1, 1);
        let best = surf
            .iter()
            .max_by(|a, b| a.mpoints.total_cmp(&b.mpoints))
            .unwrap();
        assert!(best.ry >= 4, "peak at (rx={}, ry={})", best.rx, best.ry);
        // With TX = 256, RX beyond 2 cannot tile the 512-wide plane.
        assert!(best.rx <= 2, "peak at (rx={}, ry={})", best.rx, best.ry);
    }
}
