//! Stochastic search tuning — the §II alternative to exhaustive search
//! for large parameter spaces ("for a larger search space, methods like
//! dynamic programming or stochastic search can be used \[17\]").
//!
//! A simulated-annealing walk over the constrained `(TX, TY, RX, RY)`
//! lattice: neighbours differ in one factor by one step (half-warp for
//! `TX`, ±1 for `TY`, ×/÷2 for the register factors). The walk accepts
//! uphill moves always and downhill moves with a temperature-scheduled
//! probability, restarting from the best-so-far when it stalls. Fully
//! deterministic for a given seed.

use crate::exhaustive::TuneSample;
use crate::selector::{RoutineChoice, RoutineSelector};
use crate::space::ParameterSpace;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, RoutineDiag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the annealing schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealOptions {
    /// Total configurations to execute (the budget — comparable to the
    /// model-based tuner's `N`).
    pub evaluations: usize,
    /// Initial acceptance temperature as a fraction of the current
    /// performance (0.05 = accept ~5% regressions early on).
    pub initial_temperature: f64,
    /// Restart from the incumbent after this many non-improving moves.
    pub stall_limit: usize,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            evaluations: 60,
            initial_temperature: 0.08,
            stall_limit: 12,
        }
    }
}

/// Result of a stochastic tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct StochasticOutcome {
    /// Best configuration found.
    pub best: TuneSample,
    /// Configurations actually executed (≤ the budget; repeats are
    /// cached, not re-measured).
    pub executed: usize,
    /// The accepted-walk trace `(config, measured)` in order.
    pub trace: Vec<TuneSample>,
}

impl StochasticOutcome {
    /// Repackage as a [`crate::TuneOutcome`] over the walk trace.
    pub fn into_outcome(self) -> crate::TuneOutcome {
        crate::TuneOutcome {
            best: self.best,
            samples: self.trace,
            provenance: crate::Provenance::Computed,
        }
    }
}

/// One-factor neighbours of `c` within the feasible space.
fn neighbours(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    c: &LaunchConfig,
) -> Vec<LaunchConfig> {
    let half_warp = device.half_wavefront();
    let mut out = Vec::new();
    let mut push = |tx: usize, ty: usize, rx: usize, ry: usize| {
        if tx >= half_warp && ty >= 1 && rx >= 1 && ry >= 1 {
            let cand = LaunchConfig::new(tx, ty, rx, ry);
            if ParameterSpace::feasible(device, kernel, dims, &cand) {
                out.push(cand);
            }
        }
    };
    push(c.tx + half_warp, c.ty, c.rx, c.ry);
    push(c.tx.saturating_sub(half_warp), c.ty, c.rx, c.ry);
    push(c.tx, c.ty + 1, c.rx, c.ry);
    push(c.tx, c.ty.saturating_sub(1), c.rx, c.ry);
    push(c.tx, c.ty * 2, c.rx, c.ry);
    push(c.tx, c.ty / 2, c.rx, c.ry);
    push(c.tx, c.ty, c.rx * 2, c.ry);
    push(c.tx, c.ty, c.rx / 2, c.ry);
    push(c.tx, c.ty, c.rx, c.ry * 2);
    push(c.tx, c.ty, c.rx, c.ry / 2);
    out
}

/// Run simulated annealing over the feasible space.
///
/// # Panics
/// Panics if the space is empty.
pub fn stochastic_tune(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    opts: &AnnealOptions,
    seed: u64,
) -> StochasticOutcome {
    stochastic_tune_with(
        EvalContext::global(),
        device,
        kernel,
        dims,
        space,
        opts,
        seed,
    )
}

/// Run the [`RoutineSelector`] first, then anneal over the chosen
/// routine's kernel respec. Errors are the selector's coded rejection.
///
/// # Panics
/// Panics if the space is empty.
#[allow(clippy::too_many_arguments)]
pub fn stochastic_tune_selected(
    ctx: &EvalContext,
    selector: &RoutineSelector,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    opts: &AnnealOptions,
    seed: u64,
) -> Result<(RoutineChoice, StochasticOutcome), RoutineDiag> {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    let probe = space.configs()[0];
    let (choice, kernel) = selector.select_kernel(device, kernel, &dims, &probe)?;
    let outcome = stochastic_tune_with(ctx, device, &kernel, dims, space, opts, seed);
    Ok((choice, outcome))
}

/// [`stochastic_tune`] against an explicit evaluation context, for
/// callers that manage cache scope themselves.
///
/// # Panics
/// Panics if the space is empty.
#[allow(clippy::too_many_arguments)]
pub fn stochastic_tune_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    space: &ParameterSpace,
    opts: &AnnealOptions,
    seed: u64,
) -> StochasticOutcome {
    assert!(
        !space.is_empty(),
        "cannot tune over an empty parameter space"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5717_c0de);
    // The walk's own memo tracks which configurations *this run*
    // executed (the budget accounting) — the shared context may already
    // hold the clean price, but an `executed` unit of budget is charged
    // the first time the walk sees a configuration regardless.
    let mut cache: std::collections::HashMap<LaunchConfig, f64> = std::collections::HashMap::new();
    let mut executed = 0usize;
    let mut measure = |c: &LaunchConfig, executed: &mut usize| -> f64 {
        *cache.entry(*c).or_insert_with(|| {
            *executed += 1;
            ctx.measure(device, kernel, c, dims, seed).mpoints_per_s()
        })
    };

    // Start from the middle of the enumerated space (deterministic).
    let mut current = space.configs()[space.len() / 2];
    let mut current_perf = measure(&current, &mut executed);
    let mut best = TuneSample {
        config: current,
        mpoints: current_perf,
    };
    let mut trace = vec![best];
    let mut stall = 0usize;

    // The cache makes revisits free; bound total iterations so a walk
    // cycling among already-measured configurations still terminates.
    let mut iterations = 0usize;
    while executed < opts.evaluations && iterations < opts.evaluations * 20 {
        iterations += 1;
        let temp =
            opts.initial_temperature * (1.0 - executed as f64 / opts.evaluations as f64).max(0.0);
        let nbrs = neighbours(device, kernel, &dims, &current);
        if nbrs.is_empty() {
            break;
        }
        let cand = nbrs[rng.gen_range(0..nbrs.len())];
        let perf = measure(&cand, &mut executed);
        let accept = perf >= current_perf || {
            let drop = (current_perf - perf) / current_perf.max(1.0);
            rng.gen_bool((-drop / temp.max(1e-6)).exp().clamp(0.0, 1.0))
        };
        if accept {
            current = cand;
            current_perf = perf;
            trace.push(TuneSample {
                config: current,
                mpoints: current_perf,
            });
        }
        if perf > best.mpoints {
            best = TuneSample {
                config: cand,
                mpoints: perf,
            };
            stall = 0;
        } else {
            stall += 1;
            if stall >= opts.stall_limit {
                current = best.config;
                current_perf = best.mpoints;
                stall = 0;
            }
        }
    }
    StochasticOutcome {
        best,
        executed,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_tune;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn setup() -> (DeviceSpec, KernelSpec, GridDims, ParameterSpace) {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::new(256, 256, 32);
        let space = ParameterSpace::quick_space(&dev, &k, &dims);
        (dev, k, dims, space)
    }

    #[test]
    fn annealing_is_deterministic() {
        let (dev, k, dims, space) = setup();
        let a = stochastic_tune(&dev, &k, dims, &space, &AnnealOptions::default(), 3);
        let b = stochastic_tune(&dev, &k, dims, &space, &AnnealOptions::default(), 3);
        assert_eq!(a.best, b.best);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn annealing_respects_the_budget() {
        let (dev, k, dims, space) = setup();
        let opts = AnnealOptions {
            evaluations: 25,
            ..AnnealOptions::default()
        };
        let out = stochastic_tune(&dev, &k, dims, &space, &opts, 1);
        assert!(out.executed <= 25);
        assert!(out.best.mpoints > 0.0);
    }

    #[test]
    fn annealing_gets_close_to_exhaustive_with_a_fraction_of_the_work() {
        let (dev, k, dims, space) = setup();
        let ex = exhaustive_tune(&dev, &k, dims, &space, 1);
        let mut best_ratio = 0.0f64;
        for seed in 0..4 {
            let out = stochastic_tune(&dev, &k, dims, &space, &AnnealOptions::default(), seed);
            best_ratio = best_ratio.max(out.best.mpoints / ex.best.mpoints);
        }
        assert!(
            best_ratio > 0.9,
            "annealing reached only {best_ratio:.2} of the exhaustive optimum"
        );
    }

    #[test]
    fn walk_stays_feasible() {
        let (dev, k, dims, space) = setup();
        let out = stochastic_tune(&dev, &k, dims, &space, &AnnealOptions::default(), 7);
        for s in &out.trace {
            assert!(
                ParameterSpace::feasible(&dev, &k, &dims, &s.config),
                "{} infeasible",
                s.config
            );
        }
    }

    #[test]
    fn neighbours_are_one_step_away() {
        let (dev, k, dims, _) = setup();
        let c = LaunchConfig::new(64, 4, 1, 2);
        for n in neighbours(&dev, &k, &dims, &c) {
            let diffs = [n.tx != c.tx, n.ty != c.ty, n.rx != c.rx, n.ry != c.ry]
                .iter()
                .filter(|&&d| d)
                .count();
            assert_eq!(diffs, 1, "{n} differs from {c} in {diffs} factors");
        }
    }
}
