//! Property-based tests for code generation: any feasible configuration
//! must produce structurally sound source for both backends.

use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use proptest::prelude::*;
use stencil_codegen::cwriter::count_occurrences;
use stencil_codegen::{generate_host_harness, generate_kernel, generate_opencl_kernel};
use stencil_grid::Precision;

fn arb_method() -> impl Strategy<Value = Method> {
    prop::sample::select(vec![
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CUDA generation never emits unbalanced or empty source and always
    /// carries the configuration's defines.
    #[test]
    fn cuda_generation_is_structurally_sound(
        method in arb_method(),
        order in prop::sample::select(vec![2usize, 4, 6, 8, 10, 12]),
        tx_halfwarps in 1usize..9,
        ty in 1usize..9,
        rx in prop::sample::select(vec![1usize, 2, 4]),
        ry in prop::sample::select(vec![1usize, 2, 4]),
        prec in prop::sample::select(vec![Precision::Single, Precision::Double]),
    ) {
        let config = LaunchConfig::new(tx_halfwarps * 16, ty, rx, ry);
        let spec = KernelSpec::star_order(method, order, prec);
        let k = generate_kernel(&spec, &config);
        prop_assert_eq!(count_occurrences(&k.source, "{"), count_occurrences(&k.source, "}"));
        prop_assert_eq!(count_occurrences(&k.source, "("), count_occurrences(&k.source, ")"));
        prop_assert!(k.source.len() > 500);
        let def_r = format!("#define R {}", order / 2);
        prop_assert!(k.source.contains(&def_r));
        let def_tx = format!("#define TX {}", config.tx);
        prop_assert!(k.source.contains(&def_tx));
        prop_assert!(k.smem_bytes > 0);
        // Every emitted kernel computes and writes output.
        prop_assert!(k.source.contains("out[(size_t)"));
        prop_assert!(k.source.contains("c_coeff[0]"));
    }

    /// OpenCL generation mirrors the CUDA structure for the supported
    /// methods.
    #[test]
    fn opencl_generation_is_structurally_sound(
        forward in any::<bool>(),
        order in prop::sample::select(vec![2usize, 6, 12]),
        tx_halfwarps in 1usize..5,
        ty in 1usize..5,
        prec in prop::sample::select(vec![Precision::Single, Precision::Double]),
    ) {
        let method = if forward { Method::ForwardPlane } else { Method::InPlane(Variant::FullSlice) };
        let config = LaunchConfig::new(tx_halfwarps * 16, ty, 1, 1);
        let spec = KernelSpec::star_order(method, order, prec);
        let src = generate_opencl_kernel(&spec, &config);
        prop_assert_eq!(count_occurrences(&src, "{"), count_occurrences(&src, "}"));
        prop_assert!(src.contains("__kernel"));
        prop_assert!(count_occurrences(&src, "barrier(CLK_LOCAL_MEM_FENCE);") >= 2);
    }

    /// The host harness always matches its kernel name and grid shape.
    #[test]
    fn host_harness_is_consistent(
        method in arb_method(),
        lx_tiles in 1usize..9,
        ly_tiles in 1usize..9,
        steps in 1usize..500,
    ) {
        let config = LaunchConfig::new(32, 4, 1, 2);
        let spec = KernelSpec::star_order(method, 4, Precision::Single);
        let (lx, ly) = (lx_tiles * config.tile_x(), ly_tiles * config.tile_y());
        let src = generate_host_harness(&spec, &config, lx, ly, 64, steps);
        prop_assert_eq!(count_occurrences(&src, "{"), count_occurrences(&src, "}"));
        let def_steps = format!("#define STEPS {steps}");
        prop_assert!(src.contains(&def_steps));
        let grid_line = format!("dim3 grid({lx_tiles}, {ly_tiles});");
        prop_assert!(src.contains(&grid_line));
        prop_assert!(src.contains(stencil_codegen::kernel_name(method)));
    }
}
