#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-codegen
//!
//! CUDA C source generation for the stencil methods of the paper — the
//! bridge from this reproduction back to real hardware. The paper's
//! artifact is a set of hand-written CUDA kernels plus an auto-tuner;
//! Patus-style systems \[17\] showed the same methods as generated code.
//! This crate emits compilable CUDA C for:
//!
//! * the **forward-plane** (*nvstencil*-style) kernel,
//! * the **in-plane** kernels in all four loading variants,
//!
//! each specialised to a `(TX, TY, RX, RY)` launch configuration,
//! stencil radius and precision — the same parameters the auto-tuner
//! selects — plus a host-side harness (padded allocation, constant
//! coefficient upload, double-buffered Jacobi loop, timing).
//!
//! The generated source follows the exact structure of the emulated
//! kernels in `inplane-core::exec`, so the structural invariants the
//! emulator enforces (staging before reading, pipeline depths `2r+1`
//! forward / `2r` in-plane, two barriers per plane) hold in the emitted
//! code by construction; tests assert them on the output text.

pub mod cwriter;
pub mod host;
pub mod kernel;
pub mod opencl;

pub use cwriter::{CWriter, SourceAnchor};
pub use host::{generate_host_harness, generate_host_harness_on};
pub use kernel::{generate_kernel, kernel_name, GeneratedKernel};
pub use opencl::{
    generate_opencl_kernel, generate_opencl_kernel_full, opencl_kernel_name, OpenClKernel,
};
