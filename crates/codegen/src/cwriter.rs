//! A small indentation- and brace-tracking C source writer.
//!
//! Keeping emission structured (blocks open and close through the
//! writer, never through raw strings) makes "the generated source is
//! well-formed" a checkable invariant instead of a hope.

/// A labelled position in generated source: the emission phase that
/// begins at (1-based) `line`. Verifier diagnostics map a source
/// position back to the innermost anchor at or above it, so a finding
/// names the emitter phase ("stage top halo") and not just a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceAnchor {
    /// Emitter-phase label.
    pub label: &'static str,
    /// 1-based source line the phase starts on.
    pub line: usize,
}

/// Indented C source builder with brace accounting.
#[derive(Debug, Default)]
pub struct CWriter {
    out: String,
    indent: usize,
    open_braces: usize,
    lines: usize,
    anchors: Vec<SourceAnchor>,
}

impl CWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit one line at the current indent. The line must not contain
    /// `{` or `}` — use [`CWriter::open`] / [`CWriter::close`] for those
    /// so brace accounting stays exact.
    pub fn line(&mut self, s: &str) -> &mut Self {
        assert!(
            !s.contains('{') && !s.contains('}'),
            "braces must go through open()/close(): {s:?}"
        );
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
        self.lines += 1;
        self
    }

    /// Emit a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.out.push('\n');
        self.lines += 1;
        self
    }

    /// Emit a raw preprocessor or comment line at column zero.
    pub fn raw(&mut self, s: &str) -> &mut Self {
        self.out.push_str(s);
        self.out.push('\n');
        self.lines += 1;
        self
    }

    /// Open a block: emits `header {` and indents.
    pub fn open(&mut self, header: &str) -> &mut Self {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(header);
        if !header.is_empty() {
            self.out.push(' ');
        }
        self.out.push_str("{\n");
        self.indent += 1;
        self.open_braces += 1;
        self.lines += 1;
        self
    }

    /// Close the innermost block; `suffix` is appended after the brace
    /// (e.g. `";"` for struct/initialiser blocks).
    pub fn close(&mut self, suffix: &str) -> &mut Self {
        assert!(self.open_braces > 0, "close() without matching open()");
        self.indent -= 1;
        self.open_braces -= 1;
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push('}');
        self.out.push_str(suffix);
        self.out.push('\n');
        self.lines += 1;
        self
    }

    /// The 1-based line number the next emission lands on.
    pub fn line_no(&self) -> usize {
        self.lines + 1
    }

    /// Record a [`SourceAnchor`] labelling the phase that starts at the
    /// next emitted line.
    pub fn anchor(&mut self, label: &'static str) -> &mut Self {
        let line = self.line_no();
        self.anchors.push(SourceAnchor { label, line });
        self
    }

    /// The anchors recorded so far.
    pub fn take_anchors(&mut self) -> Vec<SourceAnchor> {
        std::mem::take(&mut self.anchors)
    }

    /// Number of currently open blocks.
    pub fn depth(&self) -> usize {
        self.open_braces
    }

    /// Finish: panics if any block is still open, returns the source.
    pub fn finish(self) -> String {
        assert_eq!(self.open_braces, 0, "unclosed block in generated source");
        self.out
    }

    /// Finish, returning the source and the recorded anchors.
    pub fn finish_with_anchors(mut self) -> (String, Vec<SourceAnchor>) {
        let anchors = self.take_anchors();
        (self.finish(), anchors)
    }
}

/// Count occurrences of a pattern in generated source (test helper).
pub fn count_occurrences(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_indented_blocks() {
        let mut w = CWriter::new();
        w.open("void f(void)");
        w.line("int x = 1;");
        w.open("if (x)");
        w.line("x = 2;");
        w.close("");
        w.close("");
        let s = w.finish();
        assert_eq!(
            s,
            "void f(void) {\n    int x = 1;\n    if (x) {\n        x = 2;\n    }\n}\n"
        );
    }

    #[test]
    fn brace_counts_balance() {
        let mut w = CWriter::new();
        w.open("a");
        assert_eq!(w.depth(), 1);
        w.open("b");
        assert_eq!(w.depth(), 2);
        w.close("");
        w.close(";");
        assert_eq!(w.depth(), 0);
        let s = w.finish();
        assert_eq!(count_occurrences(&s, "{"), count_occurrences(&s, "}"));
    }

    #[test]
    #[should_panic(expected = "unclosed block")]
    fn unbalanced_finish_panics() {
        let mut w = CWriter::new();
        w.open("void f(void)");
        w.finish();
    }

    #[test]
    #[should_panic(expected = "braces must go through")]
    fn braces_in_line_rejected() {
        let mut w = CWriter::new();
        w.line("if (x) { }");
    }

    #[test]
    #[should_panic(expected = "without matching open")]
    fn close_without_open_panics() {
        let mut w = CWriter::new();
        w.close("");
    }

    #[test]
    fn anchors_record_one_based_start_lines() {
        let mut w = CWriter::new();
        w.anchor("prologue");
        w.raw("#define R 2");
        w.open("void f(void)");
        w.anchor("body");
        w.line("int x = 1;");
        w.close("");
        let (src, anchors) = w.finish_with_anchors();
        assert_eq!(
            anchors,
            vec![
                SourceAnchor {
                    label: "prologue",
                    line: 1
                },
                SourceAnchor {
                    label: "body",
                    line: 3
                },
            ]
        );
        assert_eq!(src.lines().nth(2).unwrap().trim(), "int x = 1;");
    }

    #[test]
    fn raw_lines_bypass_indent() {
        let mut w = CWriter::new();
        w.open("void f(void)");
        w.raw("#pragma unroll");
        w.close("");
        assert!(w.finish().contains("\n#pragma unroll\n"));
    }
}
