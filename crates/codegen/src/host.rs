//! Host-side harness generation: padded allocation, coefficient upload,
//! the Fig-1 double-buffered Jacobi loop with pointer swap, and event
//! timing — everything needed to benchmark a generated kernel on a real
//! card the way the paper's harness does.

use crate::cwriter::CWriter;
use crate::kernel::kernel_name;
use gpu_sim::LEGACY_COALESCE_SEGMENT_BYTES;
use inplane_core::{KernelSpec, LaunchConfig};
use stencil_grid::Precision;

/// Generate a standalone `main.cu` that allocates a `lx × ly × lz` grid,
/// runs `steps` Jacobi iterations of the kernel and reports MPoint/s,
/// with rows padded to the legacy 128-byte coalescing granule.
pub fn generate_host_harness(
    spec: &KernelSpec,
    config: &LaunchConfig,
    lx: usize,
    ly: usize,
    lz: usize,
    steps: usize,
) -> String {
    generate_host_harness_for(
        spec,
        config,
        lx,
        ly,
        lz,
        steps,
        LEGACY_COALESCE_SEGMENT_BYTES,
    )
}

/// [`generate_host_harness`] with the row padding granule taken from a
/// device's `coalesce_segment_bytes` — 64 bytes on GCN-class wave64
/// parts, where padding to 128 would waste half the fringe segment.
pub fn generate_host_harness_on(
    spec: &KernelSpec,
    config: &LaunchConfig,
    lx: usize,
    ly: usize,
    lz: usize,
    steps: usize,
    device: &gpu_sim::DeviceSpec,
) -> String {
    generate_host_harness_for(
        spec,
        config,
        lx,
        ly,
        lz,
        steps,
        device.coalesce_segment_bytes,
    )
}

/// The generic harness generator, parameterized on the coalescing
/// segment the allocation pads rows to.
#[allow(clippy::too_many_arguments)]
fn generate_host_harness_for(
    spec: &KernelSpec,
    config: &LaunchConfig,
    lx: usize,
    ly: usize,
    lz: usize,
    steps: usize,
    seg: u64,
) -> String {
    let t = match spec.precision() {
        Precision::Single => "float",
        Precision::Double => "double",
    };
    let name = kernel_name(spec.method);
    let (gx, gy) = (lx.div_ceil(config.tile_x()), ly.div_ceil(config.tile_y()));

    let mut w = CWriter::new();
    w.raw("// Auto-generated host harness (stencil-codegen).");
    w.raw("#include <cstdio>");
    w.raw("#include <cstdlib>");
    w.raw("#include <cuda_runtime.h>");
    w.raw("#include \"kernel.cu\"");
    w.blank();
    w.raw(&format!("#define LX {lx}"));
    w.raw(&format!("#define LY {ly}"));
    w.raw(&format!("#define LZ {lz}"));
    w.raw(&format!("#define STEPS {steps}"));
    w.raw(&format!(
        "// Row stride padded to a {seg}-byte boundary so tile rows align"
    ));
    w.raw("// (the array-padding optimisation the in-plane kernels assume).");
    w.raw(&format!(
        "#define STRIDE ((((LX + 2 * R) * {sz} + {m}) / {seg}) * ({seg} / {sz}))",
        sz = spec.elem_bytes,
        m = seg - 1
    ));
    w.raw("#define PSTRIDE (STRIDE * (LY + 2 * R))");
    w.blank();
    w.open("static void check(cudaError_t e, const char* what)");
    w.open("if (e != cudaSuccess)");
    w.line("fprintf(stderr, \"%s: %s\\n\", what, cudaGetErrorString(e));");
    w.line("exit(1);");
    w.close("");
    w.close("");
    w.blank();
    w.open("int main(void)");
    w.line("const size_t elems = (size_t)PSTRIDE * (LZ + 2 * R);");
    w.line(&format!("{t} *d_in = nullptr, *d_out = nullptr;"));
    w.line(&format!(
        "check(cudaMalloc(&d_in, elems * sizeof({t})), \"malloc in\");"
    ));
    w.line(&format!(
        "check(cudaMalloc(&d_out, elems * sizeof({t})), \"malloc out\");"
    ));
    w.line(&format!(
        "check(cudaMemset(d_in, 0, elems * sizeof({t})), \"memset\");"
    ));
    w.line(&format!(
        "check(cudaMemset(d_out, 0, elems * sizeof({t})), \"memset\");"
    ));
    w.blank();
    w.line("// Diffusion coefficients: centre 1/2, the rest split over 6R points.");
    w.line(&format!("{t} h_coeff[R + 1];"));
    w.line(&format!("h_coeff[0] = ({t})0.5;"));
    w.open("for (int m = 1; m <= R; ++m)");
    w.line(&format!("h_coeff[m] = ({t})(0.5 / (6.0 * R));"));
    w.close("");
    w.line("check(cudaMemcpyToSymbol(c_coeff, h_coeff, sizeof(h_coeff)), \"coeff\");");
    w.blank();
    w.line("const dim3 block(TX, TY);");
    w.line(&format!("const dim3 grid({gx}, {gy});"));
    w.line("cudaEvent_t t0, t1;");
    w.line("check(cudaEventCreate(&t0), \"event\");");
    w.line("check(cudaEventCreate(&t1), \"event\");");
    w.line("check(cudaEventRecord(t0), \"record\");");
    w.open("for (int s = 0; s < STEPS; ++s)");
    w.line(&format!(
        "{name}<<<grid, block>>>(d_in, d_out, LX + 2 * R, LY + 2 * R, LZ + 2 * R, STRIDE, PSTRIDE);"
    ));
    w.line("// Fig-1 pointer swap: the output becomes the next input.");
    w.line(&format!("{t}* tmp = d_in; d_in = d_out; d_out = tmp;"));
    w.close("");
    w.line("check(cudaEventRecord(t1), \"record\");");
    w.line("check(cudaEventSynchronize(t1), \"sync\");");
    w.line("float ms = 0.f;");
    w.line("check(cudaEventElapsedTime(&ms, t0, t1), \"elapsed\");");
    w.line("const double points = (double)LX * LY * LZ * STEPS;");
    w.line("printf(\"%.1f MPoint/s (%.3f ms total)\\n\", points / ms / 1e3, ms);");
    w.line("cudaFree(d_in);");
    w.line("cudaFree(d_out);");
    w.line("return 0;");
    w.close("");
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cwriter::count_occurrences;
    use inplane_core::{Method, Variant};

    fn harness() -> String {
        let spec =
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        generate_host_harness(&spec, &LaunchConfig::new(32, 4, 1, 4), 512, 512, 256, 100)
    }

    #[test]
    fn harness_is_balanced_and_complete() {
        let s = harness();
        assert_eq!(count_occurrences(&s, "{"), count_occurrences(&s, "}"));
        assert!(s.contains("int main(void)"));
        assert!(s.contains("cudaMalloc"));
        assert!(s.contains("cudaMemcpyToSymbol"));
        assert!(s.contains("stencil_inplane_fullslice<<<grid, block>>>"));
    }

    #[test]
    fn harness_swaps_buffers_and_times() {
        let s = harness();
        assert!(s.contains("d_in = d_out"));
        assert!(s.contains("cudaEventElapsedTime"));
        assert!(s.contains("#define STEPS 100"));
    }

    #[test]
    fn grid_dimensions_cover_the_plane() {
        let s = harness();
        // 512 / (32*1) = 16 blocks in x, 512 / (4*4) = 32 in y.
        assert!(s.contains("dim3 grid(16, 32);"));
    }

    #[test]
    fn legacy_harness_pads_to_128_bytes() {
        let s = harness();
        assert!(
            s.contains("#define STRIDE ((((LX + 2 * R) * 4 + 127) / 128) * (128 / 4))"),
            "{s}"
        );
    }

    #[test]
    fn wave64_harness_pads_to_the_device_granule() {
        let spec =
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dev = gpu_sim::DeviceSpec::hd7970();
        let s = generate_host_harness_on(
            &spec,
            &LaunchConfig::new(32, 4, 1, 4),
            512,
            512,
            256,
            100,
            &dev,
        );
        assert!(
            s.contains("#define STRIDE ((((LX + 2 * R) * 4 + 63) / 64) * (64 / 4))"),
            "{s}"
        );
        assert!(s.contains("// Row stride padded to a 64-byte boundary"));
    }

    #[test]
    fn dp_harness_uses_double() {
        let spec = KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Double);
        let s = generate_host_harness(&spec, &LaunchConfig::new(64, 4, 1, 1), 256, 256, 64, 10);
        assert!(s.contains("double *d_in"));
        assert!(s.contains("stencil_forward_plane<<<"));
    }
}
