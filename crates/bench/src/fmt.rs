//! Minimal ASCII table formatting for experiment output.

/// A simple left-padded ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; the cell count must match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                line.push_str(&" ".repeat(pad));
                line.push_str(&cells[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }

    /// Render as CSV (header + rows, fields quoted when they contain
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to `dir/name.csv` when `dir` is set (the
    /// `--csv <dir>` flag); silently does nothing otherwise. The write
    /// is atomic (staged to a temp file, then renamed), so a killed run
    /// never leaves a half-written experiment output behind.
    pub fn maybe_csv(&self, dir: &Option<String>, name: &str) {
        if let Some(dir) = dir {
            let path = format!("{dir}/{name}.csv");
            if let Err(e) = stencil_tunestore::atomic_write(&path, self.to_csv()) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(csv written to {path})");
            }
        }
    }
}

/// Format a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header", "x"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "2".into(), "333".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].contains("100"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
