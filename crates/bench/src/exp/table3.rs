//! Table III: GPU specifications, plus the §IV-A measured throughput
//! (the simulator's bandwidth micro-benchmark plays the measurement).

use crate::fmt::{f, Table};
use gpu_sim::{measure_achieved_bandwidth, DeviceSpec};

/// One row of the reproduced table.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Device name.
    pub name: String,
    /// Pin bandwidth, GB/s.
    pub peak_bw_gbs: f64,
    /// Peak SP throughput, GFlop/s.
    pub peak_sp_gflops: f64,
    /// Peak DP throughput, GFlop/s.
    pub peak_dp_gflops: f64,
    /// Micro-benchmark "measured" bandwidth, GB/s.
    pub measured_bw_gbs: f64,
    /// The paper's measured bandwidth, GB/s.
    pub paper_measured_bw_gbs: f64,
}

/// Compute every row.
pub fn compute() -> Vec<Row> {
    let paper_measured = [161.0, 150.0, 117.5];
    DeviceSpec::paper_devices()
        .into_iter()
        .zip(paper_measured)
        .map(|(d, paper)| Row {
            name: d.name.to_string(),
            peak_bw_gbs: d.peak_bandwidth / 1e9,
            peak_sp_gflops: d.peak_sp_flops() / 1e9,
            peak_dp_gflops: d.peak_dp_flops() / 1e9,
            measured_bw_gbs: measure_achieved_bandwidth(&d),
            paper_measured_bw_gbs: paper,
        })
        .collect()
}

/// Render the comparison table.
pub fn render() -> Table {
    let mut t = Table::new(&[
        "GPU",
        "Peak BW GB/s",
        "Peak SP GF/s",
        "Peak DP GF/s",
        "Measured BW (ours)",
        "(paper)",
    ]);
    for r in compute() {
        t.row(vec![
            r.name,
            f(r.peak_bw_gbs, 1),
            f(r.peak_sp_gflops, 0),
            f(r.peak_dp_gflops, 0),
            f(r.measured_bw_gbs, 1),
            f(r.paper_measured_bw_gbs, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_devices_measured_close_to_paper() {
        let rows = compute();
        assert_eq!(rows.len(), 3);
        for r in rows {
            let rel = (r.measured_bw_gbs - r.paper_measured_bw_gbs).abs() / r.paper_measured_bw_gbs;
            assert!(
                rel < 0.03,
                "{}: {:.1} vs paper {:.1}",
                r.name,
                r.measured_bw_gbs,
                r.paper_measured_bw_gbs
            );
        }
    }

    #[test]
    fn peak_flops_match_table3() {
        let rows = compute();
        assert!((rows[0].peak_sp_gflops - 1581.0).abs() < 2.0);
        assert!((rows[1].peak_sp_gflops - 3090.0).abs() < 2.0);
        assert!((rows[2].peak_dp_gflops - 515.0).abs() < 2.0);
    }
}
