//! Extension experiment: the in-plane method versus 3.5-D temporal
//! blocking (the Nguyen *et al.* baseline of §II / §V-B).
//!
//! Temporal blocking amortises grid traffic over `T` steps, so for
//! bandwidth-bound low-order stencils it can exceed the single-step DRAM
//! roofline that caps the in-plane method; its costs — `(1 + 2rT/W)²`
//! redundant compute, `T+1` staged planes of shared memory, a `T`-deep
//! dependency chain — grow with `T` and with the stencil radius, so the
//! advantage inverts for high orders. This experiment locates that
//! crossover on the simulated GTX580.

use crate::exp::tune_best;
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::{DeviceSpec, SimOptions};
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;
use stencil_temporal::{simulate_temporal, TemporalConfig};

/// One (order, T) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Stencil order.
    pub order: usize,
    /// Temporal depth (0 encodes the tuned in-plane single-step kernel).
    pub t_steps: usize,
    /// Effective MPoint/s (points × steps / time).
    pub effective_mpoints: f64,
}

/// Spatial configurations searched for each temporal depth.
fn spatial_candidates() -> Vec<LaunchConfig> {
    vec![
        LaunchConfig::new(32, 8, 1, 1),
        LaunchConfig::new(64, 4, 1, 1),
        LaunchConfig::new(64, 8, 1, 1),
        LaunchConfig::new(128, 4, 1, 1),
        LaunchConfig::new(128, 8, 1, 1),
        LaunchConfig::new(256, 2, 1, 1),
        LaunchConfig::new(64, 8, 1, 2),
        LaunchConfig::new(128, 4, 1, 2),
    ]
}

/// Compute the comparison for orders 2–8 and T in 1..=8 on the GTX580.
pub fn compute(opts: &RunOpts) -> Vec<Cell> {
    let dev = DeviceSpec::gtx580();
    let dims = opts.dims();
    let mut out = Vec::new();
    for order in [2usize, 4, 8] {
        let kernel = KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        );
        // Reference: the tuned single-step in-plane kernel.
        let inplane = tune_best(&dev, &kernel, dims, true, opts.quick, opts.seed);
        out.push(Cell {
            order,
            t_steps: 0,
            effective_mpoints: inplane.mpoints,
        });
        for t in [1usize, 2, 4, 8] {
            let best = spatial_candidates()
                .into_iter()
                .map(|c| {
                    let cfg = TemporalConfig::new(c, t);
                    simulate_temporal(&dev, &kernel, &cfg, dims, &SimOptions::default()).1
                })
                .fold(0.0f64, f64::max);
            out.push(Cell {
                order,
                t_steps: t,
                effective_mpoints: best,
            });
        }
    }
    out
}

/// Render the comparison.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&["Order", "Kernel", "Effective MP/s"]);
    for c in cells {
        let label = if c.t_steps == 0 {
            "in-plane (tuned)".to_string()
        } else {
            format!("3.5-D, T = {}", c.t_steps)
        };
        t.row(vec![c.order.to_string(), label, f(c.effective_mpoints, 0)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_blocking_wins_at_low_order_loses_at_high() {
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let get = |order: usize, t: usize| {
            cells
                .iter()
                .find(|c| c.order == order && c.t_steps == t)
                .unwrap()
                .effective_mpoints
        };
        let best_temporal = |order: usize| {
            [1, 2, 4, 8]
                .iter()
                .map(|&t| get(order, t))
                .fold(0.0f64, f64::max)
        };
        // Order 2: deep pipelines can beat the single-step roofline.
        assert!(
            best_temporal(2) > 1.2 * get(2, 0),
            "order 2: temporal {:.0} should clearly beat in-plane {:.0}",
            best_temporal(2),
            get(2, 0)
        );
        // The advantage must shrink sharply with the order: the rT halos
        // and T+1 staged planes erode it (and kill deep T entirely).
        let advantage = |order: usize| best_temporal(order) / get(order, 0);
        assert!(
            advantage(8) < 0.8 * advantage(2),
            "advantage must shrink with order: {:.2} at 2 vs {:.2} at 8",
            advantage(2),
            advantage(8)
        );
        assert!(
            advantage(8) < 1.25,
            "order 8 advantage {:.2} should be marginal",
            advantage(8)
        );
    }

    #[test]
    fn deep_t_at_high_order_is_infeasible() {
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let t8_o8 = cells
            .iter()
            .find(|c| c.order == 8 && c.t_steps == 8)
            .unwrap()
            .effective_mpoints;
        assert_eq!(t8_o8, 0.0, "T = 8 at order 8 cannot fit shared memory");
    }
}
