//! Table IV: auto-tuned full-slice in-plane results with thread *and*
//! register blocking — optimal `(TX, TY, RX, RY)`, MPoint/s, and speedup
//! over tuned *nvstencil* — for SP and DP, orders 2–12, on all three
//! GPUs. The paper's reported numbers are embedded for comparison.

use crate::exp::{tune_best, ORDERS};
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;

/// Paper-reported cell: (config, MPoint/s, speedup).
pub type PaperCell = ((usize, usize, usize, usize), f64, f64);

/// Paper Table IV, SP block; device order GTX580, GTX680, C2070.
pub const PAPER_SP: [[PaperCell; 3]; 6] = [
    [
        ((256, 1, 1, 8), 17294.0, 1.70),
        ((256, 4, 1, 4), 16181.6, 1.96),
        ((256, 1, 1, 4), 10761.2, 1.65),
    ],
    [
        ((32, 2, 2, 4), 14348.6, 1.82),
        ((64, 4, 2, 4), 13163.1, 1.81),
        ((32, 2, 2, 4), 8994.0, 1.77),
    ],
    [
        ((32, 8, 2, 2), 10944.2, 1.66),
        ((128, 4, 1, 4), 10632.1, 1.71),
        ((32, 4, 1, 4), 6965.9, 1.65),
    ],
    [
        ((32, 4, 1, 4), 9254.5, 1.64),
        ((64, 4, 1, 4), 9904.7, 1.76),
        ((32, 4, 1, 4), 5949.9, 1.66),
    ],
    [
        ((32, 8, 1, 2), 7183.9, 1.38),
        ((32, 8, 1, 2), 7488.7, 1.66),
        ((32, 8, 1, 2), 4550.8, 1.39),
    ],
    [
        ((32, 8, 1, 2), 6503.6, 1.34),
        ((32, 8, 1, 2), 6421.8, 1.42),
        ((32, 8, 1, 2), 4130.8, 1.34),
    ],
];

/// Paper Table IV, DP block.
pub const PAPER_DP: [[PaperCell; 3]; 6] = [
    [
        ((128, 1, 1, 4), 7206.9, 1.35),
        ((64, 2, 1, 4), 6411.6, 1.44),
        ((128, 1, 1, 4), 4975.9, 1.31),
    ],
    [
        ((32, 4, 1, 4), 4858.8, 1.30),
        ((64, 4, 2, 4), 4285.0, 1.16),
        ((32, 4, 1, 4), 3692.7, 1.28),
    ],
    [
        ((32, 4, 1, 2), 3432.2, 1.16),
        ((128, 4, 1, 4), 3005.8, 1.13),
        ((64, 4, 1, 2), 2764.3, 1.29),
    ],
    [
        ((32, 4, 1, 2), 2788.7, 1.12),
        ((64, 4, 1, 4), 2406.4, 1.13),
        ((64, 4, 1, 2), 2381.5, 1.23),
    ],
    [
        ((16, 8, 1, 1), 2388.9, 1.15),
        ((32, 8, 1, 2), 1911.0, 1.06),
        ((16, 16, 1, 1), 1889.9, 1.13),
    ],
    [
        ((16, 8, 1, 1), 2029.3, 1.05),
        ((32, 8, 1, 2), 1607.8, 1.05),
        ((16, 16, 1, 1), 1735.5, 1.17),
    ],
];

/// One reproduced cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Precision.
    pub precision: Precision,
    /// Stencil order.
    pub order: usize,
    /// Device name.
    pub device: String,
    /// Our auto-tuned optimal configuration.
    pub config: LaunchConfig,
    /// Our tuned full-slice throughput, MPoint/s.
    pub mpoints: f64,
    /// Our speedup over tuned nvstencil (thread blocking only).
    pub speedup: f64,
    /// The paper's cell for this (precision, order, device).
    pub paper: PaperCell,
}

/// Run the full experiment (both precisions, all devices and orders).
pub fn compute(opts: &RunOpts) -> Vec<Cell> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for (precision, paper_block) in [
        (Precision::Single, &PAPER_SP),
        (Precision::Double, &PAPER_DP),
    ] {
        for (oi, order) in ORDERS.into_iter().enumerate() {
            for (di, dev) in DeviceSpec::paper_devices().into_iter().enumerate() {
                let nv = tune_best(
                    &dev,
                    &KernelSpec::star_order(Method::ForwardPlane, order, precision),
                    dims,
                    false,
                    opts.quick,
                    opts.seed,
                );
                let fs = tune_best(
                    &dev,
                    &KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, precision),
                    dims,
                    true,
                    opts.quick,
                    opts.seed,
                );
                out.push(Cell {
                    precision,
                    order,
                    device: dev.name.to_string(),
                    config: fs.config,
                    mpoints: fs.mpoints,
                    speedup: fs.mpoints / nv.mpoints,
                    paper: paper_block[oi][di],
                });
            }
        }
    }
    out
}

/// Render the comparison table.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&[
        "Prec",
        "Order",
        "Device",
        "Optimal (ours)",
        "MP/s (ours)",
        "(paper)",
        "Speedup (ours)",
        "(paper)",
    ]);
    for c in cells {
        t.row(vec![
            c.precision.label().to_string(),
            c.order.to_string(),
            c.device.clone(),
            c.config.to_string(),
            f(c.mpoints, 0),
            f(c.paper.1, 0),
            f(c.speedup, 2),
            f(c.paper.2, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_holds_on_fermi_sp() {
        // Quick-mode check of the central claims on GTX580 SP:
        // speedup > 1 everywhere, highest at low orders, throughput
        // within ~2x of the paper's absolute numbers.
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let sp580: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.precision == Precision::Single && c.device.contains("580"))
            .collect();
        assert_eq!(sp580.len(), 6);
        for c in &sp580 {
            assert!(
                c.speedup > 1.0,
                "order {}: speedup {:.2}",
                c.order,
                c.speedup
            );
            let ratio = c.mpoints / c.paper.1;
            assert!(
                (0.5..2.0).contains(&ratio),
                "order {}: {:.0} vs paper {:.0}",
                c.order,
                c.mpoints,
                c.paper.1
            );
        }
        let s2 = sp580.iter().find(|c| c.order == 2).unwrap().speedup;
        let s12 = sp580.iter().find(|c| c.order == 12).unwrap().speedup;
        assert!(
            s2 > s12,
            "speedup should decrease with order: {s2:.2} vs {s12:.2}"
        );
    }

    #[test]
    fn dp_speedups_lower_than_sp() {
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let avg = |p: Precision| {
            let v: Vec<f64> = cells
                .iter()
                .filter(|c| c.precision == p)
                .map(|c| c.speedup)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg(Precision::Single) > avg(Precision::Double),
            "SP mean {:.2} vs DP mean {:.2}",
            avg(Precision::Single),
            avg(Precision::Double)
        );
    }
}
