//! Fig 9: global-memory load efficiency — requested bytes as a fraction
//! of bus bytes — for the full-slice method versus *nvstencil*, all
//! stencil orders, all three GPUs, each at its tuned configuration.

use crate::exp::{tune_best, ORDERS};
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{simulate_star_kernel, KernelSpec, Method, Variant};
use stencil_grid::Precision;

/// One (device, order) comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Device name.
    pub device: String,
    /// Stencil order.
    pub order: usize,
    /// nvstencil load efficiency (0..=1).
    pub nvstencil: f64,
    /// Full-slice load efficiency (0..=1).
    pub full_slice: f64,
}

/// Compute the figure: efficiency at each method's tuned configuration
/// (thread blocking only, as in the Fig 7 setting it accompanies).
pub fn compute(opts: &RunOpts) -> Vec<Cell> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        for order in ORDERS {
            let nv_spec = KernelSpec::star_order(Method::ForwardPlane, order, Precision::Single);
            let fs_spec = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let nv_cfg = tune_best(&dev, &nv_spec, dims, false, opts.quick, opts.seed).config;
            let fs_cfg = tune_best(&dev, &fs_spec, dims, false, opts.quick, opts.seed).config;
            let nv = simulate_star_kernel(&dev, &nv_spec, &nv_cfg, dims).load_efficiency();
            let fs = simulate_star_kernel(&dev, &fs_spec, &fs_cfg, dims).load_efficiency();
            out.push(Cell {
                device: dev.name.to_string(),
                order,
                nvstencil: nv,
                full_slice: fs,
            });
        }
    }
    out
}

/// Render the comparison.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&["Device", "Order", "nvstencil eff %", "full-slice eff %"]);
    for c in cells {
        t.row(vec![
            c.device.clone(),
            c.order.to_string(),
            f(c.nvstencil * 100.0, 1),
            f(c.full_slice * 100.0, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_slice_efficiency_beats_nvstencil_everywhere() {
        // The paper: "the load efficiency of the full-[slice] method is
        // higher than nvstencil for all stencil orders".
        for c in compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        }) {
            assert!(
                c.full_slice > c.nvstencil,
                "{} order {}: full-slice {:.2} vs nvstencil {:.2}",
                c.device,
                c.order,
                c.full_slice,
                c.nvstencil
            );
        }
    }

    #[test]
    fn efficiencies_are_fractions() {
        for c in compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        }) {
            assert!((0.0..=1.0).contains(&c.nvstencil));
            assert!((0.0..=1.0).contains(&c.full_slice));
        }
    }
}
