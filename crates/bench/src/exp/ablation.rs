//! Ablation study for the simulator's design decisions (the ✦ items of
//! DESIGN.md §6): what happens to the paper's headline comparison —
//! tuned in-plane full-slice versus tuned *nvstencil* — when each
//! mechanism is switched off or replaced.
//!
//! * **element-granular memory**: transactions count requested bytes
//!   only (4-byte segments), removing coalescing granularity entirely;
//! * **no L1 credit**: duplicate segment fetches always pay full price
//!   (`l1_dup_charge = 1`), as if Fermi had no cache;
//! * **free re-references**: duplicates are free (`l1_dup_charge = 0`),
//!   an infinite ideal cache;
//! * **saturating hiding**: the latency-hiding function saturates at a
//!   third of the warp slots instead of the paper's linear `f(·)`.

use crate::exp::space_for;
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::timing::HidingModel;
use gpu_sim::{DeviceSpec, SimOptions};
use inplane_core::{simulate_kernel, KernelSpec, Method, Variant};
use stencil_grid::Precision;

/// One ablation configuration's results.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Which mechanism was altered.
    pub name: &'static str,
    /// Tuned order-2 SP full-slice MPoint/s on the (altered) GTX580.
    pub order2_mpoints: f64,
    /// Tuned order-2 speedup over tuned nvstencil.
    pub order2_speedup: f64,
    /// Tuned order-8 speedup.
    pub order8_speedup: f64,
}

fn tune_mpoints(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    opts: &RunOpts,
    hiding: HidingModel,
    register_blocking: bool,
) -> f64 {
    let dims = opts.dims();
    let space = space_for(device, kernel, &dims, register_blocking, opts.quick);
    space
        .configs()
        .iter()
        .map(|c| {
            let sim_opts = SimOptions {
                hiding,
                ..SimOptions::default()
            };
            simulate_kernel(device, kernel, c, dims, &sim_opts).mpoints_per_s()
        })
        .fold(0.0f64, f64::max)
}

fn run_case(name: &'static str, device: DeviceSpec, hiding: HidingModel, opts: &RunOpts) -> Row {
    let speedup = |order: usize| {
        let nv = tune_mpoints(
            &device,
            &KernelSpec::star_order(Method::ForwardPlane, order, Precision::Single),
            opts,
            hiding,
            false,
        );
        let fs = tune_mpoints(
            &device,
            &KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            ),
            opts,
            hiding,
            true,
        );
        (fs, fs / nv)
    };
    let (o2_mp, o2_s) = speedup(2);
    let (_, o8_s) = speedup(8);
    Row {
        name,
        order2_mpoints: o2_mp,
        order2_speedup: o2_s,
        order8_speedup: o8_s,
    }
}

/// Run the ablation on the GTX580.
pub fn compute(opts: &RunOpts) -> Vec<Row> {
    let base = DeviceSpec::gtx580();
    let element_granular = DeviceSpec {
        segment_bytes: 4,
        ..base.clone()
    };
    let no_l1 = DeviceSpec {
        l1_dup_charge: 1.0,
        ..base.clone()
    };
    let ideal_cache = DeviceSpec {
        l1_dup_charge: 0.0,
        ..base.clone()
    };
    vec![
        run_case("baseline", base.clone(), HidingModel::Linear, opts),
        run_case(
            "element-granular memory",
            element_granular,
            HidingModel::Linear,
            opts,
        ),
        run_case("no L1 credit", no_l1, HidingModel::Linear, opts),
        run_case("free re-references", ideal_cache, HidingModel::Linear, opts),
        run_case("saturating hiding", base, HidingModel::Saturating, opts),
    ]
}

/// Render the ablation table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(&[
        "Mechanism",
        "order-2 MP/s",
        "order-2 speedup",
        "order-8 speedup",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            f(r.order2_mpoints, 0),
            f(r.order2_speedup, 2),
            f(r.order8_speedup, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_granularity_carries_the_result() {
        // Without 128-byte segment granularity, the in-plane method's
        // advantage mostly evaporates — the whole paper rests on
        // transaction-level coalescing.
        let rows = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let baseline = rows.iter().find(|r| r.name == "baseline").unwrap();
        let granular = rows
            .iter()
            .find(|r| r.name == "element-granular memory")
            .unwrap();
        assert!(baseline.order2_speedup > 1.3);
        assert!(
            granular.order2_speedup < baseline.order2_speedup - 0.15,
            "element-granular {:.2} should fall well below baseline {:.2}",
            granular.order2_speedup,
            baseline.order2_speedup
        );
    }

    #[test]
    fn l1_credit_narrows_the_gap() {
        // The baseline's misaligned re-references are what L1 forgives:
        // with no credit the nvstencil baseline gets slower (speedup
        // grows); with free re-references it gets faster (speedup
        // shrinks).
        let rows = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let base = rows
            .iter()
            .find(|r| r.name == "baseline")
            .unwrap()
            .order2_speedup;
        let none = rows
            .iter()
            .find(|r| r.name == "no L1 credit")
            .unwrap()
            .order2_speedup;
        let free = rows
            .iter()
            .find(|r| r.name == "free re-references")
            .unwrap()
            .order2_speedup;
        assert!(none >= base - 1e-9, "no-credit {none:.2} vs base {base:.2}");
        assert!(free <= base + 1e-9, "free {free:.2} vs base {base:.2}");
    }

    #[test]
    fn hiding_shape_is_second_order() {
        // Swapping the hiding function must not change who wins.
        let rows = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let sat = rows.iter().find(|r| r.name == "saturating hiding").unwrap();
        assert!(sat.order2_speedup > 1.0);
        assert!(sat.order8_speedup > 1.0);
    }
}
