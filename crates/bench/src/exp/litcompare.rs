//! §V-B: comparison with previous work. The paper quotes its tuned
//! 2nd-order results in GFlop/s against Patus/Christen (ref 17), Physis
//! (ref 26), Holewinski (ref 27) and Nguyen (ref 14). We regenerate
//! *our side* of
//! each comparison from the tuned Table IV cells; GFlop/s uses the
//! useful (forward-formulation, `7r+1`) flop count, as the literature
//! does.

use crate::exp::tune_best;
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_grid::Precision;

/// One literature comparison row.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// What is being compared.
    pub label: String,
    /// The prior work's reported number.
    pub prior_work: f64,
    /// What the paper reports for its own method.
    pub paper_claim: f64,
    /// Our reproduced number.
    pub ours: f64,
    /// Unit.
    pub unit: &'static str,
}

/// Tuned order-2 throughput in MPoint/s on `dev` for the given precision.
fn tuned_order2(dev: &DeviceSpec, precision: Precision, opts: &RunOpts) -> f64 {
    let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, precision);
    tune_best(dev, &k, opts.dims(), true, opts.quick, opts.seed).mpoints
}

/// Useful GFlop/s of a 2nd-order (7-point-class, 8-flop) stencil at the
/// given MPoint/s.
fn gflops_order2(mpoints: f64) -> f64 {
    mpoints * 8.0 / 1000.0
}

/// Build every §V-B row.
pub fn compute(opts: &RunOpts) -> Vec<Row> {
    let c2070_sp = tuned_order2(&DeviceSpec::c2070(), Precision::Single, opts);
    let gtx580_dp = tuned_order2(&DeviceSpec::gtx580(), Precision::Double, opts);
    let gtx580_sp = tuned_order2(&DeviceSpec::gtx580(), Precision::Single, opts);
    vec![
        Row {
            label: "SP Laplacian-class GFlop/s vs Patus (Tesla C2050: 30)".into(),
            prior_work: 30.0,
            paper_claim: 96.0,
            ours: gflops_order2(c2070_sp),
            unit: "GFlop/s",
        },
        Row {
            label: "7-pt SP GFlop/s vs Physis (Tesla M2050: 67)".into(),
            prior_work: 67.0,
            paper_claim: 97.0,
            ours: gflops_order2(c2070_sp),
            unit: "GFlop/s",
        },
        Row {
            label: "7-pt DP GFlop/s vs Holewinski (GTX580: 28.7)".into(),
            prior_work: 28.7,
            paper_claim: 65.0,
            ours: gflops_order2(gtx580_dp),
            unit: "GFlop/s",
        },
        Row {
            label: "2nd-order SP MPoint/s vs Nguyen (GTX285: 9234)".into(),
            prior_work: 9234.0,
            paper_claim: 17294.0,
            ours: gtx580_sp,
            unit: "MPoint/s",
        },
    ]
}

/// Render the rows.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(&["Comparison", "Prior work", "Paper", "Ours", "Unit"]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            f(r.prior_work, 1),
            f(r.paper_claim, 1),
            f(r.ours, 1),
            r.unit.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_numbers_land_in_the_papers_neighbourhood() {
        let rows = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let ratio = r.ours / r.paper_claim;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: ours {:.1} vs paper {:.1}",
                r.label,
                r.ours,
                r.paper_claim
            );
        }
    }

    #[test]
    fn we_beat_the_prior_work_like_the_paper_does() {
        for r in compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        }) {
            assert!(
                r.ours > r.prior_work,
                "{}: ours {:.1} should exceed prior {:.1}",
                r.label,
                r.ours,
                r.prior_work
            );
        }
    }
}
