//! Table II: operation counts per grid point — data references and flops
//! under the in-plane versus the forward-plane (nvstencil) formulation.

use crate::fmt::Table;

/// One row: (order, data refs, flops in-plane, flops nvstencil).
pub type Row = (usize, usize, usize, usize);

/// The paper's Table II values.
pub const PAPER: [Row; 6] = [
    (2, 8, 9, 8),
    (4, 14, 17, 15),
    (6, 20, 25, 22),
    (8, 26, 33, 29),
    (10, 32, 41, 36),
    (12, 38, 49, 43),
];

/// Regenerate from the library's operation counts.
pub fn compute() -> Vec<Row> {
    stencil_grid::stencil::table2_rows()
}

/// Render the comparison table.
pub fn render() -> Table {
    let ours = compute();
    let mut t = Table::new(&[
        "Order",
        "Data Refs",
        "Flops in-plane (ours)",
        "(paper)",
        "Flops nvstencil (ours)",
        "(paper)",
    ]);
    for (row, paper) in ours.iter().zip(PAPER.iter()) {
        t.row(vec![
            row.0.to_string(),
            row.1.to_string(),
            row.2.to_string(),
            paper.2.to_string(),
            row.3.to_string(),
            paper.3.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_exactly() {
        assert_eq!(compute(), PAPER.to_vec());
    }

    #[test]
    fn inplane_always_costs_r_more_flops() {
        for (order, _, inplane, forward) in compute() {
            assert_eq!(inplane - forward, order / 2);
        }
    }
}
