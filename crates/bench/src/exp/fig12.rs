//! Fig 12: model-based auto-tuning (β = 5%) versus exhaustive search,
//! for all stencil orders on all three GPUs. The paper reports a typical
//! gap of ~2% and a worst case of ~6% (on the GTX680).

use crate::exp::{global_service, space_for, ORDERS};
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{exhaustive_tune, model_based_tune};
use stencil_grid::Precision;
use stencil_tunestore::{TuneRequest, TunerSpec};

/// One (device, order) comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Device name.
    pub device: String,
    /// Stencil order.
    pub order: usize,
    /// Exhaustive-search best, MPoint/s.
    pub exhaustive_mpoints: f64,
    /// Model-based (β%) best, MPoint/s.
    pub model_based_mpoints: f64,
    /// Configurations in the space (`M`).
    pub space_size: usize,
    /// Configurations the model-based tuner executed (`N`).
    pub executed: usize,
}

impl Cell {
    /// Fraction of the exhaustive optimum the model-based tuner reached.
    pub fn ratio(&self) -> f64 {
        self.model_based_mpoints / self.exhaustive_mpoints
    }
}

/// Run the comparison with the given β (the paper uses 5%).
pub fn compute(opts: &RunOpts, beta_percent: f64) -> Vec<Cell> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        for order in ORDERS {
            let k = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let space = space_for(&dev, &k, &dims, true, opts.quick);
            let (ex_mpoints, mb_mpoints, executed) = if let Some(svc) = global_service() {
                let ex = svc.resolve(&TuneRequest {
                    device: dev.clone(),
                    kernel: k.clone(),
                    dims,
                    space: space.clone(),
                    tuner: TunerSpec::Exhaustive,
                    seed: opts.seed,
                });
                let mb = svc.resolve(&TuneRequest {
                    device: dev.clone(),
                    kernel: k.clone(),
                    dims,
                    space: space.clone(),
                    tuner: TunerSpec::ModelBased { beta_percent },
                    seed: opts.seed,
                });
                (ex.best.mpoints, mb.best.mpoints, mb.evaluated as usize)
            } else {
                let ex = exhaustive_tune(&dev, &k, dims, &space, opts.seed);
                let mb = model_based_tune(&dev, &k, dims, &space, beta_percent, opts.seed);
                (ex.best.mpoints, mb.best.mpoints, mb.executed)
            };
            out.push(Cell {
                device: dev.name.to_string(),
                order,
                exhaustive_mpoints: ex_mpoints,
                model_based_mpoints: mb_mpoints,
                space_size: space.len(),
                executed,
            });
        }
    }
    out
}

/// Mean and worst gap over a set of cells.
pub fn gap_stats(cells: &[Cell]) -> (f64, f64) {
    let gaps: Vec<f64> = cells.iter().map(|c| 1.0 - c.ratio()).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let worst = gaps.iter().cloned().fold(0.0f64, f64::max);
    (mean, worst)
}

/// Render the comparison.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&[
        "Device",
        "Order",
        "Exhaustive MP/s",
        "Model-based MP/s",
        "Ratio",
        "Executed/Space",
    ]);
    for c in cells {
        t.row(vec![
            c.device.clone(),
            c.order.to_string(),
            f(c.exhaustive_mpoints, 0),
            f(c.model_based_mpoints, 0),
            f(c.ratio(), 3),
            format!("{}/{}", c.executed, c.space_size),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_based_stays_close_to_exhaustive() {
        // Paper: typically ~2% gap, worst ~6%. Allow some slack on the
        // reduced quick space (β of a smaller M executes fewer configs).
        let cells = compute(
            &RunOpts {
                quick: true,
                seed: 1,
                csv_dir: None,
                tune_store: None,
            },
            5.0,
        );
        assert_eq!(cells.len(), 18);
        let (mean, worst) = gap_stats(&cells);
        assert!(mean < 0.06, "mean gap {mean:.3}");
        assert!(worst < 0.15, "worst gap {worst:.3}");
        for c in &cells {
            assert!(
                c.ratio() <= 1.0 + 1e-9,
                "model-based cannot beat exhaustive"
            );
            assert!(
                c.executed * 15 <= c.space_size,
                "executed too many: {}/{}",
                c.executed,
                c.space_size
            );
        }
    }

    #[test]
    fn larger_beta_never_hurts() {
        let opts = RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        };
        let c5 = compute(&opts, 5.0);
        let c20 = compute(&opts, 20.0);
        for (a, b) in c5.iter().zip(c20.iter()) {
            assert!(b.model_based_mpoints >= a.model_based_mpoints - 1e-9);
        }
    }
}
