//! Fig 11 / Table V: the application stencils — grids in/out, tuned
//! throughput under the forward-plane and in-plane methods, and the
//! in-plane speedup, in SP and DP on all three GPUs.

use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use stencil_apps::{all_apps, benchmark_app, AppBenchResult};
use stencil_grid::Precision;

/// Results for one device and precision: six application rows.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceResults {
    /// Device name.
    pub device: String,
    /// Precision.
    pub precision: Precision,
    /// One result per Table V application, in table order.
    pub apps: Vec<AppBenchResult>,
}

/// Run the suite on all devices for both precisions.
pub fn compute(opts: &RunOpts) -> Vec<DeviceResults> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        for precision in [Precision::Single, Precision::Double] {
            let apps = match precision {
                Precision::Single => all_apps::<f32>()
                    .iter()
                    .map(|a| benchmark_app::<f32>(&dev, a.as_ref(), dims, opts.quick, opts.seed))
                    .collect(),
                Precision::Double => all_apps::<f64>()
                    .iter()
                    .map(|a| benchmark_app::<f64>(&dev, a.as_ref(), dims, opts.quick, opts.seed))
                    .collect(),
            };
            out.push(DeviceResults {
                device: dev.name.to_string(),
                precision,
                apps,
            });
        }
    }
    out
}

/// Render one device/precision block.
pub fn render(r: &DeviceResults) -> Table {
    let mut t = Table::new(&[
        "App",
        "In",
        "Out",
        "nvstencil MP/s",
        "in-plane MP/s",
        "Speedup",
    ]);
    for a in &r.apps {
        t.row(vec![
            a.name.clone(),
            a.inputs.to_string(),
            a.outputs.to_string(),
            f(a.forward_mpoints, 0),
            f(a.inplane_mpoints, 0),
            f(a.speedup(), 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<DeviceResults> {
        let opts = RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        };
        // One device is enough for the shape checks and keeps tests fast.
        let dims = opts.dims();
        let dev = DeviceSpec::gtx580();
        vec![DeviceResults {
            device: dev.name.to_string(),
            precision: Precision::Single,
            apps: all_apps::<f32>()
                .iter()
                .map(|a| benchmark_app::<f32>(&dev, a.as_ref(), dims, true, opts.seed))
                .collect(),
        }]
    }

    #[test]
    fn laplacian_gains_most_hyperthermia_least() {
        // §V-A's central observation: the single-grid Laplacian is among
        // the largest winners, the coefficient-bound Hyperthermia is the
        // smallest.
        let r = &quick()[0];
        let by_name = |n: &str| r.apps.iter().find(|a| a.name == n).unwrap().speedup();
        let lap = by_name("Laplacian");
        let hyp = by_name("Hyperthermia");
        assert!(lap > 1.3, "Laplacian speedup {lap:.2}");
        assert!(
            lap > hyp + 0.2,
            "Laplacian {lap:.2} vs Hyperthermia {hyp:.2}"
        );
        for a in &r.apps {
            assert!(
                a.speedup() >= hyp - 1e-9,
                "{} at {:.2} below Hyperthermia {:.2}",
                a.name,
                a.speedup(),
                hyp
            );
        }
    }

    #[test]
    fn all_apps_speed_up_or_nearly_so() {
        // Fig 11: in-plane generally wins; Hyperthermia "may even
        // slow down", so allow it a small regression.
        let r = &quick()[0];
        for a in &r.apps {
            assert!(
                a.speedup() > 0.9,
                "{}: speedup {:.2} too low",
                a.name,
                a.speedup()
            );
        }
    }
}
