//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod litcompare;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod temporal_cmp;

use std::sync::{Arc, OnceLock};

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, RoutineDiag};
use stencil_autotune::{
    exhaustive_tune_selected, exhaustive_tune_with, ParameterSpace, RoutineChoice, RoutineSelector,
    TuneSample,
};
use stencil_tunestore::{JsonlDiskStore, TuneRequest, TuneService, TunerSpec};

use crate::opts::TUNE_STORE_ENV;

/// The stencil orders of the paper's evaluation.
pub const ORDERS: [usize; 6] = [2, 4, 6, 8, 10, 12];

/// Open a persistent tuning service at `path`, evaluating through the
/// process-wide [`EvalContext::global`]. A store that cannot be opened
/// degrades to `None` (tuning without persistence) with a warning —
/// never an abort.
pub fn service_at(path: &str) -> Option<TuneService> {
    match JsonlDiskStore::open(path) {
        Ok(store) => Some(TuneService::with_global_ctx(Arc::new(store))),
        Err(e) => {
            eprintln!("warning: cannot open tune store {path}: {e}; tuning without persistence");
            None
        }
    }
}

/// The process-wide tuning service, present when the
/// `INPLANE_TUNE_STORE` environment variable names a store path. All
/// default-entry-point tuning ([`tune_best`], the fig/table binaries)
/// routes through it, so a second run of any sweep is served from disk.
pub fn global_service() -> Option<&'static TuneService> {
    static SERVICE: OnceLock<Option<TuneService>> = OnceLock::new();
    SERVICE
        .get_or_init(|| {
            let path = std::env::var(TUNE_STORE_ENV)
                .ok()
                .filter(|p| !p.is_empty())?;
            service_at(&path)
        })
        .as_ref()
}

/// Build the tuning space for `kernel`, optionally restricted to thread
/// blocking only (`RX = RY = 1`, as in Fig 7) and/or the reduced quick
/// space.
pub fn space_for(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    register_blocking: bool,
    quick: bool,
) -> ParameterSpace {
    let base = if quick {
        ParameterSpace::quick_space(device, kernel, dims)
    } else {
        ParameterSpace::paper_space(device, kernel, dims)
    };
    if register_blocking {
        base
    } else {
        ParameterSpace::from_configs(
            base.configs()
                .iter()
                .copied()
                .filter(|c| !c.has_register_blocking())
                .collect(),
        )
    }
}

/// Tune `kernel` and return the best sample.
///
/// All figure/table experiments funnel through here, sharing the global
/// [`EvalContext`]: one binary that tunes the same kernel for several
/// figures prices each `(device, kernel, config, dims)` point once.
/// When `INPLANE_TUNE_STORE` is set the search additionally routes
/// through the persistent [`TuneService`], so a repeated run is served
/// from disk bit-identically without re-searching.
pub fn tune_best(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    register_blocking: bool,
    quick: bool,
    seed: u64,
) -> TuneSample {
    if let Some(svc) = global_service() {
        let space = space_for(device, kernel, &dims, register_blocking, quick);
        return svc
            .resolve(&TuneRequest {
                device: device.clone(),
                kernel: kernel.clone(),
                dims,
                space,
                tuner: TunerSpec::Exhaustive,
                seed,
            })
            .best;
    }
    tune_best_with(
        EvalContext::global(),
        device,
        kernel,
        dims,
        register_blocking,
        quick,
        seed,
    )
}

/// [`tune_best`] against an explicit evaluation context.
pub fn tune_best_with(
    ctx: &EvalContext,
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    register_blocking: bool,
    quick: bool,
    seed: u64,
) -> TuneSample {
    let space = space_for(device, kernel, &dims, register_blocking, quick);
    exhaustive_tune_with(ctx, device, kernel, dims, &space, seed).best
}

/// [`tune_best`] with oracle-first routine selection: the
/// [`RoutineSelector`] ranks every routine that supports the problem by
/// predicted global traffic, the winner's kernel respec is tuned, and
/// both the choice (with its full ranking) and the tuned best come
/// back. Errors are the selector's coded rejection — no routine can run
/// the problem at the probe configuration.
pub fn tune_best_auto(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: GridDims,
    register_blocking: bool,
    quick: bool,
    seed: u64,
) -> Result<(RoutineChoice, TuneSample), RoutineDiag> {
    let space = space_for(device, kernel, &dims, register_blocking, quick);
    let selector = RoutineSelector::auto();
    if let Some(svc) = global_service() {
        let (choice, resp) = svc.resolve_selected(
            &TuneRequest {
                device: device.clone(),
                kernel: kernel.clone(),
                dims,
                space,
                tuner: TunerSpec::Exhaustive,
                seed,
            },
            &selector,
        )?;
        return Ok((choice, resp.best));
    }
    let (choice, outcome) = exhaustive_tune_selected(
        EvalContext::global(),
        &selector,
        device,
        kernel,
        dims,
        &space,
        seed,
    )?;
    Ok((choice, outcome.best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    #[test]
    fn no_rb_space_has_only_unit_register_blocks() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::paper();
        let s = space_for(&dev, &k, &dims, false, true);
        assert!(!s.is_empty());
        assert!(s.configs().iter().all(|c| c.rx == 1 && c.ry == 1));
    }

    #[test]
    fn auto_selection_sweeps_gtx580_laplacian() {
        // The CI `routines` job's end-to-end check: oracle-first `Auto`
        // selection over the order-2 star (the 7-point Laplacian) on
        // the paper's GTX 580 setup, then a full quick-space tune of
        // the winner.
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let k = KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Single);
        let (choice, best) = tune_best_auto(&dev, &k, dims, true, true, 7)
            .expect("every routine fits the paper grid");
        assert!(best.mpoints > 0.0);
        assert_eq!(
            choice.ranking.len(),
            inplane_core::registry().len(),
            "every registered routine must be oracle-ranked: {:?}",
            choice.ranking
        );
        for w in choice.ranking.windows(2) {
            assert!(w[0].global_bytes <= w[1].global_bytes);
        }
        // Deterministic: same probe, same ranking, same winner.
        let (again, best2) = tune_best_auto(&dev, &k, dims, true, true, 7).unwrap();
        assert_eq!(choice, again);
        assert_eq!(best.config, best2.config);
    }

    #[test]
    fn rb_space_is_strictly_larger() {
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dims = GridDims::paper();
        assert!(
            space_for(&dev, &k, &dims, true, true).len()
                > space_for(&dev, &k, &dims, false, true).len()
        );
    }
}
