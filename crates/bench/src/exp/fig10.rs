//! Fig 10: breakdown of the speedup factors — which part of the gain
//! comes from the full-slice loading pattern and which from register
//! blocking. Three tuned cases over the tuned *nvstencil* baseline:
//!
//! 1. nvstencil **with** register blocking,
//! 2. full-slice **without** register blocking,
//! 3. full-slice **with** register blocking.

use crate::exp::{tune_best, ORDERS};
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_grid::Precision;

/// One (device, order) breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Device name.
    pub device: String,
    /// Stencil order.
    pub order: usize,
    /// Speedup of nvstencil + register blocking over plain nvstencil.
    pub nv_rb: f64,
    /// Speedup of full-slice without register blocking.
    pub fs_norb: f64,
    /// Speedup of full-slice with register blocking.
    pub fs_rb: f64,
}

/// Compute the breakdown for all devices and orders (SP).
pub fn compute(opts: &RunOpts) -> Vec<Cell> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        for order in ORDERS {
            let nv = KernelSpec::star_order(Method::ForwardPlane, order, Precision::Single);
            let fs = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let base = tune_best(&dev, &nv, dims, false, opts.quick, opts.seed).mpoints;
            let nv_rb = tune_best(&dev, &nv, dims, true, opts.quick, opts.seed).mpoints;
            let fs_norb = tune_best(&dev, &fs, dims, false, opts.quick, opts.seed).mpoints;
            let fs_rb = tune_best(&dev, &fs, dims, true, opts.quick, opts.seed).mpoints;
            out.push(Cell {
                device: dev.name.to_string(),
                order,
                nv_rb: nv_rb / base,
                fs_norb: fs_norb / base,
                fs_rb: fs_rb / base,
            });
        }
    }
    out
}

/// Mean contribution summary across a set of cells, as the paper
/// quotes: full-slice + RB total gain, the share contributed by the
/// loading pattern alone, and by register blocking on top.
pub fn summary(cells: &[Cell]) -> (f64, f64, f64) {
    let n = cells.len() as f64;
    let total: f64 = cells.iter().map(|c| c.fs_rb - 1.0).sum::<f64>() / n;
    let from_fs: f64 = cells.iter().map(|c| c.fs_norb - 1.0).sum::<f64>() / n;
    let from_rb: f64 = cells.iter().map(|c| c.fs_rb - c.fs_norb).sum::<f64>() / n;
    (total, from_fs, from_rb)
}

/// Render the breakdown.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&[
        "Device",
        "Order",
        "nvstencil+RB x",
        "full-slice x",
        "full-slice+RB x",
    ]);
    for c in cells {
        t.row(vec![
            c.device.clone(),
            c.order.to_string(),
            f(c.nv_rb, 2),
            f(c.fs_norb, 2),
            f(c.fs_rb, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_slice_with_rb_always_best() {
        // Fig 10: "In all cases, we found that the full-slice method with
        // register blocking performed the best across all GPUs."
        for c in compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        }) {
            assert!(
                c.fs_rb >= c.nv_rb && c.fs_rb >= c.fs_norb,
                "{} order {}: fs_rb {:.2} nv_rb {:.2} fs {:.2}",
                c.device,
                c.order,
                c.fs_rb,
                c.nv_rb,
                c.fs_norb
            );
        }
    }

    #[test]
    fn rb_contributes_on_top_of_full_slice() {
        // §IV-D: register blocking on the full-slice method adds a
        // meaningful share (~18% in the paper) beyond the pattern alone.
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let (total, from_fs, from_rb) = summary(&cells);
        assert!(total > 0.2, "total gain {total:.2}");
        assert!(from_fs > 0.0, "pattern share {from_fs:.2}");
        assert!(from_rb > 0.05, "RB share {from_rb:.2}");
    }

    #[test]
    fn rb_alone_helps_nvstencil_modestly() {
        // §IV-D: nvstencil with register blocking gains only ~11%.
        let cells = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let mean_nv_rb: f64 = cells.iter().map(|c| c.nv_rb - 1.0).sum::<f64>() / cells.len() as f64;
        assert!(
            (0.0..0.6).contains(&mean_nv_rb),
            "nvstencil RB mean gain {mean_nv_rb:.2}"
        );
    }
}
