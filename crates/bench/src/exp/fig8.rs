//! Fig 8: auto-tuning performance surfaces over `(RX, RY)` at the
//! optimal `(TX, TY)` — the paper shows the 2nd- and 8th-order SP
//! kernels on the GeForce GTX580, with constraint-violating points
//! plotted as zero.

use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{performance_surface, SurfacePoint};
use stencil_grid::Precision;

/// One Fig 8 panel.
#[derive(Clone, Debug, PartialEq)]
pub struct Panel {
    /// Stencil order.
    pub order: usize,
    /// Fixed thread block (the paper's reported optimum).
    pub tx: usize,
    /// See `tx`.
    pub ty: usize,
    /// 16 surface points over RX, RY ∈ {1, 2, 4, 8}.
    pub points: Vec<SurfacePoint>,
}

impl Panel {
    /// The surface peak.
    pub fn peak(&self) -> SurfacePoint {
        *self
            .points
            .iter()
            .max_by(|a, b| a.mpoints.total_cmp(&b.mpoints))
            .expect("surface is non-empty")
    }
}

/// Compute the two panels of Fig 8 (order 2 at TX×TY = 256×1, order 8 at
/// 32×4, the paper's optima) on the GTX580.
pub fn compute(opts: &RunOpts) -> Vec<Panel> {
    let dev = DeviceSpec::gtx580();
    let dims = opts.dims();
    [(2usize, 256usize, 1usize), (8, 32, 4)]
        .into_iter()
        .map(|(order, tx, ty)| {
            let k = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            Panel {
                order,
                tx,
                ty,
                points: performance_surface(&dev, &k, dims, tx, ty, opts.seed),
            }
        })
        .collect()
}

/// Render one panel as an RX × RY grid of MPoint/s.
pub fn render(panel: &Panel) -> Table {
    let mut t = Table::new(&["RX\\RY", "1", "2", "4", "8"]);
    for rx in [1usize, 2, 4, 8] {
        let mut row = vec![rx.to_string()];
        for ry in [1usize, 2, 4, 8] {
            let p = panel
                .points
                .iter()
                .find(|p| p.rx == rx && p.ry == ry)
                .expect("full 4x4 surface");
            row.push(f(p.mpoints, 0));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order2_panel_peaks_at_high_ry() {
        // Fig 8a: the 2nd-order surface at (256, 1) rises along RY; the
        // paper's optimum is RY = 8.
        let panels = compute(&RunOpts {
            quick: false,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let p2 = &panels[0];
        assert_eq!(p2.order, 2);
        let peak = p2.peak();
        assert!(peak.ry >= 4, "peak at rx={} ry={}", peak.rx, peak.ry);
        // The surface is not flat: peak clearly above the (1,1) corner.
        let base = p2.points.iter().find(|p| p.rx == 1 && p.ry == 1).unwrap();
        assert!(peak.mpoints > 1.2 * base.mpoints);
    }

    #[test]
    fn order8_panel_has_infeasible_zeros() {
        // Fig 8b: at (32, 4) with order 8, large register blocks violate
        // constraints and are plotted as zero.
        let panels = compute(&RunOpts {
            quick: false,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        let p8 = &panels[1];
        assert!(p8.points.iter().any(|p| p.mpoints == 0.0));
        let peak = p8.peak();
        assert!(peak.mpoints > 0.0);
    }

    #[test]
    fn render_is_4x4() {
        let panels = compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        });
        assert_eq!(render(&panels[0]).len(), 4);
    }
}
