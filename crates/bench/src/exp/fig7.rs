//! Fig 7: speedup of the in-plane loading variants (vertical,
//! horizontal, full-slice) over *nvstencil*, with thread blocking only
//! (each variant — and the baseline — tuned for its optimal `TX × TY`,
//! `RX = RY = 1`), single precision, orders 2–12, all three GPUs.

use crate::exp::{tune_best, ORDERS};
use crate::fmt::{f, Table};
use crate::opts::RunOpts;
use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_grid::Precision;

/// Speedups of one (device, order) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Device name.
    pub device: String,
    /// Stencil order.
    pub order: usize,
    /// Tuned nvstencil throughput, MPoint/s.
    pub nvstencil_mpoints: f64,
    /// Speedups over nvstencil for (vertical, horizontal, full-slice).
    pub speedups: [f64; 3],
}

/// Run the whole figure.
pub fn compute(opts: &RunOpts) -> Vec<Cell> {
    let dims = opts.dims();
    let mut out = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        for order in ORDERS {
            let nv = tune_best(
                &dev,
                &KernelSpec::star_order(Method::ForwardPlane, order, Precision::Single),
                dims,
                false,
                opts.quick,
                opts.seed,
            );
            let mut speedups = [0.0f64; 3];
            for (i, variant) in Variant::evaluated().into_iter().enumerate() {
                let s = tune_best(
                    &dev,
                    &KernelSpec::star_order(Method::InPlane(variant), order, Precision::Single),
                    dims,
                    false,
                    opts.quick,
                    opts.seed,
                );
                speedups[i] = s.mpoints / nv.mpoints;
            }
            out.push(Cell {
                device: dev.name.to_string(),
                order,
                nvstencil_mpoints: nv.mpoints,
                speedups,
            });
        }
    }
    out
}

/// Render one table over all devices and orders.
pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(&[
        "Device",
        "Order",
        "nvstencil MP/s",
        "vertical x",
        "horizontal x",
        "full-slice x",
    ]);
    for c in cells {
        t.row(vec![
            c.device.clone(),
            c.order.to_string(),
            f(c.nvstencil_mpoints, 0),
            f(c.speedups[0], 2),
            f(c.speedups[1], 2),
            f(c.speedups[2], 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cells() -> Vec<Cell> {
        compute(&RunOpts {
            quick: true,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        })
    }

    #[test]
    fn fig7_shapes_hold() {
        let cells = quick_cells();
        assert_eq!(cells.len(), 18);
        for c in &cells {
            // Full-slice and horizontal give a benefit at low orders.
            if c.order <= 8 {
                assert!(
                    c.speedups[2] > 1.0,
                    "{} order {}: full-slice {:.2}",
                    c.device,
                    c.order,
                    c.speedups[2]
                );
            }
        }
        // Vertical collapses at high orders (the paper's
        // "significant slowdowns for 10th and 12th order"): below parity
        // at order 12, and at best marginal at order 10.
        for c in cells.iter().filter(|c| c.order == 12) {
            assert!(
                c.speedups[0] < 0.85,
                "{} order 12: vertical {:.2} should slow down",
                c.device,
                c.speedups[0]
            );
        }
        for c in cells.iter().filter(|c| c.order == 10) {
            assert!(
                c.speedups[0] < 1.05,
                "{} order 10: vertical {:.2} should be at best marginal",
                c.device,
                c.speedups[0]
            );
        }
    }

    #[test]
    fn vertical_competitive_at_order_2() {
        for c in quick_cells().iter().filter(|c| c.order == 2) {
            assert!(c.speedups[0] > 1.0, "{}: {:.2}", c.device, c.speedups[0]);
        }
    }
}
