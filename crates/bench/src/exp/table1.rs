//! Table I: stencil kernel specifications — extent, memory accesses per
//! element, flops per element — for orders 2 through 12.

use crate::fmt::Table;

/// One row: (order, extent, memory accesses/elem, flops/elem).
pub type Row = (usize, usize, usize, usize);

/// The paper's Table I values, for side-by-side comparison.
pub const PAPER: [Row; 6] = [
    (2, 3, 8, 8),
    (4, 5, 14, 15),
    (6, 7, 20, 22),
    (8, 9, 26, 29),
    (10, 11, 32, 36),
    (12, 13, 38, 43),
];

/// Regenerate the table from the library's operation counts.
pub fn compute() -> Vec<Row> {
    stencil_grid::stencil::table1_rows()
}

/// Render the comparison table.
pub fn render() -> Table {
    let ours = compute();
    let mut t = Table::new(&[
        "Order",
        "Extent",
        "MemAcc/Elem (ours)",
        "(paper)",
        "Flops/Elem (ours)",
        "(paper)",
    ]);
    for (row, paper) in ours.iter().zip(PAPER.iter()) {
        t.row(vec![
            row.0.to_string(),
            format!("{0}x{0}x{0}", row.1),
            row.2.to_string(),
            paper.2.to_string(),
            row.3.to_string(),
            paper.3.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_exactly() {
        assert_eq!(compute(), PAPER.to_vec());
    }

    #[test]
    fn render_has_six_rows() {
        assert_eq!(render().len(), 6);
    }
}
