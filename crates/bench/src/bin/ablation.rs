//! Ablation study of the simulator's design decisions (DESIGN.md section 6).
use stencil_bench::{exp::ablation, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let rows = ablation::compute(&opts);
    ablation::render(&rows)
        .print("Ablation: tuned full-slice vs nvstencil on GTX580 under altered mechanisms");
    println!("\nThe in-plane advantage rests on 128-byte transaction granularity; removing");
    println!("it (4-byte segments) collapses the gap. The L1 duplicate-fetch credit mainly");
    println!("helps the misaligned baseline; the latency-hiding shape is second-order.");
}
