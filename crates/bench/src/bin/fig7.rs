//! Regenerates Fig 7: in-plane variant speedups over nvstencil with
//! thread blocking only.
use stencil_bench::{exp::fig7, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = fig7::compute(&opts);
    let table = fig7::render(&cells);
    table.print("Fig 7: in-plane variant speedup over nvstencil (SP, TXxTY tuned, no RB)");
    table.maybe_csv(&opts.csv_dir, "fig7");
    println!("\nPaper shape: full-slice consistently ~1.2-1.4x; horizontal close behind;");
    println!("vertical competitive at low orders but significant slowdowns at orders 10-12.");
}
