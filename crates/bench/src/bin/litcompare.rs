//! Regenerates the section V-B literature comparison.
use stencil_bench::{exp::litcompare, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    litcompare::render(&litcompare::compute(&opts))
        .print("Section V-B: comparison with previous work");
}
