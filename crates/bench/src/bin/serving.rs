//! Traffic-replay serving bench: drive a [`TuneServer`] with a Zipfian
//! key mix and persist the serving trajectory as `BENCH_serving.json`.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin serving -- \
//!     --requests 2000 --workers 4 --zipf 1.1 --burst 0.2 --out BENCH_serving.json
//! ```
//!
//! The bench replays one trace twice: **cold** against an empty store
//! (every distinct key pays its search once) and **warm** against the
//! fully-populated server (everything must come back from the LRU or
//! the store with *zero* re-searches — the bench exits non-zero if it
//! does not). `--smoke` shrinks the universe to the CI mix, forces one
//! closed-loop worker, and additionally replays the cold trace on a
//! second fresh server to assert the tier/shed counts are
//! bit-deterministic.

use std::process::ExitCode;
use std::sync::Arc;

use stencil_tuneserve::{
    replay, zipf_trace, ReplayConfig, ReplayOutcome, ServerConfig, ServingReport, ShardedStore,
    TrafficMix, TuneServer,
};

struct Args {
    smoke: bool,
    requests: usize,
    workers: usize,
    zipf: f64,
    burst: f64,
    shards: usize,
    pool: usize,
    lru: usize,
    seed: u64,
    budget_us: Option<u64>,
    store_dir: Option<String>,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: serving [--smoke] [--requests N] [--workers N] [--zipf S] [--burst P]\n\
         \x20              [--shards N] [--pool N] [--lru N] [--seed N] [--budget-us N]\n\
         \x20              [--store-dir DIR] [--out PATH]\n\
         --smoke     small fixed-seed universe, one closed-loop worker, plus a\n\
         \x20           determinism re-run of the cold replay (the CI configuration)\n\
         --zipf      Zipf exponent of the key popularity (default 1.1)\n\
         --burst     probability a request repeats the previous key (default 0.2)\n\
         --pool      compute-pool permit bound (0 = shed every fresh search)\n\
         --budget-us per-request deadline budget in microseconds\n\
         --store-dir back the shards with JSONL files under DIR instead of memory"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let defaults = ReplayConfig::default();
    let mut args = Args {
        smoke: false,
        requests: defaults.requests,
        workers: defaults.workers,
        zipf: defaults.zipf_exponent,
        burst: defaults.burstiness,
        shards: 8,
        pool: ServerConfig::default().pool_limit,
        lru: ServerConfig::default().lru_capacity,
        seed: defaults.seed,
        budget_us: None,
        store_dir: None,
        out: "BENCH_serving.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--requests" => args.requests = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => args.zipf = val().parse().unwrap_or_else(|_| usage()),
            "--burst" => args.burst = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = val().parse().unwrap_or_else(|_| usage()),
            "--pool" => args.pool = val().parse().unwrap_or_else(|_| usage()),
            "--lru" => args.lru = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--budget-us" => args.budget_us = Some(val().parse().unwrap_or_else(|_| usage())),
            "--store-dir" => args.store_dir = Some(val()),
            "--out" => args.out = val(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.smoke {
        // The CI configuration: small universe, fixed seed, one
        // closed-loop worker so the provenance mix is deterministic.
        args.requests = args.requests.min(400);
        args.workers = 1;
    }
    args
}

fn fresh_server(args: &Args) -> TuneServer {
    let store = match &args.store_dir {
        Some(dir) => Arc::new(
            ShardedStore::open_dir(dir, args.shards).expect("cannot open sharded store dir"),
        ),
        None => Arc::new(ShardedStore::mem(args.shards)),
    };
    TuneServer::with_global_ctx(
        store,
        ServerConfig {
            pool_limit: args.pool,
            lru_capacity: args.lru,
        },
    )
}

fn print_outcome(label: &str, r: &ReplayOutcome) {
    println!(
        "{label}: {} offered | {:.0} req/s | p50 {}us p99 {}us p999 {}us | shed {:.2}%",
        r.offered,
        r.throughput_rps,
        r.latency.p50_micros,
        r.latency.p99_micros,
        r.latency.p999_micros,
        100.0 * r.shed_rate(),
    );
    let t = &r.tiers;
    println!(
        "  tiers: lru {} / store {} / shared {} / warm {} / computed {}  (cache-served {:.1}%)",
        t.lru,
        t.store,
        t.shared,
        t.warm_started,
        t.computed,
        100.0 * r.cache_served_ratio(),
    );
    let s = &r.sheds;
    if s.total() > 0 {
        println!(
            "  sheds: SRV-001 {} / SRV-002 {} / SRV-003 {}",
            s.saturated, s.over_budget, s.deadline
        );
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mix = if args.smoke {
        TrafficMix::smoke()
    } else {
        TrafficMix::standard()
    };
    let universe = mix.universe();
    assert!(!universe.is_empty(), "traffic universe is empty");
    let trace = zipf_trace(
        universe.len(),
        args.requests,
        args.zipf,
        args.burst,
        args.seed,
    );
    println!(
        "serving bench: {} keys, {} requests, {} worker(s), zipf {}, burst {}, pool {}, lru {}",
        universe.len(),
        trace.len(),
        args.workers,
        args.zipf,
        args.burst,
        args.pool,
        args.lru,
    );

    let server = fresh_server(&args);
    let cold = replay(&server, &universe, &trace, args.workers, args.budget_us);
    print_outcome("cold", &cold);

    let mut failures = Vec::new();
    if cold.tiers.total() + cold.sheds.total() != cold.offered {
        failures.push("cold replay lost requests (served + shed != offered)".to_string());
    }

    if args.smoke && args.store_dir.is_none() {
        // Determinism: the same trace against a second fresh server
        // must serve the exact same tier/shed mix.
        let rerun = replay(
            &fresh_server(&args),
            &universe,
            &trace,
            args.workers,
            args.budget_us,
        );
        if rerun.deterministic_shape() == cold.deterministic_shape() {
            println!("determinism: cold replay re-run matches exactly");
        } else {
            failures.push(format!(
                "cold replay is not deterministic: {:?} vs {:?}",
                cold.deterministic_shape(),
                rerun.deterministic_shape()
            ));
        }
    }

    let warm = replay(&server, &universe, &trace, args.workers, args.budget_us);
    print_outcome("warm", &warm);
    // The zero-re-search contract holds when the cold pass persisted
    // every key it met — i.e. shed nothing. A cold pass that shed
    // (offered load beyond the pool bound) leaves those keys unsearched
    // on purpose, so the warm pass is entitled to compute them.
    if cold.sheds.total() == 0 {
        let re_searches = warm.tiers.computed + warm.tiers.warm_started;
        if re_searches != 0 {
            failures.push(format!(
                "warm replay ran {re_searches} searches (expected 0)"
            ));
        }
        if warm.cache_served_ratio() < 0.9 {
            failures.push(format!(
                "warm replay cache-served ratio {:.3} below the 0.9 floor",
                warm.cache_served_ratio()
            ));
        }
    } else {
        println!(
            "note: cold replay shed {} requests — warm zero-re-search check not applicable",
            cold.sheds.total()
        );
    }

    let report = ServingReport {
        config: ReplayConfig {
            requests: args.requests,
            workers: args.workers,
            zipf_exponent: args.zipf,
            burstiness: args.burst,
            budget_micros: args.budget_us,
            seed: args.seed,
        },
        shards: args.shards,
        pool_limit: args.pool,
        lru_capacity: args.lru,
        universe_keys: universe.len(),
        cold,
        warm,
        stats: server.stats(),
    };
    if let Err(e) = report.write(&args.out) {
        failures.push(format!("cannot write {}: {e}", args.out));
    } else {
        println!("wrote {}", args.out);
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
