//! Regenerates Fig 8: auto-tuning performance surfaces over (RX, RY).
use stencil_bench::{exp::fig8, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    for panel in fig8::compute(&opts) {
        fig8::render(&panel).print(&format!(
            "Fig 8: order-{} SP surface on GTX580 at (TX, TY) = ({}, {}) [MPoint/s]",
            panel.order, panel.tx, panel.ty
        ));
        let peak = panel.peak();
        println!(
            "peak: {:.0} MPoint/s at (RX, RY) = ({}, {})",
            peak.mpoints, peak.rx, peak.ry
        );
    }
    println!("\nPaper: order-2 peak 17294 MPoint/s at (256,1,1,8); order-8 best at (32,4,1,4).");
}
