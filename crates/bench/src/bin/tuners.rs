//! Compare the three tuning strategies — exhaustive, model-based (§VI)
//! and stochastic (the §II alternative for large spaces) — on quality
//! versus configurations executed.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin tuners [-- --quick]
//! ```
//!
//! With `--store <path>` (or `INPLANE_TUNE_STORE`) every strategy's
//! result persists; a second run is served from disk and the closing
//! report shows the store and evaluation-cache counters.

use gpu_sim::DeviceSpec;
use inplane_core::{execute_step, EvalContext, ExecStats, KernelSpec, Method, Variant};
use stencil_autotune::{
    exhaustive_tune_with, model_based_tune_with, stochastic_tune_with, summarize_with,
    AnnealOptions, ParameterSpace, TuneOutcome,
};
use stencil_bench::exp::service_at;
use stencil_bench::{fmt, RunOpts};
use stencil_grid::{Boundary, FillPattern, Grid3, Precision, StarStencil};
use stencil_tunestore::{TuneRequest, TuneService, TunerSpec};

/// Replay the winning configuration functionally through the plan
/// interpreter on a small grid: the instrumented [`ExecStats`] tie the
/// tuned pick back to the schedule it actually executes (staged cells
/// per zone, barriers, rotations, redundancy).
fn replay_winner(kernel: &KernelSpec, config: &inplane_core::LaunchConfig) -> ExecStats {
    let n = 4 * kernel.radius + 8;
    let s: StarStencil<f32> = StarStencil::from_order(2 * kernel.radius);
    let input: Grid3<f32> = FillPattern::HashNoise.build(n, n, n);
    let mut out = Grid3::new(n, n, n);
    execute_step(
        kernel.method,
        &s,
        config,
        &input,
        &mut out,
        Boundary::CopyInput,
    )
}

/// Resolve one strategy, through the service when one is mounted.
/// Returns the outcome plus the configurations the *producing* search
/// executed (meaningful even when the result was served from the store).
fn run_strategy(
    svc: Option<&TuneService>,
    dev: &DeviceSpec,
    kernel: &KernelSpec,
    dims: gpu_sim::GridDims,
    space: &ParameterSpace,
    tuner: TunerSpec,
    seed: u64,
) -> (TuneOutcome, usize) {
    match svc {
        Some(svc) => {
            let resp = svc.resolve(&TuneRequest {
                device: dev.clone(),
                kernel: kernel.clone(),
                dims,
                space: space.clone(),
                tuner,
                seed,
            });
            let executed = resp.evaluated as usize;
            (resp.into_outcome(), executed)
        }
        None => {
            let ctx = EvalContext::global();
            match tuner {
                TunerSpec::Exhaustive => {
                    let out = exhaustive_tune_with(ctx, dev, kernel, dims, space, seed);
                    let executed = out.evaluated();
                    (out, executed)
                }
                TunerSpec::ModelBased { beta_percent } => {
                    let out =
                        model_based_tune_with(ctx, dev, kernel, dims, space, beta_percent, seed);
                    let executed = out.executed;
                    (out.into_outcome(), executed)
                }
                TunerSpec::Stochastic(opts) => {
                    let out = stochastic_tune_with(ctx, dev, kernel, dims, space, &opts, seed);
                    let executed = out.executed;
                    (out.into_outcome(), executed)
                }
            }
        }
    }
}

fn main() {
    let opts = RunOpts::from_env();
    let dims = opts.dims();
    let svc = opts.tune_store.as_deref().and_then(service_at);
    let mut table = fmt::Table::new(&[
        "Device",
        "Order",
        "Strategy",
        "Executed",
        "MP/s",
        "of exhaustive",
        "From",
    ]);
    let mut last_report = None;
    for dev in DeviceSpec::paper_devices() {
        for order in [2usize, 8] {
            let kernel = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let (space, audit) = if opts.quick {
                (ParameterSpace::quick_space(&dev, &kernel, &dims), None)
            } else {
                let (space, audit) = ParameterSpace::paper_space_audited(&dev, &kernel, &dims);
                (space, Some(audit))
            };
            let (ex, ex_executed) = run_strategy(
                svc.as_ref(),
                &dev,
                &kernel,
                dims,
                &space,
                TunerSpec::Exhaustive,
                opts.seed,
            );
            let (mb, mb_executed) = run_strategy(
                svc.as_ref(),
                &dev,
                &kernel,
                dims,
                &space,
                TunerSpec::ModelBased { beta_percent: 5.0 },
                opts.seed,
            );
            // Budget the annealer by the model-based tuner's *search*
            // execution count (stable across store-served reruns, so the
            // stochastic key — and thus its store hit — is too).
            let anneal_opts = AnnealOptions {
                evaluations: mb_executed.max(1),
                ..AnnealOptions::default()
            };
            let (sa, sa_executed) = run_strategy(
                svc.as_ref(),
                &dev,
                &kernel,
                dims,
                &space,
                TunerSpec::Stochastic(anneal_opts),
                opts.seed,
            );
            for (name, out, executed) in [
                ("exhaustive", &ex, ex_executed),
                ("model-based 5%", &mb, mb_executed),
                ("simulated annealing", &sa, sa_executed),
            ] {
                table.row(vec![
                    dev.name.to_string(),
                    order.to_string(),
                    name.to_string(),
                    executed.to_string(),
                    fmt::f(out.best.mpoints, 0),
                    fmt::f(out.best.mpoints / ex.best.mpoints, 3),
                    out.provenance.label().to_string(),
                ]);
            }
            last_report = Some((dev.clone(), kernel, ex, audit));
        }
    }
    table.print("Tuning strategies: quality vs configurations executed");
    if let Some((dev, kernel, ex, audit)) = &last_report {
        let mut report = match &svc {
            Some(svc) => summarize_with(svc.ctx(), dev, kernel, dims, ex)
                .with_store(svc.store().stats().counters()),
            None => summarize_with(EvalContext::global(), dev, kernel, dims, ex),
        };
        if let Some(audit) = audit {
            report = report.with_rejections(audit.rejections.clone());
        }
        report = report.with_exec(replay_winner(kernel, &ex.best.config));
        println!("\nlast exhaustive run ({} on {}):", kernel.name, dev.name);
        println!("{}", report.render());
    }
    println!("\nThe model-based tuner (the paper's section VI) and the stochastic tuner");
    println!("(the section II alternative) both run on a small fraction of the space;");
    println!("the model-based ranking is the stronger prior on this landscape.");
}
