//! Compare the three tuning strategies — exhaustive, model-based (§VI)
//! and stochastic (the §II alternative for large spaces) — on quality
//! versus configurations executed.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin tuners [-- --quick]
//! ```

use gpu_sim::DeviceSpec;
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{
    exhaustive_tune, model_based_tune, stochastic_tune, AnnealOptions, ParameterSpace,
};
use stencil_bench::{fmt, RunOpts};
use stencil_grid::Precision;

fn main() {
    let opts = RunOpts::from_env();
    let dims = opts.dims();
    let mut table = fmt::Table::new(&[
        "Device",
        "Order",
        "Strategy",
        "Executed",
        "MP/s",
        "of exhaustive",
    ]);
    for dev in DeviceSpec::paper_devices() {
        for order in [2usize, 8] {
            let kernel = KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            );
            let space = if opts.quick {
                ParameterSpace::quick_space(&dev, &kernel, &dims)
            } else {
                ParameterSpace::paper_space(&dev, &kernel, &dims)
            };
            let ex = exhaustive_tune(&dev, &kernel, dims, &space, opts.seed);
            let mb = model_based_tune(&dev, &kernel, dims, &space, 5.0, opts.seed);
            let anneal_opts = AnnealOptions {
                evaluations: mb.executed,
                ..AnnealOptions::default()
            };
            let sa = stochastic_tune(&dev, &kernel, dims, &space, &anneal_opts, opts.seed);
            for (name, executed, mpoints) in [
                ("exhaustive", space.len(), ex.best.mpoints),
                ("model-based 5%", mb.executed, mb.best.mpoints),
                ("simulated annealing", sa.executed, sa.best.mpoints),
            ] {
                table.row(vec![
                    dev.name.to_string(),
                    order.to_string(),
                    name.to_string(),
                    executed.to_string(),
                    fmt::f(mpoints, 0),
                    fmt::f(mpoints / ex.best.mpoints, 3),
                ]);
            }
        }
    }
    table.print("Tuning strategies: quality vs configurations executed");
    println!("\nThe model-based tuner (the paper's section VI) and the stochastic tuner");
    println!("(the section II alternative) both run on a small fraction of the space;");
    println!("the model-based ranking is the stronger prior on this landscape.");
}
