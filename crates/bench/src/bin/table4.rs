//! Regenerates Table IV: auto-tuned full-slice results (SP & DP).
use stencil_bench::{exp::table4, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = table4::compute(&opts);
    let table = table4::render(&cells);
    table.print("Table IV: auto-tuned in-plane full-slice (thread + register blocking)");
    table.maybe_csv(&opts.csv_dir, "table4");
}
