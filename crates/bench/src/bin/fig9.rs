//! Regenerates Fig 9: global-memory load efficiency comparison.
use stencil_bench::{exp::fig9, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = fig9::compute(&opts);
    let table = fig9::render(&cells);
    table.print("Fig 9: global memory load efficiency (tuned, SP)");
    table.maybe_csv(&opts.csv_dir, "fig9");
    println!("\nPaper shape: full-slice efficiency above nvstencil at every order on every GPU.");
}
