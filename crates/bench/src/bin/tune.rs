//! User-facing auto-tuning CLI: pick a device, stencil order, precision
//! and method, and get the tuned configuration — the workflow the
//! paper's auto-tuning engine supports, as a tool.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin tune -- \
//!     --device gtx680 --order 8 --precision sp --method full-slice \
//!     --beta 5 --lx 512 --ly 512 --lz 256
//! ```

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{exhaustive_tune, model_based_tune, ParameterSpace};
use stencil_bench::exp::service_at;
use stencil_bench::opts::TUNE_STORE_ENV;
use stencil_grid::Precision;
use stencil_tunestore::{TuneRequest, TunerSpec};

struct Args {
    device: DeviceSpec,
    order: usize,
    precision: Precision,
    method: Method,
    beta: Option<f64>,
    dims: GridDims,
    seed: u64,
    store: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tune [--device gtx580|gtx680|c2070] [--order N] [--precision sp|dp]\n\
         \x20           [--method nvstencil|classical|vertical|horizontal|full-slice]\n\
         \x20           [--beta PCT] [--lx N --ly N --lz N] [--seed N] [--store PATH]\n\
         --beta selects model-based tuning (execute only the top PCT% of the space);\n\
         without it the search is exhaustive.\n\
         --store (or INPLANE_TUNE_STORE) persists results; a repeated run is\n\
         served from disk bit-identically without re-searching."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        device: DeviceSpec::gtx580(),
        order: 4,
        precision: Precision::Single,
        method: Method::InPlane(Variant::FullSlice),
        beta: None,
        dims: GridDims::paper(),
        seed: 1,
        store: std::env::var(TUNE_STORE_ENV).ok().filter(|p| !p.is_empty()),
    };
    let mut it = std::env::args().skip(1);
    let (mut lx, mut ly, mut lz) = (512usize, 512usize, 256usize);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--device" => {
                args.device = match val().as_str() {
                    "gtx580" => DeviceSpec::gtx580(),
                    "gtx680" => DeviceSpec::gtx680(),
                    "c2070" => DeviceSpec::c2070(),
                    _ => usage(),
                }
            }
            "--order" => args.order = val().parse().unwrap_or_else(|_| usage()),
            "--precision" => {
                args.precision = match val().as_str() {
                    "sp" => Precision::Single,
                    "dp" => Precision::Double,
                    _ => usage(),
                }
            }
            "--method" => {
                args.method = match val().as_str() {
                    "nvstencil" | "forward" => Method::ForwardPlane,
                    "classical" => Method::InPlane(Variant::Classical),
                    "vertical" => Method::InPlane(Variant::Vertical),
                    "horizontal" => Method::InPlane(Variant::Horizontal),
                    "full-slice" => Method::InPlane(Variant::FullSlice),
                    _ => usage(),
                }
            }
            "--beta" => args.beta = Some(val().parse().unwrap_or_else(|_| usage())),
            "--lx" => lx = val().parse().unwrap_or_else(|_| usage()),
            "--ly" => ly = val().parse().unwrap_or_else(|_| usage()),
            "--lz" => lz = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--store" => args.store = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args.dims = GridDims::new(lx, ly, lz);
    args
}

fn main() {
    let a = parse_args();
    let kernel = KernelSpec::star_order(a.method, a.order, a.precision);
    println!(
        "tuning {} on {} over {}x{}x{}",
        kernel.name, a.device.name, a.dims.lx, a.dims.ly, a.dims.lz
    );
    let (space, audit) = ParameterSpace::paper_space_audited(&a.device, &kernel, &a.dims);
    println!(
        "{} feasible configurations ({} grid points examined)",
        space.len(),
        audit.examined
    );
    for (code, n) in &audit.rejections {
        println!("  rejected {code} x{n}");
    }
    if let Some(svc) = a.store.as_deref().and_then(service_at) {
        let tuner = match a.beta {
            Some(beta_percent) => TunerSpec::ModelBased { beta_percent },
            None => TunerSpec::Exhaustive,
        };
        let resp = svc.resolve(&TuneRequest {
            device: a.device,
            kernel,
            dims: a.dims,
            space,
            tuner,
            seed: a.seed,
        });
        println!(
            "optimal: {} -> {:.0} MPoint/s ({}, {} configurations executed)",
            resp.best.config,
            resp.best.mpoints,
            resp.provenance.label(),
            resp.evaluated
        );
        let s = svc.store().stats();
        println!(
            "tune store: {} hits / {} misses / {} corrupt-or-stale skipped",
            s.hits,
            s.misses,
            s.skipped()
        );
        return;
    }
    match a.beta {
        Some(beta) => {
            let out = model_based_tune(&a.device, &kernel, a.dims, &space, beta, a.seed);
            println!(
                "model-based (beta = {beta}%): executed {} configurations",
                out.executed
            );
            println!(
                "optimal: {} -> {:.0} MPoint/s",
                out.best.config, out.best.mpoints
            );
        }
        None => {
            let out = exhaustive_tune(&a.device, &kernel, a.dims, &space, a.seed);
            println!(
                "optimal: {} -> {:.0} MPoint/s",
                out.best.config, out.best.mpoints
            );
            println!("runners-up:");
            for s in out.top(6).iter().skip(1) {
                println!("  {} -> {:.0} MPoint/s", s.config, s.mpoints);
            }
        }
    }
}
