//! Regenerates the paper's Table I (stencil specifications).
fn main() {
    stencil_bench::exp::table1::render().print("Table I: stencil kernel specifications");
}
