//! Regenerates Fig 12: model-based vs exhaustive auto-tuning (beta = 5%),
//! plus a beta-sensitivity sweep showing where the model-vs-measurement
//! gap appears.
use stencil_bench::{exp::fig12, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = fig12::compute(&opts, 5.0);
    let table = fig12::render(&cells);
    table.print("Fig 12: model-based (beta = 5%) vs exhaustive auto-tuning (SP)");
    table.maybe_csv(&opts.csv_dir, "fig12");
    let (mean, worst) = fig12::gap_stats(&cells);
    println!(
        "\nbeta = 5%: mean gap {:.1}%; worst gap {:.1}%",
        mean * 100.0,
        worst * 100.0
    );
    println!("Paper: ~2% mean, ~6% worst (on GTX680).");
    println!("\nbeta sensitivity (mean / worst gap):");
    for beta in [0.2f64, 0.5, 1.0, 2.0] {
        let c = fig12::compute(&opts, beta);
        let (m, w) = fig12::gap_stats(&c);
        println!("  beta {beta:4}%: {:.2}% / {:.2}%", m * 100.0, w * 100.0);
    }
    println!("\nOur analytic model shares the occupancy calculator with the simulated");
    println!("hardware, so it needs only ~0.5% of the space to reach the accuracy the");
    println!("paper's model reached at 5%; the beta sweep shows the same gap mechanism.");
}
