//! Concurrency-proof bench: run the serving layer's `conc-check`
//! proofs at a large schedule budget and persist the exploration
//! counts as `BENCH_conc.json`.
//!
//! Each proof drives a shipped serving core (compute pool, single
//! flight, hot-key LRU, sharded store) under the deterministic model
//! checker, exploring bounded-exhaustive interleavings plus injected
//! leader panics and spurious condvar wakeups. The process exits
//! non-zero when any proof reports a finding or when the combined
//! exploration falls short of `--min-schedules` — so CI fails loudly
//! on both a concurrency bug and a silently shrunken search.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin conc -- --budget 16384 --out BENCH_conc.json
//! ```

use conc_check::CheckReport;
use stencil_tuneserve::conc::{self, ProofOutcome};
use stencil_tunestore::atomic_write;

/// Version of the JSON document layout; the golden-schema test in
/// `crates/tuneserve/tests/conc_proofs.rs` exercises the same proofs.
const SCHEMA_VERSION: u64 = 1;

struct Args {
    budget: u64,
    min_schedules: u64,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: conc [--budget N] [--min-schedules N] [--out BENCH_conc.json]\n\
         Runs the serving layer's conc-check proofs (pool admission, permit\n\
         unwind, single-flight burst, LRU adversarial, shard isolation) with a\n\
         per-proof schedule budget and writes the exploration report. Exits\n\
         non-zero on any CCK-* finding or an under-explored run."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: 16_384,
        min_schedules: 10_000,
        out: "BENCH_conc.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--budget" => args.budget = val().parse().unwrap_or_else(|_| usage()),
            "--min-schedules" => args.min_schedules = val().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = val(),
            _ => usage(),
        }
    }
    args
}

fn report_json(out: &mut String, r: &CheckReport) {
    out.push_str(&format!(
        concat!(
            "\"schedules\": {schedules}, \"pruned\": {pruned}, ",
            "\"exhausted\": {exhausted}, \"max_depth\": {depth}, \"seed\": {seed}, ",
            "\"findings\": ["
        ),
        schedules = r.schedules,
        pruned = r.pruned,
        exhausted = r.exhausted,
        depth = r.max_depth,
        seed = r.seed,
    ));
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{ \"code\": \"{}\", \"trace\": \"{}\" }}",
            f.code, f.trace
        ));
    }
    out.push(']');
}

fn to_json(budget: u64, outcomes: &[ProofOutcome]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"budget_per_proof\": {budget},\n"));
    out.push_str(&format!(
        "  \"total_schedules\": {},\n",
        conc::total_schedules(outcomes)
    ));
    out.push_str(&format!("  \"clean\": {},\n", conc::all_ok(outcomes)));
    out.push_str("  \"proofs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"claim\": \"{}\", ",
            o.name, o.claim
        ));
        report_json(&mut out, &o.report);
        out.push_str(" }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    let outcomes = conc::run_all(args.budget);

    let mut failed = false;
    for o in &outcomes {
        let r = &o.report;
        let status = if r.ok() {
            if r.exhausted {
                "proved (exhaustive)"
            } else {
                "clean (budget-bounded)"
            }
        } else {
            failed = true;
            "FAILED"
        };
        println!(
            "{:<20} {:>7} schedules  {:>6} pruned  depth {:>3}  {}",
            o.name, r.schedules, r.pruned, r.max_depth, status
        );
        for f in r.errors() {
            eprintln!("  {f}");
        }
        for f in r.warnings() {
            eprintln!("  warning: {f}");
        }
    }

    let total = conc::total_schedules(&outcomes);
    println!("total: {total} schedules across {} proofs", outcomes.len());
    if total < args.min_schedules {
        eprintln!(
            "under-explored: {total} schedules < required {}",
            args.min_schedules
        );
        failed = true;
    }

    let doc = to_json(args.budget, &outcomes);
    if let Err(e) = atomic_write(std::path::Path::new(&args.out), doc) {
        eprintln!("cannot write {}: {e}", args.out);
        failed = true;
    } else {
        println!("wrote {}", args.out);
    }
    std::process::exit(if failed { 1 } else { 0 });
}
