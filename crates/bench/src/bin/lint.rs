//! Static-analysis sweep over the full tuning grid: every launch
//! configuration of every method is checked by `stencil-lint`'s
//! analyzers (feasibility, schedule, coverage, coalescing, generated
//! source and the whole-plan dataflow proof), and the process exits
//! non-zero if any *feasible* configuration produces an error-severity
//! diagnostic or any infeasible configuration lacks a coded rejection
//! reason.
//!
//! With `--verify-kernels` each feasible, codegen-applicable
//! configuration additionally has its emitted CUDA (and, where
//! supported, OpenCL) source parsed and abstractly interpreted by the
//! kernel verifier — any `LNT-K…` error fails the sweep like every
//! other error-severity finding.
//!
//! With `--json` the output is a single machine-readable document:
//! `schema_version`, `verify_kernels`, one sweep report per (device,
//! kernel, method), and a per-method `oracle` section pairing the
//! whole-plan dataflow histogram with the static traffic oracle's
//! predictions for a representative plan.
//!
//! ```sh
//! cargo run --release --bin lint -- --device gtx580 --kernel laplacian --json
//! ```

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{lower_step, KernelSpec, LaunchConfig, Method, Variant};
use stencil_apps::{Hyperthermia, Laplacian3d, Poisson, Upstream};
use stencil_grid::{MultiGridKernel, Precision};
use stencil_lint::sweep::{
    enumerate_configs, enumerate_configs_quick, lint_configs_opts, LintOptions, SweepReport,
};
use stencil_lint::{analyze_plan, predict_traffic_on};

/// Version of the `--json` document layout; the golden-schema test in
/// `tests/lint_json.rs` pins it. v2 added the `verify_kernels` flag
/// echo alongside the kernel-verifier sweep option; v3 added the
/// `segment_bytes` field to the traffic-oracle entries and the
/// wave64/Ampere device names.
const SCHEMA_VERSION: u32 = 3;

struct Args {
    devices: Vec<DeviceSpec>,
    kernels: Vec<&'static str>,
    precision: Precision,
    json: bool,
    quick: bool,
    verify_kernels: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [--device gtx580|gtx680|c2070|hd7970|rtx3090|all]\n\
         \x20           [--kernel laplacian|poisson|hyperthermia|upstream|all]\n\
         \x20           [--precision sp|dp] [--json] [--quick] [--verify-kernels]\n\
         Sweeps the full (TX, TY, RX, RY) tuning grid for every method variant and\n\
         reports coded diagnostics. Exits non-zero when a feasible configuration\n\
         carries an error-severity diagnostic or a rejection is unexplained.\n\
         --verify-kernels additionally proves the emitted CUDA/OpenCL source by\n\
         abstract interpretation (LNT-K diagnostics)."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: vec![DeviceSpec::gtx580()],
        kernels: vec!["laplacian"],
        precision: Precision::Single,
        json: false,
        quick: false,
        verify_kernels: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--device" => {
                args.devices = match val().as_str() {
                    "gtx580" => vec![DeviceSpec::gtx580()],
                    "gtx680" => vec![DeviceSpec::gtx680()],
                    "c2070" => vec![DeviceSpec::c2070()],
                    "hd7970" => vec![DeviceSpec::hd7970()],
                    "rtx3090" => vec![DeviceSpec::rtx3090()],
                    "all" => DeviceSpec::all_devices().to_vec(),
                    _ => usage(),
                }
            }
            "--kernel" => {
                args.kernels = match val().as_str() {
                    "laplacian" => vec!["laplacian"],
                    "poisson" => vec!["poisson"],
                    "hyperthermia" => vec!["hyperthermia"],
                    "upstream" => vec!["upstream"],
                    "all" => vec!["laplacian", "poisson", "hyperthermia", "upstream"],
                    _ => usage(),
                }
            }
            "--precision" => {
                args.precision = match val().as_str() {
                    "sp" => Precision::Single,
                    "dp" => Precision::Double,
                    _ => usage(),
                }
            }
            "--json" => args.json = true,
            "--quick" => args.quick = true,
            "--verify-kernels" => args.verify_kernels = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// Kernel specs for one named application at one precision: the
/// forward-plane baseline plus every in-plane variant.
fn specs_for(kernel: &str, precision: Precision) -> Vec<KernelSpec> {
    let methods = [
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ];
    methods
        .iter()
        .map(|&m| match precision {
            Precision::Single => app_spec::<f32>(kernel, m),
            Precision::Double => app_spec::<f64>(kernel, m),
        })
        .collect()
}

fn app_spec<T: stencil_grid::Real>(kernel: &str, method: Method) -> KernelSpec {
    match kernel {
        "laplacian" => {
            KernelSpec::from_app(method, &Laplacian3d::default() as &dyn MultiGridKernel<T>)
        }
        "poisson" => KernelSpec::from_app(method, &Poisson::default() as &dyn MultiGridKernel<T>),
        "hyperthermia" => KernelSpec::from_app(method, &Hyperthermia as &dyn MultiGridKernel<T>),
        "upstream" => KernelSpec::from_app(method, &Upstream::default() as &dyn MultiGridKernel<T>),
        _ => unreachable!("parse_args validated the kernel name"),
    }
}

/// One JSON entry pairing the whole-plan dataflow histogram with the
/// static traffic oracle's predictions on a representative plan: a few
/// tiles of a wavefront-aligned configuration, enough planes for
/// prologue, steady state and drain. The oracle runs against the
/// device's own coalescing geometry (64-byte segments on wave64).
fn oracle_json(device: &DeviceSpec, spec: &KernelSpec, precision: Precision) -> String {
    let r = spec.radius;
    let config = LaunchConfig::new(device.half_wavefront(), 2, 1, 1);
    let dims = (
        2 * r + 2 * config.tile_x(),
        2 * r + 2 * config.tile_y(),
        4 * r + 2,
    );
    let plan = lower_step(spec.method, &config, r, dims);
    let report = analyze_plan(&plan);
    let traffic = predict_traffic_on(&plan, precision, device);
    format!(
        "{{\"device\":\"{}\",\"kernel\":\"{}\",\"method\":\"{}\",\
         \"dataflow\":{},\"traffic\":{}}}",
        device.name,
        spec.name,
        spec.method.label(),
        report.to_json(),
        traffic.to_json(),
    )
}

fn main() {
    let args = parse_args();
    let dims = GridDims::paper();
    let opts = LintOptions {
        verify_kernels: args.verify_kernels,
    };
    let mut reports: Vec<SweepReport> = Vec::new();
    let mut oracles: Vec<String> = Vec::new();

    for device in &args.devices {
        let configs = if args.quick {
            enumerate_configs_quick(device)
        } else {
            enumerate_configs(device)
        };
        for kernel_name in &args.kernels {
            for spec in specs_for(kernel_name, args.precision) {
                let results = lint_configs_opts(device, &spec, &dims, &configs, opts);
                reports.push(SweepReport::from_results(device, &spec, &results));
                if args.json {
                    oracles.push(oracle_json(device, &spec, args.precision));
                }
            }
        }
    }

    let failed = reports.iter().filter(|r| !r.clean()).count();
    if args.json {
        let items: Vec<String> = reports.iter().map(SweepReport::to_json).collect();
        println!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"precision\":\"{}\",\
             \"verify_kernels\":{},\
             \"reports\":[{}],\"oracle\":[{}],\"failed\":{failed},\"clean\":{}}}",
            args.precision.label(),
            args.verify_kernels,
            items.join(","),
            oracles.join(","),
            failed == 0
        );
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
        let examined: usize = reports.iter().map(|r| r.examined).sum();
        let feasible: usize = reports.iter().map(|r| r.feasible).sum();
        println!(
            "total: {} sweeps, {examined} configurations examined, {feasible} feasible, {failed} failed",
            reports.len()
        );
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
