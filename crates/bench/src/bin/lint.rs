//! Static-analysis sweep over the full tuning grid: every launch
//! configuration of every method is checked by `stencil-lint`'s
//! analyzers (feasibility, schedule, coverage, coalescing, generated
//! source), and the process exits non-zero if any *feasible*
//! configuration produces an error-severity diagnostic or any infeasible
//! configuration lacks a coded rejection reason.
//!
//! ```sh
//! cargo run --release --bin lint -- --device gtx580 --kernel laplacian --json
//! ```

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use stencil_apps::{Hyperthermia, Laplacian3d, Poisson};
use stencil_grid::MultiGridKernel;
use stencil_lint::sweep::{enumerate_configs, enumerate_configs_quick, lint_configs, SweepReport};

struct Args {
    devices: Vec<DeviceSpec>,
    kernels: Vec<&'static str>,
    json: bool,
    quick: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint [--device gtx580|gtx680|c2070|all] [--kernel laplacian|poisson|hyperthermia|all]\n\
         \x20           [--json] [--quick]\n\
         Sweeps the full (TX, TY, RX, RY) tuning grid for every method variant and\n\
         reports coded diagnostics. Exits non-zero when a feasible configuration\n\
         carries an error-severity diagnostic or a rejection is unexplained."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: vec![DeviceSpec::gtx580()],
        kernels: vec!["laplacian"],
        json: false,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--device" => {
                args.devices = match val().as_str() {
                    "gtx580" => vec![DeviceSpec::gtx580()],
                    "gtx680" => vec![DeviceSpec::gtx680()],
                    "c2070" => vec![DeviceSpec::c2070()],
                    "all" => DeviceSpec::paper_devices().to_vec(),
                    _ => usage(),
                }
            }
            "--kernel" => {
                args.kernels = match val().as_str() {
                    "laplacian" => vec!["laplacian"],
                    "poisson" => vec!["poisson"],
                    "hyperthermia" => vec!["hyperthermia"],
                    "all" => vec!["laplacian", "poisson", "hyperthermia"],
                    _ => usage(),
                }
            }
            "--json" => args.json = true,
            "--quick" => args.quick = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// Kernel specs for one named application: the forward-plane baseline
/// plus every in-plane variant.
fn specs_for(kernel: &str) -> Vec<KernelSpec> {
    let methods = [
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ];
    methods
        .iter()
        .map(|&m| match kernel {
            "laplacian" => {
                KernelSpec::from_app(m, &Laplacian3d::default() as &dyn MultiGridKernel<f32>)
            }
            "poisson" => KernelSpec::from_app(m, &Poisson::default() as &dyn MultiGridKernel<f32>),
            "hyperthermia" => KernelSpec::from_app(m, &Hyperthermia as &dyn MultiGridKernel<f32>),
            _ => unreachable!("parse_args validated the kernel name"),
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let dims = GridDims::paper();
    let mut reports: Vec<SweepReport> = Vec::new();

    for device in &args.devices {
        let configs = if args.quick {
            enumerate_configs_quick(device)
        } else {
            enumerate_configs(device)
        };
        for kernel_name in &args.kernels {
            for spec in specs_for(kernel_name) {
                let results = lint_configs(device, &spec, &dims, &configs);
                reports.push(SweepReport::from_results(device, &spec, &results));
            }
        }
    }

    let failed = reports.iter().filter(|r| !r.clean()).count();
    if args.json {
        let items: Vec<String> = reports.iter().map(SweepReport::to_json).collect();
        println!(
            "{{\"reports\":[{}],\"failed\":{failed},\"clean\":{}}}",
            items.join(","),
            failed == 0
        );
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
        let examined: usize = reports.iter().map(|r| r.examined).sum();
        let feasible: usize = reports.iter().map(|r| r.feasible).sum();
        println!(
            "total: {} sweeps, {examined} configurations examined, {feasible} feasible, {failed} failed",
            reports.len()
        );
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
