//! Extension: in-plane vs 3.5-D temporal blocking (the section II / V-B
//! baseline of Nguyen et al.), on the simulated GTX580.
use stencil_bench::{exp::temporal_cmp, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = temporal_cmp::compute(&opts);
    temporal_cmp::render(&cells)
        .print("Extension: in-plane vs 3.5-D temporal blocking (SP, GTX580)");
    println!("\nTemporal blocking amortises traffic over T steps and can exceed the");
    println!("single-step DRAM roofline at order 2; its r*T halos and T+1 staged planes");
    println!("make it lose (or not fit) at higher orders — the crossover the in-plane");
    println!("method's single-sweep simplicity avoids.");
}
