//! Regenerates Fig 10: breakdown of speedup contributions.
use stencil_bench::{exp::fig10, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    let cells = fig10::compute(&opts);
    let table = fig10::render(&cells);
    table.print("Fig 10: speedup breakdown over tuned nvstencil (SP)");
    table.maybe_csv(&opts.csv_dir, "fig10");
    let (total, from_fs, from_rb) = fig10::summary(&cells);
    println!(
        "\nmean total gain {:.0}%; loading pattern {:.0}%; register blocking on top {:.0}%",
        total * 100.0,
        from_fs * 100.0,
        from_rb * 100.0
    );
    println!("Paper: ~36-42% total; ~18% from RB on full-slice; nvstencil+RB only ~11%.");
}
