//! Regenerates the paper's Table II (in-plane vs nvstencil op counts).
fn main() {
    stencil_bench::exp::table2::render()
        .print("Table II: operations per grid point, in-plane vs nvstencil");
}
