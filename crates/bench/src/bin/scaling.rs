//! Extension: multi-GPU strong and weak scaling of the tuned in-plane
//! kernel with z-slab decomposition and PCIe halo exchange.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin scaling [-- --quick]
//! ```

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_bench::{fmt, RunOpts};
use stencil_grid::Precision;
use stencil_multigpu::{simulate_scaling, Interconnect};

fn main() {
    let opts = RunOpts::from_env();
    let dev = DeviceSpec::gtx580();
    let ic = Interconnect::pcie2();
    let config = LaunchConfig::new(128, 4, 1, 2);

    for order in [2usize, 8] {
        let kernel = KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        );

        // Strong scaling: fixed global grid.
        let dims = opts.dims();
        let mut t = fmt::Table::new(&["GPUs", "step ms", "MPoint/s", "efficiency", "exchange %"]);
        for p in simulate_scaling(&dev, &kernel, &config, dims, &ic, 8) {
            t.row(vec![
                p.devices.to_string(),
                fmt::f(p.step_time_s * 1e3, 3),
                fmt::f(p.mpoints_per_s, 0),
                fmt::f(p.efficiency, 2),
                fmt::f(p.exchange_fraction * 100.0, 1),
            ]);
        }
        t.print(&format!(
            "Strong scaling, order-{order} SP in-plane on {}x GTX580 ({}x{}x{})",
            8, dims.lx, dims.ly, dims.lz
        ));
        t.maybe_csv(&opts.csv_dir, &format!("scaling_strong_order{order}"));

        // Weak scaling: grid depth grows with the device count.
        let mut w = fmt::Table::new(&["GPUs", "LZ", "step ms", "MPoint/s"]);
        for devices in 1..=8usize {
            let dims_w = GridDims::new(dims.lx, dims.ly, dims.lz * devices);
            if let Some(p) = simulate_scaling(&dev, &kernel, &config, dims_w, &ic, devices).last() {
                if p.devices == devices {
                    w.row(vec![
                        devices.to_string(),
                        dims_w.lz.to_string(),
                        fmt::f(p.step_time_s * 1e3, 3),
                        fmt::f(p.mpoints_per_s, 0),
                    ]);
                }
            }
        }
        w.print(&format!(
            "Weak scaling, order-{order} SP (LZ grows with device count)"
        ));
        w.maybe_csv(&opts.csv_dir, &format!("scaling_weak_order{order}"));
    }
    println!("\nStrong scaling saturates as the fixed per-step halo exchange stops");
    println!("shrinking; weak scaling stays near-flat — the standard distributed-stencil");
    println!("behaviour, composed from the single-GPU simulator plus a PCIe model.");
}
