//! Regenerates the paper's Table III (GPU specs + measured bandwidth).
fn main() {
    stencil_bench::exp::table3::render()
        .print("Table III: simulated GPU specifications and measured bandwidth");
}
