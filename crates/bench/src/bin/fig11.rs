//! Regenerates Fig 11 / Table V: application stencil benchmarks.
use stencil_bench::{exp::fig11, RunOpts};
fn main() {
    let opts = RunOpts::from_env();
    for r in fig11::compute(&opts) {
        fig11::render(&r).print(&format!(
            "Fig 11 / Table V: application stencils on {} ({})",
            r.device,
            r.precision.label()
        ));
    }
    println!(
        "\nPaper shape: Laplacian gains most (~1.8x); Hyperthermia least (coefficient-bound)."
    );
}
