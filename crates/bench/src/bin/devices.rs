//! Per-vendor device figure: every registered device fingerprint is
//! auto-tuned on the laplacian (SP, oracle-first Auto selection) and
//! the result persisted as `BENCH_devices.json` — the vendor-crossover
//! companion to the per-figure benches, and the CI proof that the
//! tuner, selector and traffic oracle operate on wave64 parts exactly
//! as they do on the paper's NVIDIA cards.
//!
//! ```sh
//! cargo run --release -p stencil-bench --bin devices -- --out BENCH_devices.json
//! ```
//!
//! One JSON row per device: identity (name, vendor, architecture,
//! fingerprint), the geometry the analysis stack consumed (wavefront
//! width, segment sizes, LDS bank shape), the Auto-selected routine
//! with its predicted-traffic ranking, and the tuned best
//! configuration with its throughput. The process exits non-zero if
//! any device fails to tune or the wave64 device is missing.

use std::process::ExitCode;

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use stencil_bench::exp::tune_best_auto;
use stencil_grid::Precision;
use stencil_lint::json_string;

struct Args {
    quick: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: devices [--full] [--out PATH]\n\
         Auto-tunes laplacian SP on every registered device (NVIDIA + wave64)\n\
         and writes a per-vendor JSON figure. --full searches the unreduced\n\
         space; the default quick grid is the CI configuration."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: true,
        out: "BENCH_devices.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => args.quick = false,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let dims = GridDims::paper();
    let devices = DeviceSpec::all_devices();
    assert!(
        devices.iter().any(|d| d.warp_size == 64),
        "registry must include a wave64 device"
    );

    let mut rows: Vec<String> = Vec::new();
    let mut failed = 0usize;
    for device in &devices {
        let kernel =
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
        match tune_best_auto(device, &kernel, dims, true, args.quick, 42) {
            Ok((choice, best)) => {
                let ranking: Vec<String> = choice
                    .ranking
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"label\":{},\"global_bytes\":{}}}",
                            json_string(&r.label),
                            r.global_bytes
                        )
                    })
                    .collect();
                println!(
                    "{:>18} [{}] {} wave{:<2} -> {} at {} = {:.0} MPoint/s",
                    device.name,
                    device.vendor(),
                    format_args!("{:016x}", device.fingerprint()),
                    device.warp_size,
                    choice.blueprint.method.label(),
                    best.config,
                    best.mpoints
                );
                rows.push(format!(
                    "{{\"device\":{},\"vendor\":{},\"arch\":\"{:?}\",\
                     \"fingerprint\":\"{:016x}\",\"warp_size\":{},\
                     \"segment_bytes\":{},\"coalesce_segment_bytes\":{},\
                     \"smem_banks\":{},\"smem_bank_bytes\":{},\
                     \"selected\":{},\"ranking\":[{}],\
                     \"best\":{{\"tx\":{},\"ty\":{},\"rx\":{},\"ry\":{}}},\
                     \"mpoints\":{:.1}}}",
                    json_string(device.name),
                    json_string(device.vendor()),
                    format_args!("{:?}", device.arch),
                    device.fingerprint(),
                    device.warp_size,
                    device.segment_bytes,
                    device.coalesce_segment_bytes,
                    device.smem_banks,
                    device.smem_bank_bytes,
                    json_string(&choice.blueprint.method.label()),
                    ranking.join(","),
                    best.config.tx,
                    best.config.ty,
                    best.config.rx,
                    best.config.ry,
                    best.mpoints
                ));
            }
            Err(diag) => {
                eprintln!("{}: auto-tune failed: {diag:?}", device.name);
                failed += 1;
            }
        }
    }

    let doc = format!(
        "{{\"schema_version\":1,\"kernel\":\"laplacian\",\"precision\":\"SP\",\
         \"quick\":{},\"devices\":[{}],\"failed\":{}}}",
        args.quick,
        rows.join(","),
        failed
    );
    if let Err(e) = std::fs::write(&args.out, &doc) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} devices, {} failed)",
        args.out,
        rows.len(),
        failed
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
