//! Command-line options shared by all experiment binaries.

use gpu_sim::GridDims;

/// Environment variable naming the persistent tune-store path every
/// tuning binary honors (`--store <path>` overrides it).
pub const TUNE_STORE_ENV: &str = "INPLANE_TUNE_STORE";

/// Run options parsed from the command line.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOpts {
    /// Reduced grid / search space for fast runs.
    pub quick: bool,
    /// Seed for the deterministic measurement noise.
    pub seed: u64,
    /// Directory to write per-experiment CSV data into (`--csv <dir>`).
    pub csv_dir: Option<String>,
    /// Path of the persistent tune store (`--store <path>`, or the
    /// `INPLANE_TUNE_STORE` environment variable).
    pub tune_store: Option<String>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            quick: false,
            seed: 1,
            csv_dir: None,
            tune_store: None,
        }
    }
}

impl RunOpts {
    /// Parse from `std::env::args`-style strings: `--quick`,
    /// `--seed <n>`, `--csv <dir>`, `--store <path>`.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = RunOpts::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--csv" => {
                    opts.csv_dir = Some(args.next().expect("--csv needs a directory"));
                }
                "--store" => {
                    opts.tune_store = Some(args.next().expect("--store needs a path"));
                }
                _ => {}
            }
        }
        opts
    }

    /// Parse from the process arguments, falling back to
    /// [`TUNE_STORE_ENV`] for the store path when `--store` is absent.
    pub fn from_env() -> Self {
        let mut opts = Self::parse(std::env::args().skip(1));
        if opts.tune_store.is_none() {
            opts.tune_store = std::env::var(TUNE_STORE_ENV).ok().filter(|p| !p.is_empty());
        }
        opts
    }

    /// The evaluation grid: the paper's 512×512×256, or a quarter-size
    /// grid in quick mode.
    pub fn dims(&self) -> GridDims {
        if self.quick {
            GridDims::new(256, 256, 64)
        } else {
            GridDims::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_grid() {
        let o = RunOpts::default();
        assert!(!o.quick);
        assert_eq!(o.dims(), GridDims::paper());
    }

    #[test]
    fn parses_quick_and_seed() {
        let o = RunOpts::parse(["--quick", "--seed", "7"].iter().map(|s| s.to_string()));
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.dims(), GridDims::new(256, 256, 64));
    }

    #[test]
    fn parses_csv_dir() {
        let o = RunOpts::parse(["--csv", "out"].iter().map(|s| s.to_string()));
        assert_eq!(o.csv_dir.as_deref(), Some("out"));
    }

    #[test]
    fn parses_store_path() {
        let o = RunOpts::parse(["--store", "/tmp/s.jsonl"].iter().map(|s| s.to_string()));
        assert_eq!(o.tune_store.as_deref(), Some("/tmp/s.jsonl"));
    }

    #[test]
    fn ignores_unknown_flags() {
        let o = RunOpts::parse(["--whatever"].iter().map(|s| s.to_string()));
        assert_eq!(o, RunOpts::default());
    }

    #[test]
    #[should_panic]
    fn seed_without_value_panics() {
        RunOpts::parse(["--seed"].iter().map(|s| s.to_string()));
    }
}
