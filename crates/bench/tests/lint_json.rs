//! Golden-schema test for the `lint` binary's `--json` document: the
//! layout is a machine interface (CI and external dashboards consume
//! it), so every top-level key, the per-report keys and the per-method
//! oracle keys are pinned here. Bumping the layout requires bumping
//! `schema_version` *and* this test — that is the point.

use std::process::Command;

fn run_lint(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("lint binary runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 output"),
        out.status.success(),
    )
}

#[test]
fn json_document_matches_the_pinned_schema() {
    let (json, ok) = run_lint(&[
        "--device",
        "gtx580",
        "--kernel",
        "laplacian",
        "--precision",
        "sp",
        "--quick",
        "--json",
    ]);
    assert!(ok, "sweep must be clean:\n{json}");
    let json = json.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");

    // Top level.
    assert!(json.starts_with("{\"schema_version\":3,"), "{json}");
    for key in [
        "\"precision\":\"SP\"",
        "\"verify_kernels\":false",
        "\"reports\":[",
        "\"oracle\":[",
        "\"failed\":0",
        "\"clean\":true",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }

    // Per-sweep report: one per method, pinned keys.
    assert_eq!(json.matches("\"examined\":").count(), 5, "{json}");
    for key in [
        "\"device\":\"GeForce GTX580\"",
        "\"kernel\":\"Laplacian",
        "\"feasible\":",
        "\"rejections\":{",
        "\"warnings\":{",
        "\"feasible_errors\":0",
        "\"unexplained\":0",
        "\"error_examples\":[]",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    // The in-plane sweeps surface the documented dead-arm warning.
    assert!(json.contains("\"LNT-D103\":"), "{json}");

    // Oracle section: one entry per method, dataflow + traffic pinned.
    assert_eq!(json.matches("\"dataflow\":{").count(), 5, "{json}");
    assert_eq!(json.matches("\"traffic\":{").count(), 5, "{json}");
    for key in [
        "\"method\":\"nvstencil\"",
        "\"method\":\"in-plane/full-slice\"",
        "\"errors\":0",
        "\"word_bytes\":4",
        "\"segment_bytes\":128",
        "\"cells_staged\":",
        "\"load_transactions\":",
        "\"staged_bytes\":",
        "\"redundancy\":",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
}

#[test]
fn dp_run_reports_eight_byte_words() {
    let (json, ok) = run_lint(&[
        "--device",
        "c2070",
        "--kernel",
        "upstream",
        "--precision",
        "dp",
        "--quick",
        "--json",
    ]);
    assert!(ok, "upstream DP sweep must be clean:\n{json}");
    assert!(json.contains("\"precision\":\"DP\""), "{json}");
    assert!(json.contains("\"kernel\":\"Upstream"), "{json}");
    assert!(json.contains("\"word_bytes\":8"), "{json}");
}

#[test]
fn wave64_run_reports_its_own_segment_geometry() {
    let (json, ok) = run_lint(&[
        "--device",
        "hd7970",
        "--kernel",
        "laplacian",
        "--precision",
        "sp",
        "--quick",
        "--json",
    ]);
    assert!(ok, "hd7970 sweep must be clean:\n{json}");
    assert!(json.contains("\"device\":\"Radeon HD 7970\""), "{json}");
    // The traffic oracle runs against the device's 64-byte segments.
    assert!(json.contains("\"segment_bytes\":64"), "{json}");
    assert!(!json.contains("\"segment_bytes\":128"), "{json}");
}
