//! Criterion benchmarks of the functional kernel executors: what the
//! emulated methods cost in actual Rust wall time, versus the plain CPU
//! reference. (The *simulated GPU* performance is a model output; these
//! numbers measure this library itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inplane_core::{execute_step, LaunchConfig, Method, Variant};
use stencil_grid::{apply_reference, Boundary, FillPattern, Grid3, StarStencil};

fn bench_methods(c: &mut Criterion) {
    let n = 64usize;
    let mut group = c.benchmark_group("one_jacobi_step_64cubed");
    group.throughput(Throughput::Elements((n as u64).pow(3)));
    for order in [2usize, 8] {
        let stencil = StarStencil::<f32>::from_order(order);
        let input: Grid3<f32> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 1,
        }
        .build(n, n, n);
        let config = LaunchConfig::new(16, 8, 1, 2);

        group.bench_with_input(BenchmarkId::new("cpu_reference", order), &order, |b, _| {
            let mut out = Grid3::new(n, n, n);
            b.iter(|| apply_reference(&stencil, &input, &mut out, Boundary::CopyInput));
        });
        for (label, method) in [
            ("forward_plane", Method::ForwardPlane),
            ("inplane_full_slice", Method::InPlane(Variant::FullSlice)),
            ("inplane_vertical", Method::InPlane(Variant::Vertical)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, order), &order, |b, _| {
                let mut out = Grid3::new(n, n, n);
                b.iter(|| {
                    execute_step(
                        method,
                        &stencil,
                        &config,
                        &input,
                        &mut out,
                        Boundary::CopyInput,
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_iterative_loop(c: &mut Criterion) {
    let n = 48usize;
    let stencil = StarStencil::<f64>::diffusion(1);
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 1.0,
        sigma: 0.1,
    }
    .build(n, n, n);
    c.bench_function("iterate_10_steps_48cubed_dp", |b| {
        b.iter(|| {
            stencil_grid::iterate_stencil_loop(initial.clone(), 1, 10, |inp, out| {
                apply_reference(&stencil, inp, out, Boundary::CopyInput)
            })
        });
    });
}

criterion_group!(benches, bench_methods, bench_iterative_loop);
criterion_main!(benches);
