//! Criterion benchmarks of the auto-tuning engines: the wall-time cost
//! of exhaustive search versus model-based tuning — the practical point
//! of §VI (the model prunes ~95% of the configurations that would
//! otherwise have to be executed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{KernelSpec, Method, Variant};
use stencil_autotune::{exhaustive_tune, model_based_tune, predict_mpoints, ParameterSpace};
use stencil_grid::Precision;

fn bench_tuners(c: &mut Criterion) {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let kernel =
        KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let space = ParameterSpace::quick_space(&dev, &kernel, &dims);

    let mut group = c.benchmark_group("autotune");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("exhaustive", space.len()), &space, |b, s| {
        b.iter(|| exhaustive_tune(&dev, &kernel, dims, s, 1));
    });
    group.bench_with_input(BenchmarkId::new("model_based_5pct", space.len()), &space, |b, s| {
        b.iter(|| model_based_tune(&dev, &kernel, dims, s, 5.0, 1));
    });
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let dev = DeviceSpec::gtx680();
    let dims = GridDims::paper();
    let kernel =
        KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
    let config = inplane_core::LaunchConfig::new(64, 4, 1, 4);
    c.bench_function("model_predict_single_config", |b| {
        b.iter(|| predict_mpoints(&dev, &kernel, &config, &dims));
    });
}

fn bench_space_enumeration(c: &mut Criterion) {
    let dev = DeviceSpec::c2070();
    let dims = GridDims::paper();
    let kernel =
        KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Double);
    c.bench_function("paper_space_enumeration", |b| {
        b.iter(|| ParameterSpace::paper_space(&dev, &kernel, &dims).len());
    });
}

criterion_group!(benches, bench_tuners, bench_model, bench_space_enumeration);
criterion_main!(benches);
