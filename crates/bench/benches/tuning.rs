//! Criterion benchmarks of the auto-tuning engines: the wall-time cost
//! of exhaustive search versus model-based tuning — the practical point
//! of §VI (the model prunes ~95% of the configurations that would
//! otherwise have to be executed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, Method, Variant};
use stencil_autotune::{
    exhaustive_tune, exhaustive_tune_with, model_based_tune, predict_mpoints, ParameterSpace,
};
use stencil_grid::Precision;

fn bench_tuners(c: &mut Criterion) {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let space = ParameterSpace::quick_space(&dev, &kernel, &dims);

    let mut group = c.benchmark_group("autotune");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("exhaustive", space.len()),
        &space,
        |b, s| {
            b.iter(|| exhaustive_tune(&dev, &kernel, dims, s, 1));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("model_based_5pct", space.len()),
        &space,
        |b, s| {
            b.iter(|| model_based_tune(&dev, &kernel, dims, s, 5.0, 1));
        },
    );
    group.finish();
}

/// Cold-vs-warm sweeps through the memoizing [`EvalContext`]: the cold
/// case prices every configuration of the space from scratch, the warm
/// case replays the identical sweep against a pre-populated cache. The
/// printed counters show the hit rates behind the gap.
fn bench_eval_cache(c: &mut Criterion) {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
    let space = ParameterSpace::paper_space(&dev, &kernel, &dims);

    let mut group = c.benchmark_group("eval_cache");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("cold_sweep", space.len()),
        &space,
        |b, s| {
            // A fresh context per iteration: every lookup misses.
            b.iter(|| exhaustive_tune_with(&EvalContext::new(), &dev, &kernel, dims, s, 1));
        },
    );

    let warm = EvalContext::new();
    exhaustive_tune_with(&warm, &dev, &kernel, dims, &space, 1);
    group.bench_with_input(
        BenchmarkId::new("warm_sweep", space.len()),
        &space,
        |b, s| {
            b.iter(|| exhaustive_tune_with(&warm, &dev, &kernel, dims, s, 1));
        },
    );
    group.finish();

    let stats = warm.stats();
    println!(
        "eval_cache counters: {} hits / {} misses / {} inserts (hit rate {:.1}%, {} cached plans)",
        stats.hits,
        stats.misses,
        stats.inserts,
        100.0 * stats.hit_rate(),
        warm.len(),
    );
}

fn bench_model(c: &mut Criterion) {
    let dev = DeviceSpec::gtx680();
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
    let config = inplane_core::LaunchConfig::new(64, 4, 1, 4);
    c.bench_function("model_predict_single_config", |b| {
        b.iter(|| predict_mpoints(&dev, &kernel, &config, &dims));
    });
}

fn bench_space_enumeration(c: &mut Criterion) {
    let dev = DeviceSpec::c2070();
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Double);
    c.bench_function("paper_space_enumeration", |b| {
        b.iter(|| ParameterSpace::paper_space(&dev, &kernel, &dims).len());
    });
}

criterion_group!(
    benches,
    bench_tuners,
    bench_eval_cache,
    bench_model,
    bench_space_enumeration
);
criterion_main!(benches);
