//! Criterion benchmarks for the extension crates: code generation
//! throughput, temporal-tiling functional execution, the microsimulator
//! versus the analytic plane model, and the stochastic tuner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{simulate_block_plane, DeviceSpec, GridDims};
use inplane_core::simulate::build_block_plan;
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::{stochastic_tune, AnnealOptions, ParameterSpace};
use stencil_codegen::{generate_kernel, generate_opencl_kernel};
use stencil_grid::{FillPattern, Grid3, Precision, StarStencil};
use stencil_temporal::execute_temporal;

fn bench_codegen(c: &mut Criterion) {
    let spec = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
    let config = LaunchConfig::new(64, 4, 2, 2);
    c.bench_function("generate_cuda_kernel", |b| {
        b.iter(|| generate_kernel(&spec, &config))
    });
    c.bench_function("generate_opencl_kernel", |b| {
        b.iter(|| generate_opencl_kernel(&spec, &config))
    });
}

fn bench_temporal(c: &mut Criterion) {
    let stencil: StarStencil<f64> = StarStencil::diffusion(1);
    let input: Grid3<f64> = FillPattern::Random {
        lo: -1.0,
        hi: 1.0,
        seed: 1,
    }
    .build(32, 32, 16);
    let mut group = c.benchmark_group("temporal_tiling_32x32x16");
    for t in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("depth", t), &t, |b, &t| {
            let mut out = Grid3::new(32, 32, 16);
            b.iter(|| execute_temporal(&stencil, &input, &mut out, 8, 8, t));
        });
    }
    group.finish();
}

fn bench_microsim(c: &mut Criterion) {
    let dev = DeviceSpec::gtx580();
    let spec = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let plan = build_block_plan(
        &dev,
        &spec,
        &LaunchConfig::new(64, 8, 1, 1),
        GridDims::paper(),
    );
    c.bench_function("microsim_block_plane", |b| {
        b.iter(|| simulate_block_plane(&dev, &plan, 3))
    });
    c.bench_function("analytic_plane_cycles", |b| {
        b.iter(|| gpu_sim::timing::plane_cycles(&dev, &plan, 3))
    });
}

fn bench_stochastic(c: &mut Criterion) {
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::new(256, 256, 32);
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let space = ParameterSpace::quick_space(&dev, &kernel, &dims);
    let opts = AnnealOptions {
        evaluations: 30,
        ..AnnealOptions::default()
    };
    c.bench_function("stochastic_tune_30_evals", |b| {
        b.iter(|| stochastic_tune(&dev, &kernel, dims, &space, &opts, 1))
    });
}

criterion_group!(
    benches,
    bench_codegen,
    bench_temporal,
    bench_microsim,
    bench_stochastic
);
criterion_main!(benches);
