//! Criterion benchmarks of the GPU simulator itself: how fast one
//! configuration can be priced (this bounds auto-tuning throughput), and
//! the cost of the address-accurate coalescing core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{coalesce_transactions, DeviceSpec, GridDims, WarpLoad};
use inplane_core::{simulate_star_kernel, KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;

fn bench_simulate(c: &mut Criterion) {
    let dims = GridDims::paper();
    let mut group = c.benchmark_group("simulate_one_launch");
    for (label, method) in [
        ("nvstencil", Method::ForwardPlane),
        ("full_slice", Method::InPlane(Variant::FullSlice)),
    ] {
        for order in [2usize, 12] {
            let kernel = KernelSpec::star_order(method, order, Precision::Single);
            let dev = DeviceSpec::gtx580();
            let config = LaunchConfig::new(64, 8, 1, 2);
            group.bench_with_input(BenchmarkId::new(label, order), &kernel, |b, k| {
                b.iter(|| simulate_star_kernel(&dev, k, &config, dims))
            });
        }
    }
    group.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    // A representative slab row: 32 lanes of float4.
    let coalesced = WarpLoad::contiguous(0, 32, 16);
    let scattered = WarpLoad {
        lane_addresses: (0..32u64).map(|l| l * 2048).collect(),
        bytes_per_lane: 4,
    };
    c.bench_function("coalesce_contiguous_warp", |b| {
        b.iter(|| coalesce_transactions(&coalesced, 128))
    });
    c.bench_function("coalesce_scattered_warp", |b| {
        b.iter(|| coalesce_transactions(&scattered, 128))
    });
}

fn bench_bandwidth_microbench(c: &mut Criterion) {
    c.bench_function("bandwidth_microbenchmark", |b| {
        let dev = DeviceSpec::gtx680();
        b.iter(|| gpu_sim::measure_achieved_bandwidth(&dev))
    });
}

criterion_group!(
    benches,
    bench_simulate,
    bench_coalescing,
    bench_bandwidth_microbench
);
criterion_main!(benches);
