#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Std-only data-parallelism stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API surface it uses — `par_iter().map(..).collect()`,
//! `par_iter().for_each(..)` and `par_chunks_mut(..)` chains — backed by
//! `std::thread::scope` fan-out over `available_parallelism()` workers
//! (overridable with `RAYON_NUM_THREADS`, like real rayon).
//!
//! Results are always produced in input order, so any pipeline that is a
//! pure function per element is bit-identical to its sequential run —
//! the property the evaluation-cache tests pin down.

/// Worker threads used for parallel operations (`RAYON_NUM_THREADS`
/// override, else `available_parallelism`).
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn threads_for(items: usize) -> usize {
    current_num_threads().min(items).max(1)
}

/// Ordered parallel map over a slice.
fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Parallel consumption of owned items.
fn parallel_consume<I: Send, F: Fn(I) + Sync>(items: Vec<I>, f: &F) {
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut items = items;
    while items.len() > chunk {
        let rest = items.split_off(items.len() - chunk);
        batches.push(rest);
    }
    batches.push(items);
    std::thread::scope(|scope| {
        for batch in batches {
            scope.spawn(move || {
                for item in batch {
                    f(item);
                }
            });
        }
    });
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

/// `.par_iter()` on slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;
    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        parallel_map(self.items, &|item| f(item));
    }
}

/// A mapped parallel iterator; terminal `collect` runs the fan-out.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Evaluate in parallel and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        // Rebind so the closure handed to workers is `&F`.
        let f = &self.f;
        parallel_map(self.items, &|item: &'a T| f(item))
            .into_iter()
            .collect()
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into disjoint mutable chunks of `chunk_size` for parallel
    /// processing.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParEnumChunksMut<'a, T> {
        ParEnumChunksMut {
            items: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&'a mut [T]) + Sync>(self, f: F) {
        parallel_consume(self.chunks, &f);
    }
}

/// Enumerated parallel chunk iterator (supports `filter` + `for_each`).
pub struct ParEnumChunksMut<'a, T> {
    items: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParEnumChunksMut<'a, T> {
    /// Keep only items matching `pred`.
    pub fn filter<P: Fn(&(usize, &'a mut [T])) -> bool>(mut self, pred: P) -> Self {
        self.items.retain(|item| pred(item));
        self
    }

    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &'a mut [T])) + Sync>(self, f: F) {
        parallel_consume(self.items, &f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_matches_sequential_for_any_length() {
        for n in [0usize, 1, 2, 7, 63, 1000] {
            let input: Vec<usize> = (0..n).collect();
            let got: Vec<usize> = input.par_iter().map(|&x| x + 1).collect();
            assert_eq!(got.len(), n);
            assert!(got.iter().enumerate().all(|(i, &v)| v == i + 1));
        }
    }

    #[test]
    fn chunks_mut_enumerate_filter_for_each() {
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(8)
            .enumerate()
            .filter(|(k, _)| *k % 2 == 0)
            .for_each(|(k, chunk)| {
                for v in chunk.iter_mut() {
                    *v = k as u32 + 1;
                }
            });
        for (i, &v) in data.iter().enumerate() {
            let k = i / 8;
            assert_eq!(v, if k % 2 == 0 { k as u32 + 1 } else { 0 });
        }
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let input: Vec<u64> = (1..=1000).collect();
        let sum = AtomicU64::new(0);
        input.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }
}
