//! Differential suite: the plan interpreter is *bit-exact* against the
//! CPU golden models for every method, precision, launch config and
//! grid shape. This is the contract that let the pre-IR executors be
//! replaced by `lower → interpret`: the lowered [`StagePlan`] reproduces
//! the §III-B / §III-C floating-point summation orders term for term, so
//! `max_abs_diff` is exactly `0.0` — not merely small.
//!
//! Sweep: all 6 registered routines × {f32, f64} × 3 launch configs ×
//! 2 grid shapes (one cubic, one with awkward prime-ish extents that
//! force clipped edge tiles).

use inplane_core::{interpret_plan, lower_step, LaunchConfig, Method, Variant};
use stencil_grid::{
    apply_reference, apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern, Grid3,
    Real, StarStencil,
};

const METHODS: [Method; 6] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
    Method::InPlane(Variant::DoubleBuffered),
];

const CONFIGS: [(usize, usize, usize, usize); 3] = [(4, 4, 1, 1), (8, 2, 1, 3), (16, 2, 2, 1)];

const GRIDS: [(usize, usize, usize); 2] = [(12, 12, 12), (17, 13, 11)];

const ORDER: usize = 4; // radius 2

/// The golden model with the method's own summation order.
fn golden<T: Real>(method: Method, s: &StarStencil<T>, input: &Grid3<T>) -> Grid3<T> {
    let (nx, ny, nz) = input.dims();
    let mut g = Grid3::new(nx, ny, nz);
    if method.routine().inplane_reference_order() {
        apply_reference_inplane_order(s, input, &mut g, Boundary::LeaveOutput)
    } else {
        apply_reference(s, input, &mut g, Boundary::LeaveOutput)
    }
    g
}

fn check_one<T: Real>(
    method: Method,
    cfg: (usize, usize, usize, usize),
    dims: (usize, usize, usize),
) {
    let s: StarStencil<T> = StarStencil::from_order(ORDER);
    let input: Grid3<T> = FillPattern::Random {
        lo: -2.0,
        hi: 2.0,
        seed: 1234,
    }
    .build(dims.0, dims.1, dims.2);
    let config = LaunchConfig::new(cfg.0, cfg.1, cfg.2, cfg.3);

    let plan = lower_step(method, &config, s.radius(), dims);
    let mut got = Grid3::new(dims.0, dims.1, dims.2);
    let stats = interpret_plan(&plan, &s, &input, &mut got);

    let want = golden(method, &s, &input);
    assert_eq!(
        max_abs_diff(&got, &want),
        0.0,
        "{method:?} {cfg:?} {dims:?}: interpreter is not bit-exact"
    );

    // Structural invariants tying the run to its plan: the census and
    // the instrumented counters agree on the schedule shape.
    let census = plan.census();
    assert_eq!(stats.barriers, census.barriers, "{method:?} {cfg:?}");
    assert_eq!(stats.blocks as u64, census.blocks, "{method:?} {cfg:?}");
    assert_eq!(
        stats.pipeline_rotations, census.rotations,
        "{method:?} {cfg:?}"
    );
    assert_eq!(
        stats.cells_staged,
        stats.staged_cells_by_zone.iter().sum::<u64>(),
        "zone counters must partition the staged cells"
    );
    let r = s.radius() as u64;
    let (nx, ny, nz) = (dims.0 as u64, dims.1 as u64, dims.2 as u64);
    assert_eq!(
        stats.global_writes,
        (nx - 2 * r) * (ny - 2 * r) * (nz - 2 * r),
        "every interior point is written exactly once"
    );
    // Barrier accounting straight off the routine's skeleton: blocks ×
    // staged planes × barriers-per-plane (2 stage+reuse, 1 for the
    // double-buffered routine).
    let sk = method.routine().skeleton(s.radius());
    let planes_staged = nz as usize - s.radius() - sk.sweep_tail;
    assert_eq!(
        census.barriers,
        census.blocks * planes_staged as u64 * sk.barriers_per_plane as u64,
        "skeleton barrier count per staged plane"
    );
}

#[test]
fn interpreter_is_bit_exact_for_every_method_config_and_grid_f32() {
    for method in METHODS {
        for cfg in CONFIGS {
            for dims in GRIDS {
                check_one::<f32>(method, cfg, dims);
            }
        }
    }
}

#[test]
fn interpreter_is_bit_exact_for_every_method_config_and_grid_f64() {
    for method in METHODS {
        for cfg in CONFIGS {
            for dims in GRIDS {
                check_one::<f64>(method, cfg, dims);
            }
        }
    }
}
