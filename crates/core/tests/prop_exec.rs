//! Property-based tests for the kernel implementations: for arbitrary
//! launch configurations, grid sizes and stencil radii, every method's
//! emulated execution matches its CPU reference, and every method's load
//! plan covers exactly the stencil footprint.

use inplane_core::layout::TileGeometry;
use inplane_core::loadplan::build_plane_plan;
use inplane_core::{execute_step, KernelSpec, LaunchConfig, Method, Variant};
use proptest::prelude::*;
use stencil_grid::{
    apply_reference, apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern, Grid3,
    Precision, StarStencil,
};

fn arb_method() -> impl Strategy<Value = Method> {
    // Every registered routine, the double-buffered one included.
    prop::sample::select(
        inplane_core::registry()
            .iter()
            .map(|rt| rt.method())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functional equivalence: any method, any (small) config, any grid
    /// size and radius agrees with the matching CPU reference
    /// bit-for-bit in f64 within rounding.
    #[test]
    fn emulated_kernels_match_reference(
        method in arb_method(),
        radius in 1usize..3,
        tx in 1usize..9,
        ty in 1usize..9,
        rx in 1usize..3,
        ry in 1usize..3,
        extra in 0usize..5,
        seed in 0u64..500,
    ) {
        let stencil: StarStencil<f64> = StarStencil::diffusion(radius);
        let n = 2 * radius + 2 + extra;
        let input: Grid3<f64> = FillPattern::Random { lo: -1.0, hi: 1.0, seed }.build(n, n, n);
        let config = LaunchConfig::new(tx, ty, rx, ry);
        let mut got = Grid3::new(n, n, n);
        execute_step(method, &stencil, &config, &input, &mut got, Boundary::CopyInput);
        let mut golden = Grid3::new(n, n, n);
        if method.routine().inplane_reference_order() {
            apply_reference_inplane_order(&stencil, &input, &mut golden, Boundary::CopyInput)
        } else {
            apply_reference(&stencil, &input, &mut golden, Boundary::CopyInput)
        }
        prop_assert!(max_abs_diff(&got, &golden) < 1e-13, "{method} diverged");
    }

    /// Load-plan coverage: for any config the union of loaded addresses
    /// contains the full stencil footprint (interior + 4 halo arms), and
    /// stores cover exactly the tile.
    #[test]
    fn load_plans_cover_footprint(
        method in arb_method(),
        radius in 1usize..7,
        tx_halfwarps in 1usize..9,
        ty in 1usize..9,
        rx in prop::sample::select(vec![1usize, 2, 4]),
        ry in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let config = LaunchConfig::new(tx_halfwarps * 16, ty, rx, ry);
        let spec = KernelSpec::star_order(method, 2 * radius, Precision::Single);
        let geom = TileGeometry::interior(&config, radius, 4, 2048, 128);
        let plan = build_plane_plan(&spec, &config, &geom, 32);

        let mut covered: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for l in &plan.loads {
            for &a in &l.lane_addresses {
                for w in 0..(l.bytes_per_lane / 4) {
                    covered.insert(a + w * 4);
                }
            }
        }
        let (ixs, ixe) = geom.interior_x();
        let (iys, iye) = geom.interior_y();
        let r = radius as isize;
        for y in iys..iye {
            for x in (ixs - r)..(ixe + r) {
                prop_assert!(covered.contains(&geom.addr(x, y)), "row footprint miss at ({x},{y})");
            }
        }
        for x in ixs..ixe {
            for y in (iys - r)..iys {
                prop_assert!(covered.contains(&geom.addr(x, y)), "top halo miss at ({x},{y})");
            }
            for y in iye..(iye + r) {
                prop_assert!(covered.contains(&geom.addr(x, y)), "bottom halo miss at ({x},{y})");
            }
        }
        // Stores: exactly the tile, each point once.
        let stored: Vec<u64> =
            plan.stores.iter().flat_map(|s| s.lane_addresses.iter().copied()).collect();
        prop_assert_eq!(stored.len(), geom.wx * geom.wy);
        let unique: std::collections::HashSet<u64> = stored.into_iter().collect();
        prop_assert_eq!(unique.len(), geom.wx * geom.wy);
    }

    /// Register estimates grow monotonically with register blocking and
    /// radius; shared memory grows with the tile and radius.
    #[test]
    fn resource_estimates_are_monotone(
        order in prop::sample::select(vec![2usize, 4, 6, 8, 10, 12]),
        tx in prop::sample::select(vec![16usize, 32, 64]),
        ty in 1usize..9,
    ) {
        use inplane_core::resources::{regs_per_thread, smem_bytes};
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, Precision::Single);
        let base = LaunchConfig::new(tx, ty, 1, 1);
        let blocked = LaunchConfig::new(tx, ty, 2, 2);
        prop_assert!(regs_per_thread(&k, &blocked) > regs_per_thread(&k, &base));
        prop_assert!(smem_bytes(&k, &blocked) > smem_bytes(&k, &base));
        if order < 12 {
            let k_next = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order + 2, Precision::Single);
            prop_assert!(regs_per_thread(&k_next, &base) > regs_per_thread(&k, &base));
            prop_assert!(smem_bytes(&k_next, &base) > smem_bytes(&k, &base));
        }
    }
}
