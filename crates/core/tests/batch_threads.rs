//! `evaluate_batch` must be independent of the rayon worker count: the
//! same sweep priced on 1, 2 and 8 threads returns bit-identical
//! reports in the same order.
//!
//! Kept as the only test in this binary: `RAYON_NUM_THREADS` is process
//! state, and mutating it while sibling tests run batches would race.

use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;

#[test]
fn batch_results_do_not_depend_on_thread_count() {
    let dev = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let dims = GridDims::paper();
    let configs: Vec<LaunchConfig> = [16, 32, 64, 128, 256]
        .iter()
        .flat_map(|&tx| {
            [1usize, 2, 4].into_iter().flat_map(move |rx| {
                [1usize, 2, 4]
                    .into_iter()
                    .map(move |ry| LaunchConfig::new(tx, 4, rx, ry))
            })
        })
        .collect();

    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let ctx = EvalContext::new(); // fresh cache each run: every run prices from cold
        let evals = ctx.evaluate_batch(&dev, &kernel, &configs, dims);
        let meas = ctx.measure_batch(&dev, &kernel, &configs, dims, 42);
        assert_eq!(
            ctx.stats().misses,
            configs.len() as u64,
            "{threads} threads"
        );
        runs.push((evals, meas));
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    let (ref_evals, ref_meas) = &runs[0];
    for (evals, meas) in &runs[1..] {
        assert_eq!(evals, ref_evals);
        assert_eq!(meas, ref_meas);
    }
    // Sanity: the sweep exercised both feasible and infeasible points.
    assert!(ref_evals.iter().any(|r| r.feasible()));
}
