//! Property-based tests for the memoizing evaluation pipeline: for
//! arbitrary kernels, launch configurations and grid sizes, routing a
//! query through an [`EvalContext`] — cold, warm, batched or shuffled —
//! must be bit-identical to lowering and pricing by hand.

use gpu_sim::{simulate_clean, DeviceSpec, GridDims, SimOptions};
use inplane_core::{
    build_block_plan, EvalContext, KernelSpec, LaunchConfig, Method, Variant,
    MEASUREMENT_NOISE_AMPLITUDE,
};
use proptest::prelude::*;
use stencil_grid::Precision;

fn arb_method() -> impl Strategy<Value = Method> {
    prop::sample::select(vec![
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ])
}

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    (
        arb_method(),
        1usize..5,
        prop::sample::select(vec![Precision::Single, Precision::Double]),
    )
        .prop_map(|(m, r, p)| KernelSpec::star_order(m, 2 * r, p))
}

fn arb_config() -> impl Strategy<Value = LaunchConfig> {
    (
        prop::sample::select(vec![16usize, 32, 64, 128, 256]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        1usize..5,
        1usize..5,
    )
        .prop_map(|(tx, ty, rx, ry)| LaunchConfig::new(tx, ty, rx, ry))
}

fn arb_dims() -> impl Strategy<Value = GridDims> {
    (
        prop::sample::select(vec![64usize, 128, 256, 512]),
        prop::sample::select(vec![64usize, 128, 256]),
        prop::sample::select(vec![32usize, 64, 100]),
    )
        .prop_map(|(x, y, z)| GridDims::new(x, y, z))
}

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    prop::sample::select(vec![
        DeviceSpec::gtx580(),
        DeviceSpec::gtx680(),
        DeviceSpec::c2070(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pricing through the cache equals pricing by hand, bit for bit,
    /// whether the entry is cold or warm.
    #[test]
    fn cached_price_matches_direct_lowering(
        dev in arb_device(),
        kernel in arb_kernel(),
        config in arb_config(),
        dims in arb_dims(),
    ) {
        let plan = build_block_plan(&dev, &kernel, &config, dims);
        let direct = simulate_clean(&dev, &plan, &dims, &SimOptions::default());

        let ctx = EvalContext::new();
        let cold = ctx.evaluate(&dev, &kernel, &config, dims);
        let warm = ctx.evaluate(&dev, &kernel, &config, dims);
        prop_assert_eq!(&cold, &direct);
        prop_assert_eq!(&warm, &direct);

        let stats = ctx.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.inserts, 1);
    }

    /// Noisy measurements are the clean price scaled by a bounded,
    /// seed-deterministic factor — and the cache underneath stays clean
    /// (two seeds share one priced entry).
    #[test]
    fn measurement_is_clean_price_times_bounded_noise(
        dev in arb_device(),
        kernel in arb_kernel(),
        config in arb_config(),
        dims in arb_dims(),
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let ctx = EvalContext::new();
        let clean = ctx.evaluate(&dev, &kernel, &config, dims);
        let a = ctx.measure(&dev, &kernel, &config, dims, seed_a);
        let a2 = ctx.measure(&dev, &kernel, &config, dims, seed_a);
        let b = ctx.measure(&dev, &kernel, &config, dims, seed_b);
        prop_assert_eq!(a.time_s.to_bits(), a2.time_s.to_bits(), "same seed, same bits");
        if clean.feasible() {
            let ratio = a.time_s / clean.time_s;
            prop_assert!(
                (1.0 - MEASUREMENT_NOISE_AMPLITUDE..=1.0 + MEASUREMENT_NOISE_AMPLITUDE)
                    .contains(&ratio),
                "noise ratio {ratio} out of band"
            );
            if seed_a != seed_b {
                prop_assert_ne!(a.time_s.to_bits(), b.time_s.to_bits());
            }
        } else {
            prop_assert!(!a.feasible());
        }
        // One priced entry serves the clean query and every seed.
        prop_assert_eq!(ctx.stats().inserts, 1);
        prop_assert_eq!(ctx.stats().misses, 1);
    }

    /// `evaluate_batch` equals the sequential loop, in order, and is
    /// invariant under shuffling the input configurations.
    #[test]
    fn batch_is_order_invariant(
        dev in arb_device(),
        kernel in arb_kernel(),
        configs in prop::collection::vec(arb_config(), 2..12),
        dims in arb_dims(),
        rot in 0usize..11,
    ) {
        let ctx = EvalContext::new();
        let batch = ctx.evaluate_batch(&dev, &kernel, &configs, dims);
        let sequential: Vec<_> = configs
            .iter()
            .map(|c| EvalContext::new().evaluate(&dev, &kernel, c, dims))
            .collect();
        prop_assert_eq!(&batch, &sequential);

        let mut shuffled = configs.clone();
        shuffled.rotate_left(rot % configs.len());
        let batch2 = ctx.evaluate_batch(&dev, &kernel, &shuffled, dims);
        for (c, r) in shuffled.iter().zip(&batch2) {
            let i = configs.iter().position(|x| x == c).unwrap();
            prop_assert_eq!(r, &batch[i]);
        }
    }
}
