//! The typed execution-plan IR every functional path lowers onto.
//!
//! A [`StagePlan`] is a flat program of [`PlanOp`]s describing the
//! stage/barrier/compute/write schedule of a kernel run — the same
//! schedule the CUDA kernels of §III execute, made explicit. The pure
//! lowering functions [`lower_forward`] / [`lower_inplane`] produce one
//! from `Method × LaunchConfig × dims`; the instrumented interpreter in
//! [`crate::exec`] runs it (bit-exact against the CPU golden models);
//! the plan *transforms* in `stencil-temporal` and `stencil-multigpu`
//! compose base plans into time-skewed and sharded programs; and
//! `stencil-lint`'s schedule proof consumes the same lowered ops — so
//! the static analysis and the runtime can never drift.
//!
//! The op vocabulary has two levels:
//!
//! * **block-level** ops (between [`PlanOp::BeginBlock`]s) mirror one
//!   thread block's per-plane schedule: [`PlanOp::StageRegion`],
//!   [`PlanOp::Barrier`], [`PlanOp::ComputePoint`],
//!   [`PlanOp::RotatePipeline`], [`PlanOp::WriteBack`];
//! * **grid-level** ops move whole boxes between buffers:
//!   [`PlanOp::Alloc`], [`PlanOp::CopyBox`], [`PlanOp::HaloExchange`],
//!   [`PlanOp::ApplyBoundary`], [`PlanOp::SwapBufs`] — the vocabulary
//!   temporal blocking and multi-GPU sharding are expressed in.

use crate::config::LaunchConfig;
use crate::method::{Method, Variant};
use stencil_grid::Boundary;

/// Identifier of a grid buffer in the interpreter's buffer table.
pub type BufId = usize;

/// The caller-provided input grid.
pub const INPUT_BUF: BufId = 0;
/// The caller-provided output grid.
pub const OUTPUT_BUF: BufId = 1;

/// Staging zones of the halo-framed shared tile. The labels match the
/// zone names carried by [`crate::exec::StageError`], so a static
/// finding about a zone and a runtime staging failure name the same
/// thing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Zone {
    /// The tile interior (the points the block computes).
    Interior,
    /// Halo rows above the tile.
    Top,
    /// Halo rows below the tile.
    Bottom,
    /// Halo columns left of the tile.
    Left,
    /// Halo columns right of the tile.
    Right,
    /// The four `r × r` corner regions (only full-slice stages them).
    Corner,
}

impl Zone {
    /// All zones, in [`Zone::index`] order.
    pub const ALL: [Zone; 6] = [
        Zone::Interior,
        Zone::Top,
        Zone::Bottom,
        Zone::Left,
        Zone::Right,
        Zone::Corner,
    ];

    /// Stable index for per-zone counters.
    pub fn index(self) -> usize {
        match self {
            Zone::Interior => 0,
            Zone::Top => 1,
            Zone::Bottom => 2,
            Zone::Left => 3,
            Zone::Right => 4,
            Zone::Corner => 5,
        }
    }

    /// The zone name as [`crate::exec::StageError`] spells it.
    pub fn label(self) -> &'static str {
        match self {
            Zone::Interior => "interior",
            Zone::Top => "top halo",
            Zone::Bottom => "bottom halo",
            Zone::Left => "left halo",
            Zone::Right => "right halo",
            Zone::Corner => "corner halo",
        }
    }
}

/// A half-open rectangle `[x0, x1) × [y0, y1)` in grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanRect {
    /// Left edge (inclusive).
    pub x0: isize,
    /// Right edge (exclusive).
    pub x1: isize,
    /// Top edge (inclusive).
    pub y0: isize,
    /// Bottom edge (exclusive).
    pub y1: isize,
}

impl PlanRect {
    /// Construct from half-open spans.
    pub fn new(x0: isize, x1: isize, y0: isize, y1: isize) -> Self {
        PlanRect { x0, x1, y0, y1 }
    }

    /// Cell count (zero if degenerate).
    pub fn area(&self) -> u64 {
        let w = (self.x1 - self.x0).max(0) as u64;
        let h = (self.y1 - self.y0).max(0) as u64;
        w * h
    }

    /// The rectangle shifted by `(dx, dy)`.
    pub fn translated(&self, dx: isize, dy: isize) -> Self {
        PlanRect {
            x0: self.x0 + dx,
            x1: self.x1 + dx,
            y0: self.y0 + dy,
            y1: self.y1 + dy,
        }
    }

    /// The rectangle clipped to an `nx × ny` grid plane (possibly
    /// degenerate). This is exactly the interpreter's per-cell skip for
    /// regions that poke outside the allocation (full-slice corners on
    /// edge tiles), expressed as rectangle arithmetic.
    pub fn clipped(&self, nx: usize, ny: usize) -> Self {
        PlanRect {
            x0: self.x0.max(0),
            x1: self.x1.min(nx as isize),
            y0: self.y0.max(0),
            y1: self.y1.min(ny as isize),
        }
    }

    /// Cell count after clipping to an `nx × ny` grid plane — the cells
    /// the interpreter actually stages for this rectangle, so static
    /// traffic accounting can match [`crate::ExecStats`] exactly.
    pub fn clipped_area(&self, nx: usize, ny: usize) -> u64 {
        self.clipped(nx, ny).area()
    }
}

/// Where a staged region's values come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageSource {
    /// Loaded from the block's input buffer (a global-memory read).
    Global,
    /// Published from the centre slot of the z-pipeline (the
    /// forward-plane interior publish — no global traffic).
    PipelineCentre,
}

/// Which of the block's two register pipelines an op addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineKind {
    /// The z-value pipeline: `2r + 1` planes forward, `r` trailing
    /// planes in-plane.
    ZValues,
    /// The in-plane output queue of `r + 1` pending partials.
    OutQueue,
}

/// What refills the slot a pipeline rotation frees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineFeed {
    /// Nothing: the freed slot keeps its wrapped value (the out-queue
    /// rotation; slot 0 is overwritten by the next plane's compute).
    None,
    /// Fetch plane `k` of the block's input buffer per point (the
    /// forward-plane prefetch of plane `k + r + 1`).
    GlobalPlane(usize),
    /// Read the staged centre value of the current plane per point (the
    /// in-plane z-history advance).
    StagedCentre,
}

/// What a [`PlanOp::ComputePoint`] evaluates per tile point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeKind {
    /// The full forward-plane stencil: centre + per-`m` xy-arms from the
    /// shared tile, z-terms from the pipeline (§III-B summation order).
    ForwardFull,
    /// The Eqn-(3) in-plane partial: centre + per-`m` xy-arms + the
    /// backward z-term from the z-history.
    InplanePartial,
    /// The Eqn-(5) fold: add `c(depth) · centre` into queue slot
    /// `depth`.
    FoldCentre {
        /// Pipeline depth `d` (1 ≤ d ≤ r): the queued plane `k − d`.
        depth: usize,
    },
}

/// One operation of a lowered execution plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOp {
    /// Allocate a zeroed working buffer.
    Alloc {
        /// Buffer to create (must be ≥ 2; 0/1 are the caller's grids).
        buf: BufId,
        /// Buffer dimensions.
        dims: (usize, usize, usize),
    },
    /// Copy a box of cells between buffers (scatter/gather traffic).
    CopyBox {
        /// Source buffer.
        src: BufId,
        /// Destination buffer.
        dst: BufId,
        /// Box origin in the source.
        src_org: (usize, usize, usize),
        /// Box origin in the destination.
        dst_org: (usize, usize, usize),
        /// Box extent.
        extent: (usize, usize, usize),
    },
    /// Start a thread block: allocates the shared tile and both register
    /// pipelines, and pre-loads the z-pipeline from the input buffer's
    /// planes `0 .. z_depth`.
    BeginBlock {
        /// Owning device (0 unless the plan was sharded).
        device: usize,
        /// Buffer the block reads.
        input: BufId,
        /// Buffer the block writes.
        output: BufId,
        /// Tile origin x.
        x0: usize,
        /// Tile origin y.
        y0: usize,
        /// Tile width.
        w: usize,
        /// Tile height.
        h: usize,
        /// z-pipeline depth in slots.
        z_depth: usize,
        /// Output-queue depth in slots.
        out_depth: usize,
    },
    /// Stage a rectangle of plane `plane` into the shared tile. Cells
    /// outside the grid are skipped (full-slice corners on edge tiles).
    StageRegion {
        /// Staging zone of the halo-framed tile the rectangle covers.
        zone: Zone,
        /// The staged rectangle, in grid coordinates.
        rect: PlanRect,
        /// The z-plane being staged.
        plane: usize,
        /// Register publish or global load.
        source: StageSource,
    },
    /// `__syncthreads()`: staged data becomes visible to all threads.
    Barrier,
    /// Evaluate `kind` at every tile point into out-queue slot `slot`.
    ComputePoint {
        /// The z-plane the computation reads.
        plane: usize,
        /// Destination out-queue slot.
        slot: usize,
        /// What to evaluate.
        kind: ComputeKind,
    },
    /// Rotate a register pipeline one step, refilling per `feed`.
    RotatePipeline {
        /// Which pipeline rotates.
        pipeline: PipelineKind,
        /// What refills the freed slot.
        feed: PipelineFeed,
    },
    /// Write out-queue slot `slot` to plane `plane` of the block's
    /// output buffer.
    WriteBack {
        /// Destination z-plane.
        plane: usize,
        /// Source out-queue slot.
        slot: usize,
    },
    /// Apply a boundary policy: copy the width-`r` ring from `input`
    /// into `output` (per [`Boundary`]).
    ApplyBoundary {
        /// Ring source.
        input: BufId,
        /// Ring destination.
        output: BufId,
        /// The policy.
        boundary: Boundary,
    },
    /// Swap two owned working buffers (the Jacobi pointer swap).
    SwapBufs {
        /// First buffer.
        a: BufId,
        /// Second buffer.
        b: BufId,
    },
    /// Move one xy-plane between device-local buffers over the
    /// interconnect (counted as halo traffic).
    HaloExchange {
        /// Receiving device.
        device: usize,
        /// Owning neighbour's buffer.
        src: BufId,
        /// Receiver's buffer.
        dst: BufId,
        /// Plane index in the source buffer.
        src_plane: usize,
        /// Plane index in the destination buffer.
        dst_plane: usize,
    },
}

/// Structural summary of a plan (op census), used by tests and the
/// static analyzer's cross-checks. Areas are pre-clip: cells a region
/// *asks* to stage, before edge clipping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// `BeginBlock` ops.
    pub blocks: u64,
    /// `StageRegion` ops.
    pub stage_regions: u64,
    /// Requested staged cells per zone ([`Zone::index`] order).
    pub staged_area_by_zone: [u64; 6],
    /// `Barrier` ops.
    pub barriers: u64,
    /// `ComputePoint` ops.
    pub computes: u64,
    /// `RotatePipeline` ops.
    pub rotations: u64,
    /// `WriteBack` ops.
    pub writebacks: u64,
    /// `HaloExchange` ops.
    pub halo_exchanges: u64,
}

/// A lowered execution plan: a typed program the single interpreter in
/// [`crate::exec`] runs. See the module docs for the op vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub struct StagePlan {
    /// The method the plan was lowered from.
    pub method: Method,
    /// Stencil radius the schedule is built for.
    pub radius: usize,
    /// Dimensions of the grids the plan's `INPUT_BUF`/`OUTPUT_BUF`
    /// refer to.
    pub dims: (usize, usize, usize),
    /// The program.
    pub ops: Vec<PlanOp>,
}

impl StagePlan {
    /// Barriers every lowered plane schedule issues: the stage barrier
    /// and the reuse barrier. The pricing model's
    /// `PlanePlan::syncthreads` and the `LNT-S003` proof both assert
    /// this count.
    pub const BARRIERS_PER_PLANE: usize = 2;

    /// Rewrite every buffer reference through `map` (plan transforms
    /// use this to retarget a base plan at device-local buffers).
    pub fn retarget_buffers(&mut self, map: impl Fn(BufId) -> BufId) {
        for op in &mut self.ops {
            match op {
                PlanOp::Alloc { buf, .. } => *buf = map(*buf),
                PlanOp::CopyBox { src, dst, .. } => {
                    *src = map(*src);
                    *dst = map(*dst);
                }
                PlanOp::BeginBlock { input, output, .. } => {
                    *input = map(*input);
                    *output = map(*output);
                }
                PlanOp::ApplyBoundary { input, output, .. } => {
                    *input = map(*input);
                    *output = map(*output);
                }
                PlanOp::SwapBufs { a, b } => {
                    *a = map(*a);
                    *b = map(*b);
                }
                PlanOp::HaloExchange { src, dst, .. } => {
                    *src = map(*src);
                    *dst = map(*dst);
                }
                PlanOp::StageRegion { .. }
                | PlanOp::Barrier
                | PlanOp::ComputePoint { .. }
                | PlanOp::RotatePipeline { .. }
                | PlanOp::WriteBack { .. } => {}
            }
        }
    }

    /// Tag every block-level op with `device` (shard transforms use
    /// this so stats can attribute work).
    pub fn tag_device(&mut self, device: usize) {
        for op in &mut self.ops {
            if let PlanOp::BeginBlock { device: d, .. } = op {
                *d = device;
            }
        }
    }

    /// The dimensions of every buffer the plan's op stream allocates,
    /// indexed by [`BufId`]: slots 0/1 are the caller's grids at
    /// [`StagePlan::dims`], and each [`PlanOp::Alloc`] appends its own
    /// extent in order. Static analyses seed their buffer state from
    /// this table and replay [`PlanOp::SwapBufs`] on their own copy, so
    /// clipping matches the interpreter cell for cell.
    pub fn buffer_dims(&self) -> Vec<(usize, usize, usize)> {
        let mut dims = vec![self.dims, self.dims];
        for op in &self.ops {
            if let PlanOp::Alloc { dims: d, .. } = op {
                dims.push(*d);
            }
        }
        dims
    }

    /// Count the plan's ops.
    pub fn census(&self) -> OpCensus {
        let mut c = OpCensus::default();
        for op in &self.ops {
            match op {
                PlanOp::BeginBlock { .. } => c.blocks += 1,
                PlanOp::StageRegion { zone, rect, .. } => {
                    c.stage_regions += 1;
                    c.staged_area_by_zone[zone.index()] += rect.area();
                }
                PlanOp::Barrier => c.barriers += 1,
                PlanOp::ComputePoint { .. } => c.computes += 1,
                PlanOp::RotatePipeline { .. } => c.rotations += 1,
                PlanOp::WriteBack { .. } => c.writebacks += 1,
                PlanOp::HaloExchange { .. } => c.halo_exchanges += 1,
                _ => {}
            }
        }
        c
    }
}

/// z-pipeline and out-queue depths for `method` at radius `r`: the
/// forward-plane keeps `2r + 1` z-values and a single output slot; the
/// in-plane keeps `r` trailing z-values and `r + 1` queued partials.
/// The pipeline *state* words (`z_depth + out_depth − 1`, the staged
/// slot being the accumulator) equal [`Method::pipeline_words`].
/// Read off the routine's schedule skeleton.
pub fn pipeline_depths(method: Method, r: usize) -> (usize, usize) {
    let sk = method.routine().skeleton(r);
    (sk.z_depth, sk.out_depth)
}

/// Lower one forward-plane (*nvstencil*) Jacobi step to a [`StagePlan`]
/// over `INPUT_BUF` → `OUTPUT_BUF`. Pure function of the arguments;
/// interior only (the caller owns the boundary policy). Compat wrapper
/// over the forward-plane routine's blueprint lowering.
pub fn lower_forward(config: &LaunchConfig, r: usize, dims: (usize, usize, usize)) -> StagePlan {
    let routine = Method::ForwardPlane.routine();
    routine.lower(&routine.blueprint(config, r, dims))
}

/// Lower one in-plane Jacobi step (any loading variant) to a
/// [`StagePlan`] over `INPUT_BUF` → `OUTPUT_BUF`. Pure function of the
/// arguments; interior only. Compat wrapper over the variant routine's
/// blueprint lowering.
pub fn lower_inplane(
    variant: Variant,
    config: &LaunchConfig,
    r: usize,
    dims: (usize, usize, usize),
) -> StagePlan {
    let routine = Method::InPlane(variant).routine();
    routine.lower(&routine.blueprint(config, r, dims))
}

/// Lower one Jacobi step of `method` — the dispatcher every execution
/// path (single-step, temporal, multi-GPU) builds on. Goes through the
/// routine registry: `method.routine()` resolves the blueprint and
/// lowers it.
pub fn lower_step(
    method: Method,
    config: &LaunchConfig,
    r: usize,
    dims: (usize, usize, usize),
) -> StagePlan {
    let (nx, ny, nz) = dims;
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid {nx}x{ny}x{nz} too small for radius {r}"
    );
    let routine = method.routine();
    routine.lower(&routine.blueprint(config, r, dims))
}

/// The four corner-free halo arms of a tile `[ix0, ix1) × [iy0, iy1)`
/// with radius `ri`, zone-labelled.
pub(crate) fn halo_arms(
    ix0: isize,
    ix1: isize,
    iy0: isize,
    iy1: isize,
    ri: isize,
) -> [(Zone, PlanRect); 4] {
    [
        (Zone::Top, PlanRect::new(ix0, ix1, iy0 - ri, iy0)),
        (Zone::Bottom, PlanRect::new(ix0, ix1, iy1, iy1 + ri)),
        (Zone::Left, PlanRect::new(ix0 - ri, ix0, iy0, iy1)),
        (Zone::Right, PlanRect::new(ix1, ix1 + ri, iy0, iy1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_plan_census_counts_match_geometry() {
        // 10³ grid, r = 2 → 6×6 interior, 4×4 tiles (clipped) → 4
        // blocks, 6 output planes each.
        let plan = lower_forward(&LaunchConfig::new(4, 4, 1, 1), 2, (10, 10, 10));
        let c = plan.census();
        assert_eq!(c.blocks, 4);
        assert_eq!(c.barriers, 4 * 6 * StagePlan::BARRIERS_PER_PLANE as u64);
        assert_eq!(c.writebacks, 4 * 6);
        assert_eq!(c.computes, 4 * 6);
        // 5 regions per plane (interior + 4 arms), no corners.
        assert_eq!(c.stage_regions, 4 * 6 * 5);
        assert_eq!(c.staged_area_by_zone[Zone::Corner.index()], 0);
        // Tile interiors tile the 6×6 grid interior exactly once.
        assert_eq!(c.staged_area_by_zone[Zone::Interior.index()], 6 * 36);
        // One rotation per plane except the last.
        assert_eq!(c.rotations, 4 * 5);
        assert_eq!(c.halo_exchanges, 0);
    }

    #[test]
    fn fullslice_stages_corners_the_other_variants_skip() {
        let dims = (12, 12, 8);
        let cfg = LaunchConfig::new(4, 4, 1, 1);
        let fs = lower_inplane(Variant::FullSlice, &cfg, 2, dims).census();
        let hz = lower_inplane(Variant::Horizontal, &cfg, 2, dims).census();
        assert!(fs.staged_area_by_zone[Zone::Corner.index()] > 0);
        assert_eq!(hz.staged_area_by_zone[Zone::Corner.index()], 0);
        // Identical everywhere else.
        for z in [
            Zone::Interior,
            Zone::Top,
            Zone::Bottom,
            Zone::Left,
            Zone::Right,
        ] {
            assert_eq!(
                fs.staged_area_by_zone[z.index()],
                hz.staged_area_by_zone[z.index()],
                "{z:?}"
            );
        }
    }

    #[test]
    fn inplane_schedule_has_two_barriers_per_staged_plane() {
        let plan = lower_inplane(
            Variant::Vertical,
            &LaunchConfig::new(8, 8, 1, 1),
            1,
            (10, 10, 9),
        );
        let c = plan.census();
        // One block; planes k = 1..9 staged (8 planes).
        assert_eq!(c.blocks, 1);
        assert_eq!(c.barriers, 8 * StagePlan::BARRIERS_PER_PLANE as u64);
        // Queue + z-history rotate every plane.
        assert_eq!(c.rotations, 2 * 8);
    }

    #[test]
    fn pipeline_depths_sum_to_method_words() {
        for r in 1..=5 {
            for method in [Method::ForwardPlane, Method::InPlane(Variant::FullSlice)] {
                let (z, q) = pipeline_depths(method, r);
                assert_eq!(z + q - 1, method.pipeline_words(r), "{method} r={r}");
            }
        }
    }

    #[test]
    fn clipped_area_matches_per_cell_counting() {
        let r = PlanRect::new(-2, 5, 3, 9);
        let (nx, ny) = (4usize, 7usize);
        let mut cells = 0u64;
        for y in r.y0..r.y1 {
            for x in r.x0..r.x1 {
                if x >= 0 && (x as usize) < nx && y >= 0 && (y as usize) < ny {
                    cells += 1;
                }
            }
        }
        assert_eq!(r.clipped_area(nx, ny), cells);
        // An in-bounds rectangle is unchanged by clipping.
        let inb = PlanRect::new(1, 5, 2, 6);
        assert_eq!(inb.clipped_area(8, 8), inb.area());
        // Fully outside: degenerate, zero cells.
        assert_eq!(PlanRect::new(-4, -1, 0, 3).clipped_area(8, 8), 0);
    }

    #[test]
    fn buffer_dims_lists_caller_grids_then_allocs() {
        let mut plan = lower_forward(&LaunchConfig::new(4, 4, 1, 1), 1, (6, 6, 6));
        assert_eq!(plan.buffer_dims(), vec![(6, 6, 6), (6, 6, 6)]);
        plan.ops.insert(
            0,
            PlanOp::Alloc {
                buf: 2,
                dims: (3, 4, 5),
            },
        );
        assert_eq!(plan.buffer_dims()[2], (3, 4, 5));
        assert_eq!(plan.buffer_dims().len(), 3);
    }

    #[test]
    fn retarget_rewrites_every_buffer_reference() {
        let mut plan = lower_forward(&LaunchConfig::new(4, 4, 1, 1), 1, (6, 6, 6));
        plan.retarget_buffers(|b| b + 10);
        for op in &plan.ops {
            if let PlanOp::BeginBlock { input, output, .. } = op {
                assert_eq!((*input, *output), (10, 11));
            }
        }
    }
}
