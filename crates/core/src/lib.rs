#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # inplane-core
//!
//! The paper's primary contribution: the **in-plane method** for GPU
//! stencil kernels, its memory-loading variants, register tiling and
//! vector-load planning — plus the conventional **forward-plane**
//! (*nvstencil*) method it is benchmarked against.
//!
//! Two faces of every kernel:
//!
//! * **Performance face** ([`loadplan`], [`resources`], [`simulate`]):
//!   each (method, launch config, stencil, precision) is lowered to an
//!   address-accurate per-plane workload ([`gpu_sim::PlanePlan`]) and
//!   priced by the `gpu-sim` timing engine. This is what the auto-tuner
//!   "measures".
//! * **Functional face** ([`exec`]): block-level emulation of the actual
//!   algorithms — shared-memory staging buffer, per-thread register
//!   pipelines, the 6-step in-plane procedure of §III-C — verified
//!   against the CPU golden model exactly as the paper verifies its CUDA
//!   kernels.
//!
//! The methods (§III):
//!
//! * [`Method::ForwardPlane`] — the 2.5-D forward-plane loading of the
//!   Nvidia SDK sample: classical interior-then-halo loads (Fig 4), scalar.
//! * [`Method::InPlane`] with [`Variant::Vertical`] /
//!   [`Variant::Horizontal`] / [`Variant::FullSlice`] — the proposed
//!   in-plane loading patterns of Fig 6 (the *classical* in-plane variant
//!   is representable but excluded from evaluation, as in the paper).

pub mod config;
pub mod eval;
pub mod exec;
pub mod kernel;
pub mod layout;
pub mod loadplan;
pub mod method;
pub mod plan;
pub mod regions;
pub mod resources;
pub mod routine;
pub mod run;
pub mod simulate;

pub use config::LaunchConfig;
pub use eval::{CacheStats, EvalContext, PlanKey, MEASUREMENT_NOISE_AMPLITUDE};
pub use exec::{
    execute_step, interpret_plan, interpret_plan_checked, ExecStats, SharedBuffer, StageError,
};
pub use kernel::KernelSpec;
pub use method::{Method, Variant};
pub use plan::{lower_forward, lower_inplane, lower_step, PlanOp, StagePlan};
pub use routine::{
    lower_blueprint, registry, routine_by_id, routine_by_label, Blueprint, ComputeShape,
    LoadPattern, ProblemSpec, Routine, RoutineDiag, ScheduleSkeleton, ZFeed,
};
pub use run::{RunOutcome, StencilRun};
pub use simulate::{build_block_plan, measure_kernel, simulate_kernel, simulate_star_kernel};
