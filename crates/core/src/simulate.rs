//! Glue: lower a kernel + configuration to a [`gpu_sim::BlockPlan`] and
//! price it on a device — the "run it and time it" entry point the
//! auto-tuner and all benchmarks use.
//!
//! The free functions here are thin convenience fronts over the
//! process-wide [`EvalContext`]: lowering and clean pricing are
//! memoized, noise is applied after the cache. Callers that want an
//! isolated cache (or its counters) hold their own context and call
//! its methods directly.

use crate::config::LaunchConfig;
use crate::eval::{EvalContext, PlanKey};
use crate::kernel::KernelSpec;
use crate::loadplan::plan_for_device_on;
use gpu_sim::plan::{BlockPlan, GridDims, LaunchGeometry};
use gpu_sim::{apply_noise, DeviceSpec, SimOptions, SimReport};

/// Lower `(kernel, config)` for `device` over `dims`.
pub fn build_block_plan(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: GridDims,
) -> BlockPlan {
    let (plane, resources, _geom) = plan_for_device_on(kernel, config, dims.lx, device);
    BlockPlan {
        plane,
        resources,
        geometry: LaunchGeometry {
            blocks: config.blocks_per_plane(dims.lx, dims.ly),
            threads_per_block: config.threads(),
            planes: dims.lz,
        },
        elem_bytes: kernel.elem_bytes,
    }
}

/// Simulate one full grid sweep with explicit options, through the
/// global [`EvalContext`]: the clean price is memoized per
/// `(plan key, pricing fingerprint)`; if `opts` enables noise it is
/// applied afterwards, keyed by the plan key's hash (the `noise_key`
/// string in `opts` is ignored — noise de-correlates by plan identity).
pub fn simulate_kernel(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: GridDims,
    opts: &SimOptions,
) -> SimReport {
    let key = PlanKey::new(device, kernel, config, dims);
    let mut report = EvalContext::global().price_with(device, &key, dims, opts, || {
        build_block_plan(device, kernel, config, dims)
    });
    apply_noise(
        &mut report,
        key.noise_key(),
        opts.noise_seed,
        opts.noise_amplitude,
    );
    report
}

/// Simulate with default options (no noise) — the quickstart entry point.
pub fn simulate_star_kernel(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: GridDims,
) -> SimReport {
    simulate_kernel(device, kernel, config, dims, &SimOptions::default())
}

/// "Measure" a configuration the way the auto-tuner does: the cached
/// clean price perturbed by ±2% deterministic jitter — the order real
/// CUDA wall-clock timing shows. Routes through the global
/// [`EvalContext`].
pub fn measure_kernel(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: GridDims,
    seed: u64,
) -> SimReport {
    EvalContext::global().measure(device, kernel, config, dims, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{Method, Variant};
    use stencil_grid::Precision;

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    fn cfg() -> LaunchConfig {
        LaunchConfig::new(32, 8, 1, 1)
    }

    #[test]
    fn paper_grid_runs_and_is_memory_bound_at_order_2() {
        let dev = DeviceSpec::gtx580();
        let rep = simulate_star_kernel(
            &dev,
            &spec(Method::InPlane(Variant::FullSlice), 2),
            &cfg(),
            GridDims::paper(),
        );
        assert!(rep.feasible());
        assert!(rep.mpoints_per_s() > 5000.0, "got {}", rep.mpoints_per_s());
        assert_eq!(rep.limiting, gpu_sim::LimitingFactor::MemoryBandwidth);
    }

    #[test]
    fn full_slice_beats_nvstencil_when_both_are_tuned() {
        // The core claim of Fig 7: with each method at its best thread
        // block, full-slice wins at every order.
        let dev = DeviceSpec::gtx580();
        let candidates = [
            LaunchConfig::new(32, 8, 1, 1),
            LaunchConfig::new(64, 8, 1, 1),
            LaunchConfig::new(64, 16, 1, 1),
            LaunchConfig::new(128, 4, 1, 1),
            LaunchConfig::new(128, 8, 1, 1),
        ];
        let best = |k: &KernelSpec| {
            candidates
                .iter()
                .map(|c| simulate_star_kernel(&dev, k, c, GridDims::paper()).mpoints_per_s())
                .fold(0.0f64, f64::max)
        };
        for order in [2usize, 4, 6, 8, 12] {
            let nv = best(&spec(Method::ForwardPlane, order));
            let fs = best(&spec(Method::InPlane(Variant::FullSlice), order));
            assert!(
                fs > nv,
                "order {order}: tuned full-slice {fs:.0} must beat tuned nvstencil {nv:.0}"
            );
        }
    }

    #[test]
    fn speedup_decreases_with_order() {
        // §IV-C: the 4r² corner overhead erodes the gain as r grows.
        let dev = DeviceSpec::gtx580();
        let speedup = |order: usize| {
            let nv = simulate_star_kernel(
                &dev,
                &spec(Method::ForwardPlane, order),
                &cfg(),
                GridDims::paper(),
            );
            let fs = simulate_star_kernel(
                &dev,
                &spec(Method::InPlane(Variant::FullSlice), order),
                &cfg(),
                GridDims::paper(),
            );
            nv.time_s / fs.time_s
        };
        assert!(speedup(2) > speedup(12));
    }

    #[test]
    fn measured_time_is_deterministic() {
        let dev = DeviceSpec::gtx680();
        let k = spec(Method::InPlane(Variant::FullSlice), 4);
        let a = measure_kernel(&dev, &k, &cfg(), GridDims::paper(), 7);
        let b = measure_kernel(&dev, &k, &cfg(), GridDims::paper(), 7);
        assert_eq!(a.time_s, b.time_s);
        let clean = simulate_star_kernel(&dev, &k, &cfg(), GridDims::paper());
        assert!((a.time_s / clean.time_s - 1.0).abs() <= 0.0201);
    }

    #[test]
    fn infeasible_config_reported() {
        // 1024 threads × big register block blows the register budget.
        let dev = DeviceSpec::gtx580();
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        let rep = simulate_star_kernel(
            &dev,
            &k,
            &LaunchConfig::new(32, 32, 2, 2),
            GridDims::paper(),
        );
        assert!(!rep.feasible());
    }

    #[test]
    fn dp_is_slower_than_sp() {
        let dev = DeviceSpec::gtx580();
        let sp = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let dp = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Double);
        let t_sp = simulate_star_kernel(&dev, &sp, &cfg(), GridDims::paper()).time_s;
        let t_dp = simulate_star_kernel(&dev, &dp, &cfg(), GridDims::paper()).time_s;
        assert!(t_dp > 1.25 * t_sp, "DP/SP time ratio {}", t_dp / t_sp);
    }

    #[test]
    fn order2_sp_absolute_rate_matches_paper_ballpark() {
        // Table IV: tuned order-2 SP on GTX580 reaches 17294 MPoint/s.
        // The paper's own optimal config should land in that ballpark
        // (±35%) in our simulator.
        let dev = DeviceSpec::gtx580();
        let rep = simulate_star_kernel(
            &dev,
            &spec(Method::InPlane(Variant::FullSlice), 2),
            &LaunchConfig::new(256, 1, 1, 8),
            GridDims::paper(),
        );
        let mp = rep.mpoints_per_s();
        assert!(
            (11000.0..24000.0).contains(&mp),
            "order-2 SP at (256,1,1,8): {mp:.0} MPoint/s"
        );
    }
}
