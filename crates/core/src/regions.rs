//! Region builders: lowering rectangular load regions to warp
//! instructions.
//!
//! A load *region* is a rectangle of the current plane (rows × column
//! span) plus a policy for how threads are assigned to its elements:
//!
//! * [`Assignment::PerRow`] — each row is loaded by threads indexed along
//!   x, as the SDK's classical pattern does: one warp instruction per
//!   `warp_size·v` span per row; short rows leave lanes idle.
//! * [`Assignment::Packed`] — the paper's warp-based assignment
//!   (§III-C2): the region is linearised row-major and consecutive lanes
//!   take consecutive (vector) elements, continuing across row
//!   boundaries, so every instruction (except the last) has full lanes.
//! * [`Assignment::ColumnMajor`] — the region is linearised
//!   column-by-column (x fastest within the halo width, then y). This is
//!   how the *vertical* variant's left/right halo columns are serviced;
//!   consecutive lanes land in different rows, which is what makes that
//!   pattern collapse for high-order stencils (Fig 7).
//!
//! Vectorised regions honour the §III-C2 alignment rule by *extending*
//! the span to vector boundaries — redundant elements at the fringe are
//! genuinely requested, exactly like the full-slice corners.

use crate::layout::TileGeometry;
use gpu_sim::WarpLoad;

/// Thread-to-element assignment policy for a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Row-at-a-time, threads along x (classical).
    PerRow,
    /// Warp-based row-major packing across the whole region.
    Packed,
    /// Column-major packing (vertical variant's side halos).
    ColumnMajor,
}

/// A rectangular load region on the current plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Column span `[x_start, x_end)` in absolute grid coordinates.
    pub x: (isize, isize),
    /// Row span `[y_start, y_end)`.
    pub y: (isize, isize),
    /// Elements loaded per lane per instruction (1 = scalar; 2/4 =
    /// `double2`/`float4` vector loads).
    pub vector_width: usize,
    /// Assignment policy.
    pub assignment: Assignment,
}

impl Region {
    /// Width in elements after vector-alignment extension.
    pub fn extended_x(&self) -> (isize, isize) {
        let v = self.vector_width as isize;
        let (xs, xe) = self.x;
        (
            xs.div_euclid(v) * v,
            xe.div_euclid(v) * v + if xe.rem_euclid(v) != 0 { v } else { 0 },
        )
    }

    /// Number of elements the region requests (after extension).
    pub fn elems(&self) -> usize {
        let (xs, xe) = self.extended_x();
        let (ys, ye) = self.y;
        ((xe - xs).max(0) as usize) * ((ye - ys).max(0) as usize)
    }

    /// Lower this region to warp instructions against `geom`.
    pub fn lower(&self, geom: &TileGeometry, warp_size: usize) -> Vec<WarpLoad> {
        let v = self.vector_width;
        let bytes_per_lane = geom.elem_bytes * v as u64;
        let (xs, xe) = self.extended_x();
        let (ys, ye) = self.y;
        if xs >= xe || ys >= ye {
            return Vec::new();
        }
        let width = (xe - xs) as usize;
        debug_assert_eq!(width % v, 0, "extended span must be a vector multiple");
        let vecs_per_row = width / v;

        match self.assignment {
            Assignment::PerRow => {
                let mut out = Vec::new();
                for y in ys..ye {
                    // One warp instruction per warp-sized group of vector
                    // elements within the row.
                    let mut lane0 = 0usize;
                    while lane0 < vecs_per_row {
                        let lanes = (vecs_per_row - lane0).min(warp_size);
                        let addrs = (0..lanes)
                            .map(|l| geom.addr(xs + ((lane0 + l) * v) as isize, y))
                            .collect();
                        out.push(WarpLoad {
                            lane_addresses: addrs,
                            bytes_per_lane,
                        });
                        lane0 += lanes;
                    }
                }
                out
            }
            Assignment::Packed => {
                // Linearise row-major (vector granules), fill warps.
                let total = vecs_per_row * (ye - ys) as usize;
                let mut out = Vec::new();
                let mut idx = 0usize;
                while idx < total {
                    let lanes = (total - idx).min(warp_size);
                    let addrs = (0..lanes)
                        .map(|l| {
                            let g = idx + l;
                            let row = g / vecs_per_row;
                            let col = g % vecs_per_row;
                            geom.addr(xs + (col * v) as isize, ys + row as isize)
                        })
                        .collect();
                    out.push(WarpLoad {
                        lane_addresses: addrs,
                        bytes_per_lane,
                    });
                    idx += lanes;
                }
                out
            }
            Assignment::ColumnMajor => {
                // Linearise y-fastest (walk down each halo column, then
                // move to the next column): adjacent lanes land in
                // different rows, so every instruction touches as many
                // segments as it has distinct rows — the vertical
                // variant's pathology. Scalar in practice (v = 1).
                let rows = (ye - ys) as usize;
                let total = vecs_per_row * rows;
                let mut out = Vec::new();
                let mut idx = 0usize;
                while idx < total {
                    let lanes = (total - idx).min(warp_size);
                    let addrs = (0..lanes)
                        .map(|l| {
                            let g = idx + l;
                            let col = g / rows;
                            let row = g % rows;
                            geom.addr(xs + (col * v) as isize, ys + row as isize)
                        })
                        .collect();
                    out.push(WarpLoad {
                        lane_addresses: addrs,
                        bytes_per_lane,
                    });
                    idx += lanes;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LaunchConfig;
    use gpu_sim::coalesce_transactions;

    fn geom() -> TileGeometry {
        TileGeometry::interior(&LaunchConfig::new(32, 8, 1, 1), 2, 4, 512, 128)
    }

    #[test]
    fn per_row_aligned_row_is_one_instruction_one_transaction() {
        let g = geom();
        let region = Region {
            x: (32, 64),
            y: (8, 9),
            vector_width: 1,
            assignment: Assignment::PerRow,
        };
        let loads = region.lower(&g, 32);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].active_lanes(), 32);
        assert_eq!(coalesce_transactions(&loads[0], 128), 1);
    }

    #[test]
    fn per_row_splits_wide_rows() {
        let g = geom();
        let region = Region {
            x: (0, 80),
            y: (8, 10),
            vector_width: 1,
            assignment: Assignment::PerRow,
        };
        let loads = region.lower(&g, 32);
        // 80 elems per row → 3 instrs per row (32+32+16), 2 rows.
        assert_eq!(loads.len(), 6);
        assert_eq!(loads[4].active_lanes(), 32);
        assert_eq!(loads[5].active_lanes(), 16);
    }

    #[test]
    fn packed_fills_lanes_across_rows() {
        let g = geom();
        // 40 × 2 slab, scalar: 80 elements = 2 full + 1 half warp instr.
        let region = Region {
            x: (30, 70),
            y: (8, 10),
            vector_width: 1,
            assignment: Assignment::Packed,
        };
        let loads = region.lower(&g, 32);
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0].active_lanes(), 32);
        assert_eq!(loads[2].active_lanes(), 16);
    }

    #[test]
    fn vector_extension_aligns_span() {
        let region = Region {
            x: (30, 66),
            y: (0, 1),
            vector_width: 4,
            assignment: Assignment::Packed,
        };
        // [30, 66) extends to [28, 68): 40 elements, 10 float4 granules.
        assert_eq!(region.extended_x(), (28, 68));
        assert_eq!(region.elems(), 40);
    }

    #[test]
    fn vector_extension_handles_negative_start() {
        let region = Region {
            x: (-2, 7),
            y: (0, 1),
            vector_width: 4,
            assignment: Assignment::Packed,
        };
        assert_eq!(region.extended_x(), (-4, 8));
    }

    #[test]
    fn scalar_region_is_never_extended() {
        let region = Region {
            x: (30, 66),
            y: (0, 1),
            vector_width: 1,
            assignment: Assignment::PerRow,
        };
        assert_eq!(region.extended_x(), (30, 66));
    }

    #[test]
    fn vector_loads_reduce_instruction_count_4x() {
        let g = geom();
        let scalar = Region {
            x: (32, 160),
            y: (8, 12),
            vector_width: 1,
            assignment: Assignment::Packed,
        };
        let vec4 = Region {
            x: (32, 160),
            y: (8, 12),
            vector_width: 4,
            assignment: Assignment::Packed,
        };
        let n_scalar = scalar.lower(&g, 32).len();
        let n_vec = vec4.lower(&g, 32).len();
        assert_eq!(n_scalar, 16); // 512 elements / 32
        assert_eq!(n_vec, 4); // 128 granules / 32
    }

    #[test]
    fn vector_loads_request_same_bytes() {
        let g = geom();
        let scalar = Region {
            x: (32, 160),
            y: (8, 12),
            vector_width: 1,
            assignment: Assignment::Packed,
        };
        let vec4 = Region {
            x: (32, 160),
            y: (8, 12),
            vector_width: 4,
            assignment: Assignment::Packed,
        };
        let bytes = |loads: Vec<WarpLoad>| loads.iter().map(|l| l.requested_bytes()).sum::<u64>();
        assert_eq!(bytes(scalar.lower(&g, 32)), bytes(vec4.lower(&g, 32)));
    }

    #[test]
    fn column_major_narrow_span_touches_many_segments() {
        let g = geom();
        // A 1-wide column of 16 rows: one instruction, 16 lanes, each in
        // its own row → 16 transactions. This is the vertical variant's
        // pathology.
        let region = Region {
            x: (31, 32),
            y: (8, 24),
            vector_width: 1,
            assignment: Assignment::ColumnMajor,
        };
        let loads = region.lower(&g, 32);
        assert_eq!(loads.len(), 1);
        assert_eq!(coalesce_transactions(&loads[0], 128), 16);
    }

    #[test]
    fn column_major_revisits_segments_across_instructions() {
        // A 6-wide, 8-row side halo (order-12 stencil): column-major
        // packing walks down the 8 rows in every instruction, so the same
        // row segments are paid for once per instruction — twice the
        // transactions of the per-row pattern.
        let g = geom();
        let cm = Region {
            x: (26, 32),
            y: (8, 16),
            vector_width: 1,
            assignment: Assignment::ColumnMajor,
        };
        let pr = Region {
            x: (26, 32),
            y: (8, 16),
            vector_width: 1,
            assignment: Assignment::PerRow,
        };
        let total_tx = |r: Region| {
            r.lower(&g, 32)
                .iter()
                .map(|l| coalesce_transactions(l, 128))
                .sum::<usize>()
        };
        assert_eq!(total_tx(pr), 8);
        assert_eq!(total_tx(cm), 16);
    }

    #[test]
    fn empty_region_lowers_to_nothing() {
        let g = geom();
        let region = Region {
            x: (10, 10),
            y: (0, 5),
            vector_width: 1,
            assignment: Assignment::PerRow,
        };
        assert!(region.lower(&g, 32).is_empty());
        let region2 = Region {
            x: (0, 5),
            y: (3, 3),
            vector_width: 1,
            assignment: Assignment::Packed,
        };
        assert!(region2.lower(&g, 32).is_empty());
    }

    #[test]
    fn all_assignments_cover_the_same_addresses() {
        let g = geom();
        let mk = |assignment| Region {
            x: (30, 50),
            y: (8, 12),
            vector_width: 1,
            assignment,
        };
        let addr_set = |r: Region| {
            let mut v: Vec<u64> = r
                .lower(&g, 32)
                .into_iter()
                .flat_map(|l| l.lane_addresses)
                .collect();
            v.sort_unstable();
            v
        };
        let a = addr_set(mk(Assignment::PerRow));
        let b = addr_set(mk(Assignment::Packed));
        let c = addr_set(mk(Assignment::ColumnMajor));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.len(), 80);
    }
}
