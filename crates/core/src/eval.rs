//! The memoizing evaluation context: one shared front door for the
//! plan → price → noise pipeline.
//!
//! Every consumer of the simulator — the four tuners, the application
//! suite, the temporal and multi-GPU studies, the figure benchmarks —
//! ultimately performs the same three steps:
//!
//! 1. **plan**: lower `(device, kernel, config, dims)` to a
//!    [`BlockPlan`] (pure, via [`build_block_plan`]),
//! 2. **price**: run the clean timing engine over that plan
//!    ([`gpu_sim::simulate_clean`], pure and deterministic),
//! 3. **noise**: optionally perturb the priced time by the seeded
//!    measurement-noise hash ([`gpu_sim::apply_noise`]).
//!
//! Steps 1 and 2 are pure functions of hashable inputs, so an
//! [`EvalContext`] memoizes both behind a sharded concurrent cache:
//! plans keyed by [`PlanKey`], clean reports keyed by
//! `(PlanKey, SimOptions::pricing_fingerprint)`. Step 3 stays outside
//! the cache — it is a cheap hash applied per `(key, seed)` after the
//! cached report is fetched — which is what lets one cache serve both
//! "model" evaluations (no noise) and "measurements" (±2% jitter)
//! without ever storing a noisy number.
//!
//! The cache is std-only (`RwLock<HashMap>` shards plus atomic
//! counters) and safe to share across rayon workers; batch entry
//! points fan out internally. A fixed seed therefore yields
//! bit-identical results whether the cache is cold, warm, shared
//! between tuners, or hit from any number of threads in any order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use gpu_sim::plan::{BlockPlan, GridDims};
use gpu_sim::{apply_noise, simulate_clean, DeviceSpec, NoiseKey, SimOptions, SimReport};
use rayon::prelude::*;

use crate::config::LaunchConfig;
use crate::kernel::KernelSpec;
use crate::simulate::build_block_plan;

/// Amplitude of the simulated run-to-run measurement jitter (±2%, the
/// order real CUDA wall-clock timing shows).
pub const MEASUREMENT_NOISE_AMPLITUDE: f64 = 0.02;

/// Number of cache shards. A power of two so the shard index is a bit
/// mask of the key hash; 16 keeps write contention negligible at the
/// parallelism of the tuning sweeps.
const N_SHARDS: usize = 16;

fn fold_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fold_word(h: &mut u64, w: u64) {
    fold_bytes(h, &w.to_le_bytes());
}

/// Hashable identity of one lowering: everything [`build_block_plan`]
/// reads, plus a `salt` that namespaces externally-built plans (the
/// temporal study salts with its time-block depth so a time-blocked
/// plan never aliases the plain spatial plan of the same launch).
///
/// The 64-bit [`stable_hash`](PlanKey::stable_hash) is computed once at
/// construction with an explicit FNV-style fold over the fields — not
/// `std`'s hasher — so it is identical across processes and Rust
/// versions; the measurement-noise stream derives from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanKey {
    /// [`DeviceSpec::fingerprint`] of the target device.
    pub device_id: u64,
    /// The kernel being lowered.
    pub kernel: KernelSpec,
    /// The launch configuration `(TX, TY, RX, RY)`.
    pub config: LaunchConfig,
    /// Problem-grid dimensions.
    pub dims: GridDims,
    /// Namespace for externally-built plans (0 = the standard lowering).
    pub salt: u64,
    hash: u64,
}

impl PlanKey {
    /// Key for the standard lowering of `(kernel, config)` on `device`.
    pub fn new(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
    ) -> Self {
        Self::with_salt(device, kernel, config, dims, 0)
    }

    /// Key in the namespace `salt` — for callers that lower plans
    /// themselves (e.g. temporal blocking) and must not collide with
    /// the standard lowering.
    pub fn with_salt(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
        salt: u64,
    ) -> Self {
        let device_id = device.fingerprint();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fold_word(&mut h, device_id);
        fold_bytes(&mut h, kernel.name.as_bytes());
        for w in [
            // The registry's stable routine id (ids 0–4 reproduce the
            // pre-registry method codes, so cached hashes are stable).
            kernel.method.routine().id(),
            kernel.radius as u64,
            kernel.elem_bytes as u64,
            kernel.flops_per_point as u64,
            kernel.streamed_inputs as u64,
            kernel.coeff_inputs as u64,
            kernel.outputs as u64,
            config.tx as u64,
            config.ty as u64,
            config.rx as u64,
            config.ry as u64,
            dims.lx as u64,
            dims.ly as u64,
            dims.lz as u64,
            salt,
        ] {
            fold_word(&mut h, w);
        }
        PlanKey {
            device_id,
            kernel: kernel.clone(),
            config: *config,
            dims,
            salt,
            hash: h,
        }
    }

    /// The precomputed process-stable 64-bit hash of this key.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }

    /// The measurement-noise key for this evaluation point — distinct
    /// configurations de-correlate because the hash covers every field.
    #[inline]
    pub fn noise_key(&self) -> NoiseKey {
        NoiseKey(self.hash)
    }
}

impl std::hash::Hash for PlanKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Snapshot of an [`EvalContext`]'s cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations served from the report cache.
    pub hits: u64,
    /// Evaluations that had to price a plan.
    pub misses: u64,
    /// Reports inserted (≤ misses: concurrent misses on one key insert
    /// once).
    pub inserts: u64,
}

impl CacheStats {
    /// Fraction of evaluations served from cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Shard {
    plans: HashMap<PlanKey, Arc<BlockPlan>>,
    /// Clean reports per key, one per pricing fingerprint (the inner
    /// list is almost always length 1 — only the ablation study prices
    /// the same key under several option sets).
    reports: HashMap<PlanKey, Vec<(u64, SimReport)>>,
}

/// Sharded memoizing front end over the plan → price → noise pipeline.
///
/// See the [module docs](self) for the layering. Construct one per
/// scope you want isolated (benchmarks construct fresh ones to measure
/// cold-cache behaviour), or use [`EvalContext::global`] — the
/// process-wide context every default-entry-point evaluation routes
/// through, which is what lets independent tuners reuse each other's
/// work within one process.
pub struct EvalContext {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalContext {
    /// An empty context.
    pub fn new() -> Self {
        EvalContext {
            shards: (0..N_SHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The process-wide shared context.
    pub fn global() -> &'static EvalContext {
        static GLOBAL: OnceLock<EvalContext> = OnceLock::new();
        GLOBAL.get_or_init(EvalContext::new)
    }

    fn shard_of(&self, key: &PlanKey) -> &RwLock<Shard> {
        &self.shards[(key.stable_hash() >> 60) as usize & (N_SHARDS - 1)]
    }

    /// Layer 1 — the memoized lowering for the standard pipeline.
    pub fn plan(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
    ) -> Arc<BlockPlan> {
        let key = PlanKey::new(device, kernel, config, dims);
        self.plan_with(&key, || build_block_plan(device, kernel, config, dims))
    }

    /// Layer 1 for externally-lowered plans: return the cached plan for
    /// `key`, building it with `build` on first use. `build` must be a
    /// pure function of `key` — the cache assumes one key ↔ one plan.
    pub fn plan_with(&self, key: &PlanKey, build: impl FnOnce() -> BlockPlan) -> Arc<BlockPlan> {
        let shard = self.shard_of(key);
        if let Some(plan) = shard.read().expect("eval cache poisoned").plans.get(key) {
            return Arc::clone(plan);
        }
        // Build outside the lock: concurrent first misses may lower the
        // same key twice, but the function is pure so either wins.
        let built = Arc::new(build());
        let mut guard = shard.write().expect("eval cache poisoned");
        Arc::clone(guard.plans.entry(key.clone()).or_insert(built))
    }

    /// Layers 1+2 for externally-lowered plans: the memoized clean
    /// price of `key`'s plan under `opts` (noise fields ignored).
    pub fn price_with(
        &self,
        device: &DeviceSpec,
        key: &PlanKey,
        dims: GridDims,
        opts: &SimOptions,
        build: impl FnOnce() -> BlockPlan,
    ) -> SimReport {
        debug_assert_eq!(
            key.device_id,
            device.fingerprint(),
            "PlanKey was built for a different device"
        );
        let fp = opts.pricing_fingerprint();
        let shard = self.shard_of(key);
        let cached = shard
            .read()
            .expect("eval cache poisoned")
            .reports
            .get(key)
            .and_then(|reports| reports.iter().find(|(f, _)| *f == fp))
            .map(|(_, report)| report.clone());
        if let Some(report) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = self.plan_with(key, build);
        let report = simulate_clean(device, &plan, &dims, opts);
        let mut guard = shard.write().expect("eval cache poisoned");
        let slot = guard.reports.entry(key.clone()).or_default();
        if !slot.iter().any(|(f, _)| *f == fp) {
            slot.push((fp, report.clone()));
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        report
    }

    /// Layer 2 — the memoized clean price of `(kernel, config)` on
    /// `device` under explicit options.
    pub fn evaluate_with(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
        opts: &SimOptions,
    ) -> SimReport {
        let key = PlanKey::new(device, kernel, config, dims);
        self.price_with(device, &key, dims, opts, || {
            build_block_plan(device, kernel, config, dims)
        })
    }

    /// Layer 2 under default options — the model's view of a launch.
    pub fn evaluate(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
    ) -> SimReport {
        self.evaluate_with(device, kernel, config, dims, &SimOptions::default())
    }

    /// Layer 3 — a "measurement": the cached clean price perturbed by
    /// the deterministic ±2% noise for `(key, seed)`. Only the noise
    /// multiply runs per call; the expensive part is shared through the
    /// cache.
    pub fn measure(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        config: &LaunchConfig,
        dims: GridDims,
        seed: u64,
    ) -> SimReport {
        let key = PlanKey::new(device, kernel, config, dims);
        let mut report = self.price_with(device, &key, dims, &SimOptions::default(), || {
            build_block_plan(device, kernel, config, dims)
        });
        apply_noise(
            &mut report,
            key.noise_key(),
            seed,
            MEASUREMENT_NOISE_AMPLITUDE,
        );
        report
    }

    /// Batch of clean evaluations, fanned out over rayon. Output order
    /// matches `configs`; results are independent of worker count.
    pub fn evaluate_batch(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        configs: &[LaunchConfig],
        dims: GridDims,
    ) -> Vec<SimReport> {
        configs
            .par_iter()
            .map(|config| self.evaluate(device, kernel, config, dims))
            .collect()
    }

    /// Batch of noisy measurements, fanned out over rayon. Output order
    /// matches `configs`; results are independent of worker count.
    pub fn measure_batch(
        &self,
        device: &DeviceSpec,
        kernel: &KernelSpec,
        configs: &[LaunchConfig],
        dims: GridDims,
        seed: u64,
    ) -> Vec<SimReport> {
        configs
            .par_iter()
            .map(|config| self.measure(device, kernel, config, dims, seed))
            .collect()
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }

    /// Cached plans + reports across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read().expect("eval cache poisoned");
                shard.plans.len() + shard.reports.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan and report and zero the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.write().expect("eval cache poisoned");
            guard.plans.clear();
            guard.reports.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{Method, Variant};
    use crate::simulate::simulate_kernel;
    use stencil_grid::Precision;

    fn spec(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    fn cfg() -> LaunchConfig {
        LaunchConfig::new(32, 8, 1, 1)
    }

    #[test]
    fn plan_keys_distinguish_every_field() {
        let dev = gpu_sim::DeviceSpec::gtx580();
        let base = PlanKey::new(&dev, &spec(2), &cfg(), GridDims::paper());
        let other_dev = PlanKey::new(
            &gpu_sim::DeviceSpec::gtx680(),
            &spec(2),
            &cfg(),
            GridDims::paper(),
        );
        let other_kernel = PlanKey::new(&dev, &spec(4), &cfg(), GridDims::paper());
        let other_cfg = PlanKey::new(
            &dev,
            &spec(2),
            &LaunchConfig::new(64, 8, 1, 1),
            GridDims::paper(),
        );
        let other_dims = PlanKey::new(&dev, &spec(2), &cfg(), GridDims::new(256, 256, 128));
        let salted = PlanKey::with_salt(&dev, &spec(2), &cfg(), GridDims::paper(), 3);
        for other in [&other_dev, &other_kernel, &other_cfg, &other_dims, &salted] {
            assert_ne!(&base, other);
            assert_ne!(base.stable_hash(), other.stable_hash());
        }
        let again = PlanKey::new(&dev, &spec(2), &cfg(), GridDims::paper());
        assert_eq!(base, again);
        assert_eq!(base.stable_hash(), again.stable_hash());
    }

    #[test]
    fn cached_evaluation_is_bit_identical_to_uncached() {
        let ctx = EvalContext::new();
        let dev = gpu_sim::DeviceSpec::gtx580();
        let direct = simulate_kernel(
            &dev,
            &spec(4),
            &cfg(),
            GridDims::paper(),
            &SimOptions::default(),
        );
        let cold = ctx.evaluate(&dev, &spec(4), &cfg(), GridDims::paper());
        let warm = ctx.evaluate(&dev, &spec(4), &cfg(), GridDims::paper());
        assert_eq!(direct.time_s.to_bits(), cold.time_s.to_bits());
        assert_eq!(cold, warm);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
    }

    #[test]
    fn measurements_share_the_clean_cache_across_seeds() {
        let ctx = EvalContext::new();
        let dev = gpu_sim::DeviceSpec::gtx680();
        let a = ctx.measure(&dev, &spec(2), &cfg(), GridDims::paper(), 7);
        let b = ctx.measure(&dev, &spec(2), &cfg(), GridDims::paper(), 7);
        let c = ctx.measure(&dev, &spec(2), &cfg(), GridDims::paper(), 8);
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        assert_ne!(a.time_s.to_bits(), c.time_s.to_bits());
        // One pricing, three cache interactions.
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        let clean = ctx.evaluate(&dev, &spec(2), &cfg(), GridDims::paper());
        assert!((a.time_s / clean.time_s - 1.0).abs() <= MEASUREMENT_NOISE_AMPLITUDE + 1e-9);
    }

    #[test]
    fn pricing_fingerprints_do_not_collide_in_cache() {
        let ctx = EvalContext::new();
        let dev = gpu_sim::DeviceSpec::gtx580();
        let default_opts = SimOptions::default();
        let slow = SimOptions {
            barrier_cycles: 512.0,
            ..SimOptions::default()
        };
        let a = ctx.evaluate_with(&dev, &spec(4), &cfg(), GridDims::paper(), &default_opts);
        let b = ctx.evaluate_with(&dev, &spec(4), &cfg(), GridDims::paper(), &slow);
        assert!(
            b.time_s > a.time_s,
            "heavier barriers must not be served from the default-opts cache"
        );
        // Same plan, two priced entries.
        let stats = ctx.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserts, 2);
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let ctx = EvalContext::new();
        let dev = gpu_sim::DeviceSpec::gtx580();
        let configs: Vec<LaunchConfig> = [(32, 8), (64, 4), (64, 8), (128, 2), (16, 16)]
            .iter()
            .map(|&(tx, ty)| LaunchConfig::new(tx, ty, 1, 1))
            .collect();
        let batch = ctx.measure_batch(&dev, &spec(2), &configs, GridDims::paper(), 5);
        let fresh = EvalContext::new();
        for (config, from_batch) in configs.iter().zip(&batch) {
            let solo = fresh.measure(&dev, &spec(2), config, GridDims::paper(), 5);
            assert_eq!(solo.time_s.to_bits(), from_batch.time_s.to_bits());
        }
    }

    #[test]
    fn clear_resets_everything() {
        let ctx = EvalContext::new();
        let dev = gpu_sim::DeviceSpec::gtx580();
        ctx.evaluate(&dev, &spec(2), &cfg(), GridDims::paper());
        assert!(!ctx.is_empty());
        ctx.clear();
        assert!(ctx.is_empty());
        assert_eq!(ctx.stats(), CacheStats::default());
    }
}
