//! Launch configurations: the four blocking parameters the auto-tuner
//! searches over.

use std::fmt;

/// A blocking configuration `(TX, TY, RX, RY)`:
///
/// * `TX × TY` — the thread block (outer, thread-level parallelism),
/// * `RX × RY` — the register block (inner, instruction-level
///   parallelism): each thread computes `RX × RY` grid points, strided by
///   the thread-block extent so stores stay coalesced (§III-C3).
///
/// The block's tile of the xy-plane is `(TX·RX) × (TY·RY)` points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Threads in x.
    pub tx: usize,
    /// Threads in y.
    pub ty: usize,
    /// Register-block factor in x.
    pub rx: usize,
    /// Register-block factor in y.
    pub ry: usize,
}

impl LaunchConfig {
    /// Construct; every factor must be ≥ 1.
    pub fn new(tx: usize, ty: usize, rx: usize, ry: usize) -> Self {
        assert!(
            tx >= 1 && ty >= 1 && rx >= 1 && ry >= 1,
            "blocking factors must be >= 1"
        );
        LaunchConfig { tx, ty, rx, ry }
    }

    /// Threads per block (`TX × TY`).
    pub fn threads(&self) -> usize {
        self.tx * self.ty
    }

    /// Tile width in x covered by one block (`TX·RX`).
    pub fn tile_x(&self) -> usize {
        self.tx * self.rx
    }

    /// Tile height in y covered by one block (`TY·RY`).
    pub fn tile_y(&self) -> usize {
        self.ty * self.ry
    }

    /// Grid points computed per thread (`RX × RY`).
    pub fn points_per_thread(&self) -> usize {
        self.rx * self.ry
    }

    /// Thread blocks needed to cover an `lx × ly` plane (Eqn (6), with
    /// ceiling division for non-dividing tiles).
    pub fn blocks_per_plane(&self, lx: usize, ly: usize) -> usize {
        lx.div_ceil(self.tile_x()) * ly.div_ceil(self.tile_y())
    }

    /// True when the configuration blocks registers at all.
    pub fn has_register_blocking(&self) -> bool {
        self.rx > 1 || self.ry > 1
    }

    /// The paper's tuple notation `(TX, TY, RX, RY)`.
    pub fn as_tuple(&self) -> (usize, usize, usize, usize) {
        (self.tx, self.ty, self.rx, self.ry)
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.tx, self.ty, self.rx, self.ry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let c = LaunchConfig::new(32, 4, 1, 4);
        assert_eq!(c.threads(), 128);
        assert_eq!(c.tile_x(), 32);
        assert_eq!(c.tile_y(), 16);
        assert_eq!(c.points_per_thread(), 4);
        assert!(c.has_register_blocking());
    }

    #[test]
    fn blocks_per_plane_divides_exactly() {
        let c = LaunchConfig::new(32, 4, 1, 4);
        assert_eq!(c.blocks_per_plane(512, 512), 16 * 32);
    }

    #[test]
    fn blocks_per_plane_rounds_up() {
        let c = LaunchConfig::new(32, 4, 1, 4);
        assert_eq!(c.blocks_per_plane(33, 17), 2 * 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            format!("{}", LaunchConfig::new(256, 1, 1, 8)),
            "(256, 1, 1, 8)"
        );
    }

    #[test]
    fn no_register_blocking() {
        assert!(!LaunchConfig::new(64, 8, 1, 1).has_register_blocking());
    }

    #[test]
    #[should_panic]
    fn zero_factor_rejected() {
        LaunchConfig::new(32, 0, 1, 1);
    }
}
