//! The stencil computation methods the paper compares.

use std::fmt;

/// Memory-loading variants of the in-plane method (Fig 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Fig 6(a): interior loaded first, then each halo separately with
    /// thread-index addressing — the same inefficient pattern as
    /// *nvstencil* (Fig 4). Representable but excluded from the paper's
    /// evaluation ("we leave this variant out").
    Classical,
    /// Fig 6(b): top and bottom halos merged with the interior (one
    /// vectorised slab of full rows); left and right halos loaded
    /// separately as columns.
    Vertical,
    /// Fig 6(c): left and right halos merged into the interior rows
    /// (rows of `TX·RX + 2r`); top and bottom halos loaded as separate
    /// full-width rows. No corners loaded.
    Horizontal,
    /// Fig 6(d): the whole `(TX·RX + 2r) × (TY·RY + 2r)` slice loaded as
    /// one uniform region — corners included (`4r²` redundant elements,
    /// independent of block size) — with warp-aligned vector loads.
    FullSlice,
    /// Full-slice loading into *two* rotated shared-memory staging
    /// buffers (the `sync_buffer_cyclic` shape): the next plane stages
    /// while the current plane computes, dropping the per-plane reuse
    /// barrier at the cost of doubling the staging footprint. Not in
    /// the paper; shipped via the open routine registry.
    DoubleBuffered,
}

impl Variant {
    /// The variants the paper evaluates in Fig 7 (classical excluded).
    pub fn evaluated() -> [Variant; 3] {
        [Variant::Vertical, Variant::Horizontal, Variant::FullSlice]
    }

    /// All five variants (the paper's four plus the registry's
    /// double-buffered extension), in stable routine-id order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::Classical,
            Variant::Vertical,
            Variant::Horizontal,
            Variant::FullSlice,
            Variant::DoubleBuffered,
        ]
    }

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Classical => "classical",
            Variant::Vertical => "vertical",
            Variant::Horizontal => "horizontal",
            Variant::FullSlice => "full-slice",
            Variant::DoubleBuffered => "double-buffered",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A stencil computation method: what plane is loaded relative to the
/// plane being written, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// The conventional 2.5-D forward-plane method of the Nvidia SDK
    /// sample (*nvstencil*, Fig 5a): the loaded plane leads the output
    /// plane by `r`; every output is computed in full from registers
    /// (z-terms) and shared memory (xy-terms). Scalar classical loading.
    ForwardPlane,
    /// The proposed in-plane method (Fig 5b): the loaded plane coincides
    /// with the halo/output plane; outputs are accumulated incrementally
    /// through a depth-`r` register pipeline (Eqns (3)–(5)).
    InPlane(Variant),
}

/// The stable routine-registry code of a method: 0 forward-plane,
/// `1 + variant` in-plane. These values predate the registry (they were
/// the hand-maintained `method_code` folds in `PlanKey` and `TuneKey`)
/// and are frozen — [`crate::routine::Routine::id`] reproduces them.
pub(crate) fn method_code(method: Method) -> u64 {
    match method {
        Method::ForwardPlane => 0,
        Method::InPlane(v) => 1 + v as u64,
    }
}

impl Method {
    /// Short label for tables ("nvstencil", "in-plane/full-slice", ...).
    pub fn label(&self) -> String {
        match self {
            Method::ForwardPlane => "nvstencil".to_string(),
            Method::InPlane(v) => format!("in-plane/{}", v.label()),
        }
    }

    /// The registered [`crate::routine::Routine`] this method tags —
    /// the one sanctioned `Method` dispatch in the workspace: every
    /// other layer goes through the routine's blueprint/skeleton.
    pub fn routine(&self) -> &'static dyn crate::routine::Routine {
        crate::routine::routine_for(*self)
    }

    /// Flops per grid point for a radius-`r` star stencil under this
    /// method: `7r + 1` forward, `8r + 1` in-plane (Table II).
    pub fn star_flops_per_point(&self, radius: usize) -> usize {
        match self {
            Method::ForwardPlane => 7 * radius + 1,
            Method::InPlane(_) => 8 * radius + 1,
        }
    }

    /// True for any in-plane variant.
    pub fn is_inplane(&self) -> bool {
        matches!(self, Method::InPlane(_))
    }

    /// The method's specified register-pipeline depth in words per
    /// point: `2r + 1` z-values forward-plane; `r` queued partials plus
    /// `r` trailing z-values in-plane (the `+1` queue slot being staged
    /// is the accumulator, not pipeline state). The lowered
    /// [`crate::plan::StagePlan`] declares exactly these depths and the
    /// static analyzer's `LNT-S004` proof asserts against them.
    pub fn pipeline_words(&self, radius: usize) -> usize {
        match self {
            Method::ForwardPlane => 2 * radius + 1,
            Method::InPlane(_) => 2 * radius,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluated_excludes_classical() {
        assert!(!Variant::evaluated().contains(&Variant::Classical));
        assert_eq!(Variant::evaluated().len(), 3);
        assert_eq!(Variant::all().len(), 5);
    }

    #[test]
    fn labels() {
        assert_eq!(Method::ForwardPlane.label(), "nvstencil");
        assert_eq!(
            Method::InPlane(Variant::FullSlice).label(),
            "in-plane/full-slice"
        );
        assert_eq!(format!("{}", Variant::Vertical), "vertical");
    }

    #[test]
    fn table2_flop_counts() {
        for r in 1..=6 {
            assert_eq!(Method::ForwardPlane.star_flops_per_point(r), 7 * r + 1);
            assert_eq!(
                Method::InPlane(Variant::FullSlice).star_flops_per_point(r),
                8 * r + 1
            );
        }
    }

    #[test]
    fn is_inplane() {
        assert!(Method::InPlane(Variant::Vertical).is_inplane());
        assert!(!Method::ForwardPlane.is_inplane());
    }
}
