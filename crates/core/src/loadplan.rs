//! Lowering a kernel + launch configuration to the per-plane workload of
//! one interior thread block.
//!
//! This is where the methods of §III become concrete memory behaviour:
//!
//! * **nvstencil / classical** (Figs 4, 5a, 6a): five scalar regions —
//!   interior, top, bottom, left, right — loaded per-row with
//!   thread-index addressing. The side halos are one mostly-idle warp
//!   instruction per row; five sequential regions mean five dependent
//!   address-setup rounds.
//! * **vertical** (Fig 6b): a vectorised slab (interior + top/bottom
//!   halos merged) plus two column-major side-halo regions — the columns
//!   are what collapse at high order.
//! * **horizontal** (Fig 6c): vectorised full-width rows (interior +
//!   side halos merged) plus two vectorised top/bottom halo regions.
//! * **full-slice** (Fig 6d): one uniform warp-packed vectorised region
//!   covering the whole halo-framed slab, corners (`4r²`) included.
//!
//! Stores follow §III-C3: each thread writes its `RX × RY` points strided
//! by the thread-block extent, so the store pattern is full coalesced
//! rows regardless of register blocking.

use crate::config::LaunchConfig;
use crate::kernel::KernelSpec;
use crate::layout::TileGeometry;
use crate::method::Method;
use crate::regions::{Assignment, Region};
use crate::resources::{block_resources, vector_width};
use crate::routine::LoadPattern;
use gpu_sim::plan::PlanePlan;
use gpu_sim::WarpLoad;

/// The load regions (in program order) for ONE streamed input grid,
/// dispatched on the routine's [`LoadPattern`].
pub fn load_regions(method: Method, geom: &TileGeometry, vec_width: usize) -> Vec<Region> {
    let (ix_s, ix_e) = geom.interior_x();
    let (iy_s, iy_e) = geom.interior_y();
    let (sx_s, sx_e) = geom.slab_x();
    let (sy_s, sy_e) = geom.slab_y();
    match method.routine().load_pattern() {
        LoadPattern::ScalarRegions => vec![
            // Interior first, then the four halos (Fig 4) — all scalar.
            Region {
                x: (ix_s, ix_e),
                y: (iy_s, iy_e),
                vector_width: 1,
                assignment: Assignment::PerRow,
            },
            Region {
                x: (ix_s, ix_e),
                y: (sy_s, iy_s),
                vector_width: 1,
                assignment: Assignment::PerRow,
            },
            Region {
                x: (ix_s, ix_e),
                y: (iy_e, sy_e),
                vector_width: 1,
                assignment: Assignment::PerRow,
            },
            Region {
                x: (sx_s, ix_s),
                y: (iy_s, iy_e),
                vector_width: 1,
                assignment: Assignment::PerRow,
            },
            Region {
                x: (ix_e, sx_e),
                y: (iy_s, iy_e),
                vector_width: 1,
                assignment: Assignment::PerRow,
            },
        ],
        LoadPattern::VerticalSlab => {
            // Merged slab: interior plus top/bottom halos, vectorised
            // (only the centre needs alignment, §III-C2).
            let mut regions = vec![Region {
                x: (ix_s, ix_e),
                y: (sy_s, sy_e),
                vector_width: vec_width,
                assignment: Assignment::Packed,
            }];
            // Side halos: each thread loops over the r halo columns, one
            // scalar column-walk per iteration — a dependent chain of
            // 2r single-column loads whose lanes land in different rows.
            // This is the pattern that collapses at high order (Fig 7).
            for dx in 0..(ix_s - sx_s) {
                regions.push(Region {
                    x: (sx_s + dx, sx_s + dx + 1),
                    y: (iy_s, iy_e),
                    vector_width: 1,
                    assignment: Assignment::ColumnMajor,
                });
                regions.push(Region {
                    x: (ix_e + dx, ix_e + dx + 1),
                    y: (iy_s, iy_e),
                    vector_width: 1,
                    assignment: Assignment::ColumnMajor,
                });
            }
            regions
        }
        LoadPattern::HorizontalRows => vec![
            // Full-width rows: interior plus side halos, vectorised.
            Region {
                x: (sx_s, sx_e),
                y: (iy_s, iy_e),
                vector_width: vec_width,
                assignment: Assignment::Packed,
            },
            // Top/bottom halo rows (no corners), vectorised.
            Region {
                x: (ix_s, ix_e),
                y: (sy_s, iy_s),
                vector_width: vec_width,
                assignment: Assignment::Packed,
            },
            Region {
                x: (ix_s, ix_e),
                y: (iy_e, sy_e),
                vector_width: vec_width,
                assignment: Assignment::Packed,
            },
        ],
        LoadPattern::FullSliceSweep => vec![
            // One uniform region: the whole halo-framed slab, corners and
            // all, warp-packed vector loads.
            Region {
                x: (sx_s, sx_e),
                y: (sy_s, sy_e),
                vector_width: vec_width,
                assignment: Assignment::Packed,
            },
        ],
    }
}

/// The store region: the tile's interior rows, scalar coalesced.
pub fn store_region(geom: &TileGeometry) -> Region {
    Region {
        x: geom.interior_x(),
        y: geom.interior_y(),
        vector_width: 1,
        assignment: Assignment::PerRow,
    }
}

/// The coefficient-grid load region: interior tile only, vectorised and
/// warp-packed (coefficient grids need no halo).
pub fn coeff_region(geom: &TileGeometry, vec_width: usize) -> Region {
    Region {
        x: geom.interior_x(),
        y: geom.interior_y(),
        vector_width: vec_width,
        assignment: Assignment::Packed,
    }
}

/// Build the full per-plane workload of one interior block, assuming
/// the legacy 32-bank × 4-byte shared-memory geometry. Device-aware
/// callers should use [`build_plane_plan_on`].
pub fn build_plane_plan(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    geom: &TileGeometry,
    warp_size: usize,
) -> PlanePlan {
    build_plane_plan_banked(
        kernel,
        config,
        geom,
        warp_size,
        gpu_sim::device::LEGACY_SMEM_BANKS,
        gpu_sim::LEGACY_SMEM_BANK_BYTES,
    )
}

/// [`build_plane_plan`] with `device`'s execution width and LDS bank
/// geometry.
pub fn build_plane_plan_on(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    geom: &TileGeometry,
    device: &gpu_sim::DeviceSpec,
) -> PlanePlan {
    build_plane_plan_banked(
        kernel,
        config,
        geom,
        device.warp_size,
        device.smem_banks,
        device.smem_bank_bytes,
    )
}

/// The generic plane-plan builder, parameterized on the shared-memory
/// bank count and width.
fn build_plane_plan_banked(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    geom: &TileGeometry,
    warp_size: usize,
    smem_banks: usize,
    smem_bank_bytes: usize,
) -> PlanePlan {
    let v = vector_width(kernel);
    let regions = load_regions(kernel.method, geom, v);

    let mut loads: Vec<WarpLoad> = Vec::new();
    for _ in 0..kernel.streamed_inputs {
        for region in &regions {
            loads.extend(region.lower(geom, warp_size));
        }
    }
    // Coefficient grids are independent allocations both implementations
    // stream identically (plain coalesced interior loads); the baseline's
    // unpadded-layout handicap applies only to the swept field grids, so
    // coefficients are lowered against an aligned geometry. They are also
    // vectorisable by either method (independent of the halo pattern).
    let aligned_geom = TileGeometry {
        x_shift: 0,
        ..*geom
    };
    let coeff = coeff_region(&aligned_geom, kernel.precision().max_vector_width());
    for _ in 0..kernel.coeff_inputs {
        loads.extend(coeff.lower(&aligned_geom, warp_size));
    }

    let mut stores: Vec<WarpLoad> = Vec::new();
    let store = store_region(geom);
    for _ in 0..kernel.outputs {
        stores.extend(store.lower(geom, warp_size));
    }

    let points = (geom.wx * geom.wy) as u64;
    let flops = points * kernel.flops_per_point as u64;

    // Shared-memory traffic: stage every streamed load once, then read
    // the 4r xy-neighbours plus the centre per computed point.
    let r = kernel.radius as u64;
    let warps = config.threads().div_ceil(warp_size) as u64;
    let smem_stores = loads.len() as u64;
    let smem_reads = warps * config.points_per_thread() as u64 * (4 * r + 1);
    // Dependency depth of the load phase: one address-setup round per
    // program-order region (per streamed grid) — the §III-C1 argument for
    // merging regions.
    let rounds = (regions.len() * kernel.streamed_inputs.max(1) + kernel.coeff_inputs) as f64;

    // Bank conflicts during the compute phase, computed from the actual
    // warp/tile geometry: warps of narrow blocks (TX below the warp
    // width) span several tile rows, which collide when the tile pitch
    // lands on a bank multiple. The staged tile's pitch includes the
    // halo frame and is measured in bank-width words.
    let pitch_words = (geom.wx + 2 * geom.r) * kernel.elem_bytes / smem_bank_bytes;
    let bank_conflict_factor = gpu_sim::stencil_phase_factor(
        config.tx,
        config.threads(),
        pitch_words,
        kernel.radius,
        warp_size,
        smem_banks,
    );

    PlanePlan {
        loads,
        stores,
        smem_warp_instrs: smem_stores + smem_reads,
        bank_conflict_factor,
        flops,
        dependent_rounds: rounds,
        ilp: config.points_per_thread() as f64,
        // Barriers per plane from the routine's schedule skeleton (2
        // stage + reuse; 1 for double-buffered staging) — the same
        // count the lowered execution plan emits and LNT-S003 proves.
        syncthreads: kernel
            .method
            .routine()
            .skeleton(kernel.radius)
            .barriers_per_plane as u64,
    }
}

/// Convenience: plan plus resources for one interior block on a device
/// with the given segment size.
pub fn plan_for_device(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    lx: usize,
    segment_bytes: u64,
    warp_size: usize,
) -> (PlanePlan, gpu_sim::occupancy::BlockResources, TileGeometry) {
    let mut geom = TileGeometry::interior(
        config,
        kernel.radius,
        kernel.elem_bytes as u64,
        lx,
        segment_bytes,
    );
    // The stock SDK baseline works on the raw (unpadded) allocation, so
    // its tiles sit misaligned by the boundary-ring width; the in-plane
    // implementation pads the grid for alignment (§III-C2).
    if kernel.method.routine().unaligned_layout() {
        geom = geom.unaligned_baseline();
    }
    let plan = build_plane_plan(kernel, config, &geom, warp_size);
    let res = block_resources(kernel, config);
    (plan, res, geom)
}

/// [`plan_for_device`] driven entirely by a [`gpu_sim::DeviceSpec`]:
/// segment size, warp/wavefront width and LDS bank geometry all come
/// from the spec, so wave64 parts plan with 64-wide execution and
/// their own bank shape.
pub fn plan_for_device_on(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    lx: usize,
    device: &gpu_sim::DeviceSpec,
) -> (PlanePlan, gpu_sim::occupancy::BlockResources, TileGeometry) {
    let mut geom = TileGeometry::interior(
        config,
        kernel.radius,
        kernel.elem_bytes as u64,
        lx,
        device.segment_bytes,
    );
    if kernel.method.routine().unaligned_layout() {
        geom = geom.unaligned_baseline();
    }
    let plan = build_plane_plan_on(kernel, config, &geom, device);
    let res = block_resources(kernel, config);
    (plan, res, geom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Variant;
    use gpu_sim::MemCounters;
    use stencil_grid::Precision;

    fn geom(config: &LaunchConfig, r: usize) -> TileGeometry {
        TileGeometry::interior(config, r, 4, 512, 128)
    }

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    fn counters(loads: &[WarpLoad]) -> MemCounters {
        let mut c = MemCounters::default();
        c.record_all(loads, 128);
        c
    }

    #[test]
    fn region_counts_per_method() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        assert_eq!(load_regions(Method::ForwardPlane, &g, 1).len(), 5);
        // Vertical: slab + one column region per halo column per side.
        assert_eq!(
            load_regions(Method::InPlane(Variant::Vertical), &g, 4).len(),
            1 + 2 * 2
        );
        assert_eq!(
            load_regions(Method::InPlane(Variant::Horizontal), &g, 4).len(),
            3
        );
        assert_eq!(
            load_regions(Method::InPlane(Variant::FullSlice), &g, 4).len(),
            1
        );
    }

    #[test]
    fn every_method_covers_the_stencil_footprint() {
        // Whatever the loading pattern, the union of loaded addresses
        // must include interior + the four in-plane halo arms.
        let c = LaunchConfig::new(32, 4, 1, 2);
        let r = 2usize;
        let g = geom(&c, r);
        let needed: Vec<u64> = {
            let mut v = Vec::new();
            let (ixs, ixe) = g.interior_x();
            let (iys, iye) = g.interior_y();
            for y in iys..iye {
                for x in (ixs - r as isize)..(ixe + r as isize) {
                    v.push(g.addr(x, y));
                }
            }
            for y in (iys - r as isize)..iys {
                for x in ixs..ixe {
                    v.push(g.addr(x, y));
                }
            }
            for y in iye..(iye + r as isize) {
                for x in ixs..ixe {
                    v.push(g.addr(x, y));
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        };
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::Vertical),
            Method::InPlane(Variant::Horizontal),
            Method::InPlane(Variant::FullSlice),
        ] {
            let k = spec(method, 2 * r);
            let plan = build_plane_plan(&k, &c, &g, 32);
            let mut covered: Vec<u64> = plan
                .loads
                .iter()
                .flat_map(|l| {
                    l.lane_addresses
                        .iter()
                        .flat_map(move |&a| (0..l.bytes_per_lane / 4).map(move |i| a + i * 4))
                })
                .collect();
            covered.sort_unstable();
            covered.dedup();
            for addr in &needed {
                assert!(
                    covered.binary_search(addr).is_ok(),
                    "{method:?} misses address {addr}"
                );
            }
        }
    }

    #[test]
    fn full_slice_loads_exactly_slab_plus_alignment() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let k = spec(Method::InPlane(Variant::FullSlice), 4);
        let plan = build_plane_plan(&k, &c, &g, 32);
        let requested: u64 = plan.loads.iter().map(|l| l.requested_bytes()).sum();
        // Slab is 36 × 12; rows extend [30,66) → [28,68) = 40 wide.
        assert_eq!(requested, 40 * 12 * 4);
    }

    #[test]
    fn store_is_fully_coalesced() {
        let c = LaunchConfig::new(32, 8, 1, 2);
        let g = geom(&c, 2);
        let k = spec(Method::InPlane(Variant::FullSlice), 4);
        let plan = build_plane_plan(&k, &c, &g, 32);
        let ctr = counters(&plan.stores);
        assert!(
            (ctr.efficiency() - 1.0).abs() < 1e-12,
            "stores must be coalesced"
        );
        // One write per tile point.
        assert_eq!(ctr.requested_bytes, (g.wx * g.wy) as u64 * 4);
    }

    #[test]
    fn nvstencil_has_worse_load_efficiency_than_full_slice() {
        // The Fig 9 effect, at plan level: the padded/aligned in-plane
        // layout coalesces better than the baseline's unpadded layout.
        for order in [2usize, 4, 8, 12] {
            let c = LaunchConfig::new(32, 8, 1, 1);
            let (nv, _, _) = plan_for_device(&spec(Method::ForwardPlane, order), &c, 512, 128, 32);
            let (fs, _, _) = plan_for_device(
                &spec(Method::InPlane(Variant::FullSlice), order),
                &c,
                512,
                128,
                32,
            );
            let e_nv = counters(&nv.loads).efficiency();
            let e_fs = counters(&fs.loads).efficiency();
            assert!(
                e_fs > e_nv,
                "order {order}: full-slice eff {e_fs:.3} must beat nvstencil {e_nv:.3}"
            );
        }
    }

    #[test]
    fn full_slice_moves_fewer_bytes_than_nvstencil() {
        // Despite the 4r² redundant corners, the aligned coalesced slab
        // moves fewer bus bytes than nvstencil's misaligned multi-region
        // loading at low orders (at high orders the corner overhead eats
        // the margin — §IV-C's explanation for the decreasing speedup).
        for order in [2usize, 4] {
            let c = LaunchConfig::new(32, 8, 1, 1);
            let (nv, _, _) = plan_for_device(&spec(Method::ForwardPlane, order), &c, 512, 128, 32);
            let (fs, _, _) = plan_for_device(
                &spec(Method::InPlane(Variant::FullSlice), order),
                &c,
                512,
                128,
                32,
            );
            let t_nv = counters(&nv.loads).transferred_bytes;
            let t_fs = counters(&fs.loads).transferred_bytes;
            assert!(
                t_fs < t_nv,
                "order {order}: full-slice {t_fs} B must be below nvstencil {t_nv} B"
            );
        }
    }

    #[test]
    fn baseline_layout_is_misaligned_by_radius() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let (_, _, g_nv) = plan_for_device(&spec(Method::ForwardPlane, 8), &c, 512, 128, 32);
        let (_, _, g_fs) = plan_for_device(
            &spec(Method::InPlane(Variant::FullSlice), 8),
            &c,
            512,
            128,
            32,
        );
        assert_eq!(g_nv.x_shift, 4);
        assert_eq!(g_fs.x_shift, 0);
        // The shift moves every address by r elements.
        assert_eq!(g_nv.addr(0, 0), g_fs.addr(4, 0));
    }

    #[test]
    fn vertical_collapses_at_high_order() {
        // Fig 7: vertical ≈ nvstencil at order 2, clearly worse at 12.
        let c = LaunchConfig::new(32, 8, 1, 1);
        let ratio = |order: usize| {
            let g = geom(&c, order / 2);
            let nv = build_plane_plan(&spec(Method::ForwardPlane, order), &c, &g, 32);
            let vt = build_plane_plan(&spec(Method::InPlane(Variant::Vertical), order), &c, &g, 32);
            counters(&vt.loads).transferred_bytes as f64
                / counters(&nv.loads).transferred_bytes as f64
        };
        assert!(ratio(2) < 1.1, "vertical should be competitive at order 2");
        assert!(
            ratio(12) > 1.25,
            "vertical must collapse at order 12, got {}",
            ratio(12)
        );
    }

    #[test]
    fn horizontal_close_to_full_slice() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let hz = build_plane_plan(&spec(Method::InPlane(Variant::Horizontal), 4), &c, &g, 32);
        let fs = build_plane_plan(&spec(Method::InPlane(Variant::FullSlice), 4), &c, &g, 32);
        let t_hz = counters(&hz.loads).transferred_bytes as f64;
        let t_fs = counters(&fs.loads).transferred_bytes as f64;
        assert!((t_hz / t_fs - 1.0).abs() < 0.25);
        // But full-slice needs fewer regions (dependency rounds).
        assert!(fs.dependent_rounds < hz.dependent_rounds);
    }

    #[test]
    fn vector_loads_cut_instruction_count() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let fs = build_plane_plan(&spec(Method::InPlane(Variant::FullSlice), 2), &c, &g, 32);
        let nv = build_plane_plan(&spec(Method::ForwardPlane, 2), &c, &g, 32);
        assert!(
            (fs.loads.len() as f64) < nv.loads.len() as f64 / 2.0,
            "full-slice {} instrs vs nvstencil {}",
            fs.loads.len(),
            nv.loads.len()
        );
    }

    #[test]
    fn multigrid_scales_loads_and_stores() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let mut k = spec(Method::InPlane(Variant::FullSlice), 2);
        let base = build_plane_plan(&k, &c, &g, 32);
        k.streamed_inputs = 3;
        k.coeff_inputs = 2;
        k.outputs = 2;
        let multi = build_plane_plan(&k, &c, &g, 32);
        assert_eq!(multi.stores.len(), 2 * base.stores.len());
        assert!(multi.loads.len() > 3 * base.loads.len());
        let c_multi = counters(&multi.loads);
        let c_base = counters(&base.loads);
        // Coefficient grids add interior-only traffic.
        assert!(c_multi.requested_bytes > 3 * c_base.requested_bytes);
    }

    #[test]
    fn flops_match_spec() {
        let c = LaunchConfig::new(32, 8, 2, 2);
        let g = geom(&c, 1);
        let k = spec(Method::InPlane(Variant::FullSlice), 2);
        let plan = build_plane_plan(&k, &c, &g, 32);
        // Tile is (32·2) × (8·2) = 64 × 16 points at 9 flops each.
        assert_eq!(plan.flops, (64 * 16) as u64 * 9);
        assert_eq!(plan.ilp, 4.0);
    }

    #[test]
    fn plan_for_device_bundles_consistently() {
        let c = LaunchConfig::new(64, 4, 1, 2);
        let k = spec(Method::InPlane(Variant::FullSlice), 4);
        let (plan, res, g) = plan_for_device(&k, &c, 512, 128, 32);
        assert_eq!(res.threads, 256);
        assert_eq!(g.wx, 64);
        assert!(plan.flops > 0);
    }
}
