//! Kernel specifications: everything the performance path needs to know
//! about a stencil computation, independent of the actual numerics.

use crate::method::{Method, Variant};
use stencil_grid::{MultiGridKernel, Precision, Real, StarStencil};

/// Performance-relevant description of a stencil kernel.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KernelSpec {
    /// Display name.
    pub name: String,
    /// Computation method (forward-plane vs in-plane variant).
    pub method: Method,
    /// Neighbourhood radius `r`.
    pub radius: usize,
    /// Element width in bytes (4 = SP, 8 = DP).
    pub elem_bytes: usize,
    /// Flops per output grid point under `method`.
    pub flops_per_point: usize,
    /// Input grids that stream through the z-pipeline and need the
    /// variant's halo loading (the field grids swapped each iteration).
    pub streamed_inputs: usize,
    /// Time-invariant coefficient grids: loaded per plane, interior tile
    /// only (no halos), coalesced.
    pub coeff_inputs: usize,
    /// Output grids written per point.
    pub outputs: usize,
}

impl KernelSpec {
    /// Spec for the symmetric star stencil of Eqn (1) under `method`.
    pub fn star<T: Real>(method: Method, stencil: &StarStencil<T>) -> Self {
        let r = stencil.radius();
        KernelSpec {
            name: format!("star-{} {}", stencil.order(), method.label()),
            method,
            radius: r,
            elem_bytes: T::PRECISION.bytes(),
            flops_per_point: method.star_flops_per_point(r),
            streamed_inputs: 1,
            coeff_inputs: 0,
            outputs: 1,
        }
    }

    /// The *nvstencil* baseline for a star stencil.
    pub fn forward<T: Real>(stencil: &StarStencil<T>) -> Self {
        Self::star(Method::ForwardPlane, stencil)
    }

    /// An in-plane variant for a star stencil.
    pub fn inplane<T: Real>(variant: Variant, stencil: &StarStencil<T>) -> Self {
        Self::star(Method::InPlane(variant), stencil)
    }

    /// Spec for a star stencil given order and precision directly.
    pub fn star_order(method: Method, order: usize, precision: Precision) -> Self {
        let r = order / 2;
        assert!(
            order >= 2 && order.is_multiple_of(2),
            "order must be even and >= 2"
        );
        KernelSpec {
            name: format!("star-{order} {} {}", method.label(), precision.label()),
            method,
            radius: r,
            elem_bytes: precision.bytes(),
            flops_per_point: method.star_flops_per_point(r),
            streamed_inputs: 1,
            coeff_inputs: 0,
            outputs: 1,
        }
    }

    /// Spec for an application (multi-grid) kernel under `method`.
    pub fn from_app<T: Real>(method: Method, app: &dyn MultiGridKernel<T>) -> Self {
        let streamed = app.num_streamed_inputs();
        let flops = if method.is_inplane() {
            app.flops_per_point_inplane()
        } else {
            app.flops_per_point()
        };
        KernelSpec {
            name: format!("{} {}", app.name(), method.label()),
            method,
            radius: app.radius(),
            elem_bytes: T::PRECISION.bytes(),
            flops_per_point: flops,
            streamed_inputs: streamed,
            coeff_inputs: app.num_inputs() - streamed,
            outputs: app.num_outputs(),
        }
    }

    /// Total grids touched per point (Table V's In + Out).
    pub fn total_grids(&self) -> usize {
        self.streamed_inputs + self.coeff_inputs + self.outputs
    }

    /// Precision tag.
    pub fn precision(&self) -> Precision {
        match self.elem_bytes {
            4 => Precision::Single,
            8 => Precision::Double,
            other => panic!("unsupported element width {other}"),
        }
    }

    /// The same spec under a different method (used for baselining).
    /// The flops adjustment strips this routine's pipeline overhead and
    /// adds the target routine's, so
    /// `spec.with_method(m1).with_method(m0)` restores the original
    /// flops count exactly for every routine pair.
    pub fn with_method(&self, method: Method) -> Self {
        let mut s = self.clone();
        let base_flops = self.flops_per_point - self.method.routine().flops_overhead(self.radius);
        s.flops_per_point = base_flops + method.routine().flops_overhead(self.radius);
        s.method = method;
        s.name = s.name.replace(&self.method.label(), &method.label());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_spec_from_stencil() {
        let s: StarStencil<f32> = StarStencil::from_order(8);
        let spec = KernelSpec::inplane(Variant::FullSlice, &s);
        assert_eq!(spec.radius, 4);
        assert_eq!(spec.elem_bytes, 4);
        assert_eq!(spec.flops_per_point, 33); // 8r+1, Table II
        assert_eq!(spec.streamed_inputs, 1);
        assert_eq!(spec.outputs, 1);
        assert_eq!(spec.total_grids(), 2);
    }

    #[test]
    fn forward_spec_flops() {
        let s: StarStencil<f64> = StarStencil::from_order(8);
        let spec = KernelSpec::forward(&s);
        assert_eq!(spec.flops_per_point, 29); // 7r+1
        assert_eq!(spec.elem_bytes, 8);
        assert_eq!(spec.precision(), Precision::Double);
    }

    #[test]
    fn star_order_constructor() {
        let spec = KernelSpec::star_order(Method::ForwardPlane, 12, Precision::Single);
        assert_eq!(spec.radius, 6);
        assert_eq!(spec.flops_per_point, 43);
    }

    #[test]
    #[should_panic]
    fn odd_order_rejected() {
        KernelSpec::star_order(Method::ForwardPlane, 5, Precision::Single);
    }

    #[test]
    fn with_method_round_trips_for_every_routine_pair() {
        // Satellite property: with_method(m1).with_method(m0) restores
        // the original spec's flops for every registry routine pair,
        // every order, both precisions — including app-style specs
        // whose flops are not the star formula.
        for precision in [Precision::Single, Precision::Double] {
            for order in [2usize, 4, 8, 12] {
                for a in crate::routine::registry() {
                    for b in crate::routine::registry() {
                        let spec = KernelSpec::star_order(a.method(), order, precision);
                        let rt = spec.with_method(b.method()).with_method(a.method());
                        assert_eq!(
                            rt.flops_per_point,
                            spec.flops_per_point,
                            "{} -> {} -> {} ({order}, {precision:?})",
                            a.label(),
                            b.label(),
                            a.label()
                        );
                        assert_eq!(rt.method, spec.method);
                        // App-style spec: flops decoupled from 7r+1.
                        let mut app = spec.clone();
                        app.flops_per_point = 97 + a.flops_overhead(spec.radius);
                        let rt = app.with_method(b.method()).with_method(a.method());
                        assert_eq!(rt.flops_per_point, app.flops_per_point);
                    }
                }
            }
        }
    }

    #[test]
    fn with_method_switches_flops_both_ways() {
        let s: StarStencil<f32> = StarStencil::from_order(6);
        let fwd = KernelSpec::forward(&s);
        let inp = fwd.with_method(Method::InPlane(Variant::FullSlice));
        assert_eq!(inp.flops_per_point, 25);
        let back = inp.with_method(Method::ForwardPlane);
        assert_eq!(back.flops_per_point, 22);
        assert_eq!(back.method, Method::ForwardPlane);
    }
}
