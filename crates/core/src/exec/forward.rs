//! Functional emulation of the forward-plane (*nvstencil*) method.
//!
//! Per §III-B: each thread keeps the `2r + 1` z-values of its column in a
//! register pipeline; the current plane's centre values are published to
//! shared memory (with the four halo arms loaded from global memory) for
//! the xy-neighbour exchange; as the block marches down z, the pipeline
//! shifts and the *forward* plane `k + r` is fetched from global memory.
//!
//! Since the StagePlan refactor this is a thin shim: the schedule above
//! is produced by [`crate::plan::lower_forward`] and run by the single
//! plan interpreter, which reproduces the summation order of
//! [`stencil_grid::apply_reference`] exactly (centre; then per `m`: −x,
//! +x, −y, +y, −z, +z), so SP results are bit-identical to the golden
//! model.

use super::interp::interpret_plan;
use super::ExecStats;
use crate::config::LaunchConfig;
use crate::plan::lower_forward;
use stencil_grid::{Grid3, Real, StarStencil};

/// Run one Jacobi step with the forward-plane method. Interior only;
/// the caller applies the boundary policy.
pub fn execute_forward_plane<T: Real>(
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> ExecStats {
    let plan = lower_forward(config, stencil.radius(), input.dims());
    interpret_plan(&plan, stencil, input, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_reference, max_abs_diff, Boundary, FillPattern};

    #[test]
    fn single_tile_matches_reference_exactly() {
        let s: StarStencil<f32> = StarStencil::from_order(4);
        let input: Grid3<f32> = FillPattern::Random {
            lo: -2.0,
            hi: 2.0,
            seed: 42,
        }
        .build(12, 12, 12);
        let mut golden = Grid3::new(12, 12, 12);
        apply_reference(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(12, 12, 12);
        execute_forward_plane(&s, &LaunchConfig::new(8, 8, 1, 1), &input, &mut got);
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn large_radius_small_tile() {
        let s: StarStencil<f64> = StarStencil::from_order(10);
        let input: Grid3<f64> = FillPattern::HashNoise.build(15, 15, 15);
        let mut golden = Grid3::new(15, 15, 15);
        apply_reference(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(15, 15, 15);
        execute_forward_plane(&s, &LaunchConfig::new(2, 2, 1, 1), &input, &mut got);
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn pipeline_depth_is_2r_plus_1() {
        // Radius 1 on a minimal 4³ grid: exactly two output planes
        // (k = 1, 2) exercise both the initial fill and one shift.
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let input: Grid3<f64> = FillPattern::Linear {
            a: 1.0,
            b: 1.0,
            c: 1.0,
        }
        .build(4, 4, 4);
        let mut got = Grid3::new(4, 4, 4);
        execute_forward_plane(&s, &LaunchConfig::new(4, 4, 1, 1), &input, &mut got);
        // Laplacian of a linear field vanishes.
        for k in 1..3 {
            for j in 1..3 {
                for i in 1..3 {
                    assert!(got.get(i, j, k).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn interpreter_counts_barriers_and_rotations() {
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let input: Grid3<f64> = FillPattern::HashNoise.build(6, 6, 6);
        let mut got = Grid3::new(6, 6, 6);
        let stats = execute_forward_plane(&s, &LaunchConfig::new(4, 4, 1, 1), &input, &mut got);
        // One block, four output planes: two barriers each, a rotation
        // after every plane but the last.
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.barriers, 4 * 2);
        assert_eq!(stats.pipeline_rotations, 3);
        assert_eq!(stats.points_computed, 4 * 4 * 4);
        assert_eq!(stats.redundancy(), 1.0);
    }
}
