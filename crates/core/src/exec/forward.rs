//! Functional emulation of the forward-plane (*nvstencil*) method.
//!
//! Per §III-B: each thread keeps the `2r + 1` z-values of its column in a
//! register pipeline; the current plane's centre values are published to
//! shared memory (with the four halo arms loaded from global memory) for
//! the xy-neighbour exchange; as the block marches down z, the pipeline
//! shifts and the *forward* plane `k + r` is fetched from global memory.
//!
//! Summation order per point matches [`stencil_grid::apply_reference`]
//! exactly (centre; then per `m`: −x, +x, −y, +y, −z, +z), so SP results
//! are bit-identical to the golden model.

use super::buffer::SharedBuffer;
use super::{tiles, ExecStats};
use crate::config::LaunchConfig;
use stencil_grid::{Grid3, Real, StarStencil};

/// Run one Jacobi step with the forward-plane method. Interior only;
/// the caller applies the boundary policy.
pub fn execute_forward_plane<T: Real>(
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> ExecStats {
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    let mut stats = ExecStats::default();

    for (x0, y0, w, h) in tiles(nx, ny, r, config) {
        stats.blocks += 1;
        let idx = |x: usize, y: usize| (y - y0) * w + (x - x0);

        // Register pipelines: pipeline[p][d] = in(p, k - r + d), d = 0..2r.
        let mut pipeline: Vec<Vec<T>> = vec![vec![T::ZERO; 2 * r + 1]; w * h];
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                for (d, slot) in pipeline[idx(x, y)].iter_mut().enumerate() {
                    *slot = input.get(x, y, d); // planes 0..2r for k = r
                }
            }
        }

        let mut buf: SharedBuffer<T> = SharedBuffer::for_tile(x0, y0, w, h, r);

        for k in r..nz - r {
            stats.planes_staged += 1;
            buf.clear();
            buf.set_plane(k);
            // Publish centre registers (plane k) to shared memory.
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    buf.stage(x as isize, y as isize, pipeline[idx(x, y)][r]);
                    stats.cells_staged += 1;
                }
            }
            // Halo arms of plane k from global memory (no corners).
            for m in 1..=r as isize {
                for y in y0..y0 + h {
                    let (xl, xr) = (x0 as isize - m, (x0 + w - 1) as isize + m);
                    buf.stage(xl, y as isize, input.get(xl as usize, y, k));
                    buf.stage(xr, y as isize, input.get(xr as usize, y, k));
                    stats.cells_staged += 2;
                }
                for x in x0..x0 + w {
                    let (yt, yb) = (y0 as isize - m, (y0 + h - 1) as isize + m);
                    buf.stage(x as isize, yt, input.get(x, yt as usize, k));
                    buf.stage(x as isize, yb, input.get(x, yb as usize, k));
                    stats.cells_staged += 2;
                }
            }
            // __syncthreads(); compute.
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    let p = idx(x, y);
                    let (xi, yi) = (x as isize, y as isize);
                    let mut acc = stencil.c0() * buf.read(xi, yi);
                    for m in 1..=r {
                        let d = m as isize;
                        let six = buf.read(xi - d, yi)
                            + buf.read(xi + d, yi)
                            + buf.read(xi, yi - d)
                            + buf.read(xi, yi + d)
                            + pipeline[p][r - m]
                            + pipeline[p][r + m];
                        acc += stencil.c(m) * six;
                    }
                    out.set(x, y, k, acc);
                    stats.global_writes += 1;
                }
            }
            // Shift pipelines; fetch the next forward plane k + r + 1.
            if k + 1 < nz - r {
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        let p = idx(x, y);
                        pipeline[p].rotate_left(1);
                        let last = 2 * r;
                        pipeline[p][last] = input.get(x, y, k + r + 1);
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_reference, max_abs_diff, Boundary, FillPattern};

    #[test]
    fn single_tile_matches_reference_exactly() {
        let s: StarStencil<f32> = StarStencil::from_order(4);
        let input: Grid3<f32> = FillPattern::Random {
            lo: -2.0,
            hi: 2.0,
            seed: 42,
        }
        .build(12, 12, 12);
        let mut golden = Grid3::new(12, 12, 12);
        apply_reference(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(12, 12, 12);
        execute_forward_plane(&s, &LaunchConfig::new(8, 8, 1, 1), &input, &mut got);
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn large_radius_small_tile() {
        let s: StarStencil<f64> = StarStencil::from_order(10);
        let input: Grid3<f64> = FillPattern::HashNoise.build(15, 15, 15);
        let mut golden = Grid3::new(15, 15, 15);
        apply_reference(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(15, 15, 15);
        execute_forward_plane(&s, &LaunchConfig::new(2, 2, 1, 1), &input, &mut got);
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn pipeline_depth_is_2r_plus_1() {
        // Radius 1 on a minimal 4³ grid: exactly two output planes
        // (k = 1, 2) exercise both the initial fill and one shift.
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let input: Grid3<f64> = FillPattern::Linear {
            a: 1.0,
            b: 1.0,
            c: 1.0,
        }
        .build(4, 4, 4);
        let mut got = Grid3::new(4, 4, 4);
        execute_forward_plane(&s, &LaunchConfig::new(4, 4, 1, 1), &input, &mut got);
        // Laplacian of a linear field vanishes.
        for k in 1..3 {
            for j in 1..3 {
                for i in 1..3 {
                    assert!(got.get(i, j, k).abs() < 1e-12);
                }
            }
        }
    }
}
