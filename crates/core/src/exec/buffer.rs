//! The emulated shared-memory staging buffer.
//!
//! Cells must be explicitly staged before they can be read; reading an
//! un-staged cell panics. That turns the variants' structural promises
//! into checked invariants: e.g. the horizontal pattern never stages the
//! corner cells, so a kernel that accidentally read a corner would fail
//! its tests instead of silently reading stale shared memory (which is
//! what the real CUDA kernel would do).

use stencil_grid::Real;

/// A 2-D staging buffer covering grid columns `[x0, x0+w)` and rows
/// `[y0, y0+h)` of the current z-plane.
#[derive(Clone, Debug)]
pub struct SharedBuffer<T> {
    x0: isize,
    y0: isize,
    w: usize,
    h: usize,
    data: Vec<T>,
    staged: Vec<bool>,
    stage_count: u64,
}

impl<T: Real> SharedBuffer<T> {
    /// Allocate a buffer for the given grid-coordinate window.
    pub fn new(x0: isize, y0: isize, w: usize, h: usize) -> Self {
        SharedBuffer {
            x0,
            y0,
            w,
            h,
            data: vec![T::ZERO; w * h],
            staged: vec![false; w * h],
            stage_count: 0,
        }
    }

    /// Buffer for a tile `[x0, x0+w) × [y0, y0+h)` framed by a halo of
    /// width `r` on every side.
    pub fn for_tile(x0: usize, y0: usize, w: usize, h: usize, r: usize) -> Self {
        Self::new(
            x0 as isize - r as isize,
            y0 as isize - r as isize,
            w + 2 * r,
            h + 2 * r,
        )
    }

    #[inline]
    fn index(&self, x: isize, y: isize) -> usize {
        let lx = x - self.x0;
        let ly = y - self.y0;
        assert!(
            lx >= 0 && (lx as usize) < self.w && ly >= 0 && (ly as usize) < self.h,
            "shared-buffer access ({x},{y}) outside window [{},{})x[{},{})",
            self.x0,
            self.x0 + self.w as isize,
            self.y0,
            self.y0 + self.h as isize,
        );
        ly as usize * self.w + lx as usize
    }

    /// Stage a value at grid coordinates `(x, y)`.
    pub fn stage(&mut self, x: isize, y: isize, v: T) {
        let i = self.index(x, y);
        self.data[i] = v;
        self.staged[i] = true;
        self.stage_count += 1;
    }

    /// Read a staged value.
    ///
    /// # Panics
    /// Panics if the cell was never staged since the last
    /// [`SharedBuffer::clear`] — the emulated equivalent of reading
    /// garbage shared memory.
    pub fn read(&self, x: isize, y: isize) -> T {
        let i = self.index(x, y);
        assert!(
            self.staged[i],
            "read of un-staged shared-buffer cell ({x},{y})"
        );
        self.data[i]
    }

    /// Whether a cell currently holds staged data.
    pub fn is_staged(&self, x: isize, y: isize) -> bool {
        self.staged[self.index(x, y)]
    }

    /// Invalidate all cells (the per-plane restage).
    pub fn clear(&mut self) {
        self.staged.fill(false);
    }

    /// Total stage operations performed over the buffer's lifetime.
    pub fn stage_count(&self) -> u64 {
        self.stage_count
    }

    /// Window extent `(w, h)`.
    pub fn extent(&self) -> (usize, usize) {
        (self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_then_read_roundtrips() {
        let mut b: SharedBuffer<f32> = SharedBuffer::new(10, 20, 4, 4);
        b.stage(11, 21, 3.5);
        assert_eq!(b.read(11, 21), 3.5);
        assert!(b.is_staged(11, 21));
        assert!(!b.is_staged(10, 20));
    }

    #[test]
    #[should_panic(expected = "un-staged")]
    fn unstaged_read_panics() {
        let b: SharedBuffer<f64> = SharedBuffer::new(0, 0, 2, 2);
        b.read(0, 0);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn out_of_window_access_panics() {
        let b: SharedBuffer<f32> = SharedBuffer::new(0, 0, 2, 2);
        let _ = b.is_staged(2, 0);
    }

    #[test]
    fn clear_invalidates() {
        let mut b: SharedBuffer<f32> = SharedBuffer::new(0, 0, 2, 2);
        b.stage(1, 1, 1.0);
        b.clear();
        assert!(!b.is_staged(1, 1));
        assert_eq!(b.stage_count(), 1);
    }

    #[test]
    fn for_tile_frames_with_halo() {
        let b: SharedBuffer<f32> = SharedBuffer::for_tile(8, 8, 4, 4, 2);
        assert_eq!(b.extent(), (8, 8));
        // Halo corners are inside the window (stageable but never
        // required to be staged).
        assert!(!b.is_staged(6, 6));
        assert!(!b.is_staged(13, 13));
    }

    #[test]
    fn negative_window_coordinates_work() {
        let mut b: SharedBuffer<f64> = SharedBuffer::new(-3, -2, 4, 4);
        b.stage(-3, -2, 7.0);
        assert_eq!(b.read(-3, -2), 7.0);
    }
}
