//! The emulated shared-memory staging buffer.
//!
//! Cells must be explicitly staged before they can be read; reading an
//! un-staged cell panics. That turns the variants' structural promises
//! into checked invariants: e.g. the horizontal pattern never stages the
//! corner cells, so a kernel that accidentally read a corner would fail
//! its tests instead of silently reading stale shared memory (which is
//! what the real CUDA kernel would do).

use std::fmt;
use stencil_grid::Real;

/// Structured description of a read from an un-staged shared-buffer
/// cell: where in the grid it happened, which z-plane the buffer was
/// staging, and which zone of the halo-framed window the cell belongs
/// to. This is the dynamic counterpart of the static schedule proof in
/// `stencil-lint` (`LNT-S001`): both name the same coordinates and
/// staging zone, so a static finding can be cross-checked against the
/// emulator's runtime verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageError {
    /// The stable `stencil-lint` diagnostic code the failure corresponds
    /// to: [`StageError::UNSTAGED_READ`] for reads of un-staged cells,
    /// [`StageError::EMPTY_PLAN`] for plans with no compute schedule.
    pub code: &'static str,
    /// Grid x-coordinate of the offending read.
    pub x: isize,
    /// Grid y-coordinate of the offending read.
    pub y: isize,
    /// z-plane the buffer was staging when the read happened (`None`
    /// before the first [`SharedBuffer::set_plane`]).
    pub plane: Option<usize>,
    /// Which staging zone the cell belongs to: `interior`, `top halo`,
    /// `bottom halo`, `left halo`, `right halo` or `corner halo`.
    pub zone: &'static str,
}

impl StageError {
    /// Code of a read from an un-staged shared-buffer cell — the
    /// runtime counterpart of the static `LNT-S001` schedule proof.
    pub const UNSTAGED_READ: &'static str = "LNT-S001";
    /// Code of a checked run over a plan whose census reports zero
    /// compute points — the runtime counterpart of the static `LNT-D005`
    /// output-coverage proof.
    pub const EMPTY_PLAN: &'static str = "LNT-D005";
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.code == Self::EMPTY_PLAN {
            return write!(f, "plan computes zero points (empty compute schedule)");
        }
        write!(
            f,
            "read of un-staged shared-buffer cell ({},{}) in the {}",
            self.x, self.y, self.zone
        )?;
        match self.plane {
            Some(k) => write!(f, " while staging plane {k}"),
            None => write!(f, " before any plane was staged"),
        }
    }
}

impl std::error::Error for StageError {}

/// A 2-D staging buffer covering grid columns `[x0, x0+w)` and rows
/// `[y0, y0+h)` of the current z-plane.
#[derive(Clone, Debug)]
pub struct SharedBuffer<T> {
    x0: isize,
    y0: isize,
    w: usize,
    h: usize,
    halo: usize,
    plane: Option<usize>,
    data: Vec<T>,
    staged: Vec<bool>,
    stage_count: u64,
}

impl<T: Real> SharedBuffer<T> {
    /// Allocate a buffer for the given grid-coordinate window (no halo
    /// frame: every cell classifies as `interior`).
    pub fn new(x0: isize, y0: isize, w: usize, h: usize) -> Self {
        SharedBuffer {
            x0,
            y0,
            w,
            h,
            halo: 0,
            plane: None,
            data: vec![T::ZERO; w * h],
            staged: vec![false; w * h],
            stage_count: 0,
        }
    }

    /// Buffer for a tile `[x0, x0+w) × [y0, y0+h)` framed by a halo of
    /// width `r` on every side.
    pub fn for_tile(x0: usize, y0: usize, w: usize, h: usize, r: usize) -> Self {
        let mut buf = Self::new(
            x0 as isize - r as isize,
            y0 as isize - r as isize,
            w + 2 * r,
            h + 2 * r,
        );
        buf.halo = r;
        buf
    }

    #[inline]
    fn index(&self, x: isize, y: isize) -> usize {
        let lx = x - self.x0;
        let ly = y - self.y0;
        assert!(
            lx >= 0 && (lx as usize) < self.w && ly >= 0 && (ly as usize) < self.h,
            "shared-buffer access ({x},{y}) outside window [{},{})x[{},{})",
            self.x0,
            self.x0 + self.w as isize,
            self.y0,
            self.y0 + self.h as isize,
        );
        ly as usize * self.w + lx as usize
    }

    /// Stage a value at grid coordinates `(x, y)`.
    pub fn stage(&mut self, x: isize, y: isize, v: T) {
        let i = self.index(x, y);
        self.data[i] = v;
        self.staged[i] = true;
        self.stage_count += 1;
    }

    /// Which staging zone of the halo-framed window `(x, y)` falls in.
    fn zone(&self, x: isize, y: isize) -> &'static str {
        let r = self.halo as isize;
        let lx = x - self.x0;
        let ly = y - self.y0;
        let x_side = lx < r || lx >= self.w as isize - r;
        let y_side = ly < r || ly >= self.h as isize - r;
        match (x_side, y_side) {
            (false, false) => "interior",
            (true, true) => "corner halo",
            (true, false) if lx < r => "left halo",
            (true, false) => "right halo",
            (false, true) if ly < r => "top halo",
            (false, true) => "bottom halo",
        }
    }

    /// Read a staged value, or describe exactly what went wrong.
    ///
    /// # Panics
    /// Panics if `(x, y)` lies outside the buffer window (a structural
    /// bug in the caller, not a staging-order bug).
    pub fn try_read(&self, x: isize, y: isize) -> Result<T, StageError> {
        let i = self.index(x, y);
        if self.staged[i] {
            Ok(self.data[i])
        } else {
            Err(StageError {
                code: StageError::UNSTAGED_READ,
                x,
                y,
                plane: self.plane,
                zone: self.zone(x, y),
            })
        }
    }

    /// Read a staged value.
    ///
    /// # Panics
    /// Panics if the cell was never staged since the last
    /// [`SharedBuffer::clear`] — the emulated equivalent of reading
    /// garbage shared memory. The message names the grid coordinates,
    /// the staging zone and the z-plane being staged.
    pub fn read(&self, x: isize, y: isize) -> T {
        self.try_read(x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Record which z-plane the buffer is staging (carried into
    /// [`StageError`]s for diagnosis).
    pub fn set_plane(&mut self, k: usize) {
        self.plane = Some(k);
    }

    /// Whether a cell currently holds staged data.
    pub fn is_staged(&self, x: isize, y: isize) -> bool {
        self.staged[self.index(x, y)]
    }

    /// Invalidate all cells (the per-plane restage).
    pub fn clear(&mut self) {
        self.staged.fill(false);
    }

    /// Total stage operations performed over the buffer's lifetime.
    pub fn stage_count(&self) -> u64 {
        self.stage_count
    }

    /// Window extent `(w, h)`.
    pub fn extent(&self) -> (usize, usize) {
        (self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_then_read_roundtrips() {
        let mut b: SharedBuffer<f32> = SharedBuffer::new(10, 20, 4, 4);
        b.stage(11, 21, 3.5);
        assert_eq!(b.read(11, 21), 3.5);
        assert!(b.is_staged(11, 21));
        assert!(!b.is_staged(10, 20));
    }

    #[test]
    #[should_panic(expected = "un-staged")]
    fn unstaged_read_panics() {
        let b: SharedBuffer<f64> = SharedBuffer::new(0, 0, 2, 2);
        b.read(0, 0);
    }

    #[test]
    fn unstaged_read_message_carries_coordinates_zone_and_plane() {
        let mut b: SharedBuffer<f32> = SharedBuffer::for_tile(8, 8, 4, 4, 2);
        b.set_plane(17);
        let err = b.try_read(6, 6).unwrap_err();
        assert_eq!((err.x, err.y), (6, 6));
        assert_eq!(err.plane, Some(17));
        assert_eq!(err.zone, "corner halo");
        assert_eq!(err.code, StageError::UNSTAGED_READ);
        assert_eq!(
            err.to_string(),
            "read of un-staged shared-buffer cell (6,6) in the corner halo while staging plane 17"
        );
        let caught = std::panic::catch_unwind(|| b.read(6, 6)).unwrap_err();
        let msg = caught.downcast_ref::<String>().expect("panic message");
        assert_eq!(msg, &err.to_string());
    }

    #[test]
    fn zones_classify_the_halo_frame() {
        let b: SharedBuffer<f32> = SharedBuffer::for_tile(8, 8, 4, 4, 2);
        assert_eq!(b.try_read(9, 9).unwrap_err().zone, "interior");
        assert_eq!(b.try_read(9, 6).unwrap_err().zone, "top halo");
        assert_eq!(b.try_read(9, 13).unwrap_err().zone, "bottom halo");
        assert_eq!(b.try_read(6, 9).unwrap_err().zone, "left halo");
        assert_eq!(b.try_read(13, 9).unwrap_err().zone, "right halo");
        assert_eq!(b.try_read(13, 13).unwrap_err().zone, "corner halo");
        // A plain window has no halo: everything is interior.
        let plain: SharedBuffer<f32> = SharedBuffer::new(0, 0, 2, 2);
        let err = plain.try_read(0, 0).unwrap_err();
        assert_eq!(err.zone, "interior");
        assert_eq!(err.plane, None);
        assert!(err.to_string().contains("before any plane was staged"));
    }

    #[test]
    fn empty_plan_error_renders_its_own_message() {
        let err = StageError {
            code: StageError::EMPTY_PLAN,
            x: 0,
            y: 0,
            plane: None,
            zone: "interior",
        };
        assert_eq!(
            err.to_string(),
            "plan computes zero points (empty compute schedule)"
        );
    }

    #[test]
    fn try_read_roundtrips_staged_cells() {
        let mut b: SharedBuffer<f64> = SharedBuffer::for_tile(0, 0, 4, 4, 1);
        b.stage(2, 2, 9.0);
        assert_eq!(b.try_read(2, 2), Ok(9.0));
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn out_of_window_access_panics() {
        let b: SharedBuffer<f32> = SharedBuffer::new(0, 0, 2, 2);
        let _ = b.is_staged(2, 0);
    }

    #[test]
    fn clear_invalidates() {
        let mut b: SharedBuffer<f32> = SharedBuffer::new(0, 0, 2, 2);
        b.stage(1, 1, 1.0);
        b.clear();
        assert!(!b.is_staged(1, 1));
        assert_eq!(b.stage_count(), 1);
    }

    #[test]
    fn for_tile_frames_with_halo() {
        let b: SharedBuffer<f32> = SharedBuffer::for_tile(8, 8, 4, 4, 2);
        assert_eq!(b.extent(), (8, 8));
        // Halo corners are inside the window (stageable but never
        // required to be staged).
        assert!(!b.is_staged(6, 6));
        assert!(!b.is_staged(13, 13));
    }

    #[test]
    fn negative_window_coordinates_work() {
        let mut b: SharedBuffer<f64> = SharedBuffer::new(-3, -2, 4, 4);
        b.stage(-3, -2, 7.0);
        assert_eq!(b.read(-3, -2), 7.0);
    }
}
