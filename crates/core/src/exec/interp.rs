//! The single instrumented interpreter every execution path runs on.
//!
//! A lowered [`StagePlan`] is executed op by op against a table of
//! buffers: slot [`INPUT_BUF`] is the caller's input grid (never
//! written), slot [`OUTPUT_BUF`] starts as a copy of the caller's
//! output grid (so `Boundary::LeaveOutput` semantics survive the
//! round-trip), and [`PlanOp::Alloc`] appends zeroed working buffers
//! for plan transforms (temporal tiles, per-device shards).
//!
//! Block-level ops maintain exactly the state the emulated CUDA block
//! has — one [`SharedBuffer`] and two [`RegisterPipeline`]s — and
//! reproduce the executors' floating-point summation order term for
//! term, so interpreting a lowered plan is bit-identical to the
//! pre-IR executors (the `plan_differential` suite pins this).
//!
//! Two entry points:
//!
//! * [`interpret_plan`] — panics on a read of an un-staged
//!   shared-buffer cell (the hard verification mode every test runs);
//! * [`interpret_plan_checked`] — collects [`StageError`]s and
//!   substitutes zero, so a deliberately tampered plan can be replayed
//!   and its runtime failures cross-checked 1:1 against the static
//!   `LNT-S001` findings on the same IR.

use super::buffer::{SharedBuffer, StageError};
use super::ExecStats;
use crate::plan::{
    ComputeKind, PipelineFeed, PipelineKind, PlanOp, StagePlan, StageSource, OUTPUT_BUF,
};
use stencil_grid::{Grid3, Real, RegisterPipeline, StarStencil};

/// A slot in the interpreter's buffer table.
enum BufSlot<'a, T> {
    /// The caller's input grid (read-only).
    Input(&'a Grid3<T>),
    /// A grid the interpreter owns (the output copy and every Alloc).
    Owned(Grid3<T>),
}

impl<T: Real> BufSlot<'_, T> {
    fn grid(&self) -> &Grid3<T> {
        match self {
            BufSlot::Input(g) => g,
            BufSlot::Owned(g) => g,
        }
    }

    fn grid_mut(&mut self) -> &mut Grid3<T> {
        match self {
            BufSlot::Input(_) => panic!("plan writes the read-only input buffer"),
            BufSlot::Owned(g) => g,
        }
    }
}

/// Per-block machine state: the shared staging tile and the two
/// register pipelines of the emulated thread block.
struct Block<T> {
    input: usize,
    output: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    buf: SharedBuffer<T>,
    z: RegisterPipeline<T>,
    q: RegisterPipeline<T>,
    cur_plane: Option<usize>,
}

impl<T: Real> Block<T> {
    #[inline]
    fn lane(&self, x: usize, y: usize) -> usize {
        (y - self.y0) * self.w + (x - self.x0)
    }
}

/// Interpret `plan`, panicking on any read of an un-staged
/// shared-buffer cell (the verification mode: a schedule bug aborts
/// the run with the staging zone and plane in the panic message).
pub fn interpret_plan<T: Real>(
    plan: &StagePlan,
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> ExecStats {
    let (stats, errors) = run(plan, stencil, input, out, false);
    debug_assert!(errors.is_empty());
    stats
}

/// Interpret `plan`, collecting staging violations instead of
/// panicking: every read of an un-staged cell yields a [`StageError`]
/// (deduplicated per `(x, y, plane)`) and evaluates to zero. The
/// dynamic half of the lint cross-check.
pub fn interpret_plan_checked<T: Real>(
    plan: &StagePlan,
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> (ExecStats, Vec<StageError>) {
    run(plan, stencil, input, out, true)
}

fn run<T: Real>(
    plan: &StagePlan,
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    checked: bool,
) -> (ExecStats, Vec<StageError>) {
    assert_eq!(
        stencil.radius(),
        plan.radius,
        "stencil radius does not match the plan's"
    );
    assert_eq!(
        input.dims(),
        plan.dims,
        "input dims do not match the plan's"
    );
    assert_eq!(input.dims(), out.dims(), "grids must have matching dims");
    let r = plan.radius;

    let mut slots: Vec<BufSlot<'_, T>> = vec![BufSlot::Input(input), BufSlot::Owned(out.clone())];
    let mut stats = ExecStats::default();
    let mut errors: Vec<StageError> = Vec::new();
    let mut block: Option<Block<T>> = None;

    // A plan with no compute schedule would otherwise "succeed" while
    // producing nothing: in checked mode that is a coded error, not a
    // silent no-op (the unchecked mode keeps its fail-fast contract of
    // never reporting errors).
    if checked && plan.census().computes == 0 {
        errors.push(StageError {
            code: StageError::EMPTY_PLAN,
            x: 0,
            y: 0,
            plane: None,
            zone: "interior",
        });
    }

    // One shared-buffer read, in the block's checked or panicking mode.
    let read = |blk: &Block<T>, x: isize, y: isize, errs: &mut Vec<StageError>| -> T {
        if checked {
            match blk.buf.try_read(x, y) {
                Ok(v) => v,
                Err(e) => {
                    if !errs
                        .iter()
                        .any(|p| (p.x, p.y, p.plane) == (e.x, e.y, e.plane))
                    {
                        errs.push(e);
                    }
                    T::ZERO
                }
            }
        } else {
            blk.buf.read(x, y)
        }
    };

    for op in &plan.ops {
        match *op {
            PlanOp::Alloc { buf, dims } => {
                assert_eq!(buf, slots.len(), "plan allocates buffers out of order");
                slots.push(BufSlot::Owned(Grid3::new(dims.0, dims.1, dims.2)));
            }
            PlanOp::CopyBox {
                src,
                dst,
                src_org,
                dst_org,
                extent,
            } => {
                let (ex, ey, ez) = extent;
                let mut tmp = Vec::with_capacity(ex * ey * ez);
                {
                    let s = slots[src].grid();
                    for k in 0..ez {
                        for j in 0..ey {
                            for i in 0..ex {
                                tmp.push(s.get(src_org.0 + i, src_org.1 + j, src_org.2 + k));
                            }
                        }
                    }
                }
                let d = slots[dst].grid_mut();
                let mut it = tmp.into_iter();
                for k in 0..ez {
                    for j in 0..ey {
                        for i in 0..ex {
                            d.set(
                                dst_org.0 + i,
                                dst_org.1 + j,
                                dst_org.2 + k,
                                it.next().unwrap(),
                            );
                        }
                    }
                }
                if dst == OUTPUT_BUF {
                    stats.cells_copied_out += (ex * ey * ez) as u64;
                }
            }
            PlanOp::BeginBlock {
                device: _,
                input: in_buf,
                output: out_buf,
                x0,
                y0,
                w,
                h,
                z_depth,
                out_depth,
            } => {
                stats.blocks += 1;
                let mut z = RegisterPipeline::new(z_depth, w * h);
                let g = slots[in_buf].grid();
                for d in 0..z_depth {
                    let slot = z.slot_mut(d);
                    for y in y0..y0 + h {
                        for x in x0..x0 + w {
                            slot[(y - y0) * w + (x - x0)] = g.get(x, y, d);
                        }
                    }
                }
                block = Some(Block {
                    input: in_buf,
                    output: out_buf,
                    x0,
                    y0,
                    w,
                    h,
                    buf: SharedBuffer::for_tile(x0, y0, w, h, r),
                    z,
                    q: RegisterPipeline::new(out_depth, w * h),
                    cur_plane: None,
                });
            }
            PlanOp::StageRegion {
                zone,
                rect,
                plane,
                source,
            } => {
                let blk = block.as_mut().expect("StageRegion outside a block");
                if blk.cur_plane != Some(plane) {
                    blk.buf.clear();
                    blk.buf.set_plane(plane);
                    blk.cur_plane = Some(plane);
                    stats.planes_staged += 1;
                }
                let g = slots[blk.input].grid();
                let (nx, ny, _) = g.dims();
                for y in rect.y0..rect.y1 {
                    for x in rect.x0..rect.x1 {
                        // Clip to the grid: full-slice corners on edge
                        // tiles poke outside the allocation; the real
                        // kernel never uses those values.
                        if x < 0 || x as usize >= nx || y < 0 || y as usize >= ny {
                            continue;
                        }
                        let v = match source {
                            StageSource::Global => g.get(x as usize, y as usize, plane),
                            StageSource::PipelineCentre => {
                                blk.z.slot(r)[blk.lane(x as usize, y as usize)]
                            }
                        };
                        blk.buf.stage(x, y, v);
                        stats.cells_staged += 1;
                        stats.staged_cells_by_zone[zone.index()] += 1;
                    }
                }
            }
            PlanOp::Barrier => {
                stats.barriers += 1;
            }
            PlanOp::ComputePoint {
                plane: _,
                slot,
                kind,
            } => {
                let blk = block.as_mut().expect("ComputePoint outside a block");
                match kind {
                    ComputeKind::ForwardFull => {
                        stats.points_computed += (blk.w * blk.h) as u64;
                        for y in blk.y0..blk.y0 + blk.h {
                            for x in blk.x0..blk.x0 + blk.w {
                                let p = blk.lane(x, y);
                                let (xi, yi) = (x as isize, y as isize);
                                let mut acc = stencil.c0() * read(blk, xi, yi, &mut errors);
                                for m in 1..=r {
                                    let d = m as isize;
                                    let six = read(blk, xi - d, yi, &mut errors)
                                        + read(blk, xi + d, yi, &mut errors)
                                        + read(blk, xi, yi - d, &mut errors)
                                        + read(blk, xi, yi + d, &mut errors)
                                        + blk.z.slot(r - m)[p]
                                        + blk.z.slot(r + m)[p];
                                    acc += stencil.c(m) * six;
                                }
                                blk.q.slot_mut(slot)[p] = acc;
                            }
                        }
                    }
                    ComputeKind::InplanePartial => {
                        stats.points_computed += (blk.w * blk.h) as u64;
                        for y in blk.y0..blk.y0 + blk.h {
                            for x in blk.x0..blk.x0 + blk.w {
                                let p = blk.lane(x, y);
                                let (xi, yi) = (x as isize, y as isize);
                                let mut acc = stencil.c0() * read(blk, xi, yi, &mut errors);
                                for m in 1..=r {
                                    let d = m as isize;
                                    let five = read(blk, xi - d, yi, &mut errors)
                                        + read(blk, xi + d, yi, &mut errors)
                                        + read(blk, xi, yi - d, &mut errors)
                                        + read(blk, xi, yi + d, &mut errors)
                                        + blk.z.slot(r - m)[p];
                                    acc += stencil.c(m) * five;
                                }
                                blk.q.slot_mut(slot)[p] = acc;
                            }
                        }
                    }
                    ComputeKind::FoldCentre { depth } => {
                        let c = stencil.c(depth);
                        for y in blk.y0..blk.y0 + blk.h {
                            for x in blk.x0..blk.x0 + blk.w {
                                let p = blk.lane(x, y);
                                let centre = read(blk, x as isize, y as isize, &mut errors);
                                blk.q.slot_mut(slot)[p] += c * centre;
                            }
                        }
                    }
                }
            }
            PlanOp::RotatePipeline { pipeline, feed } => {
                let blk = block.as_mut().expect("RotatePipeline outside a block");
                stats.pipeline_rotations += 1;
                match pipeline {
                    PipelineKind::ZValues => {
                        let depth = blk.z.depth();
                        if depth == 0 {
                            continue;
                        }
                        blk.z.advance();
                        match feed {
                            PipelineFeed::None => {}
                            PipelineFeed::GlobalPlane(kp) => {
                                let g = slots[blk.input].grid();
                                for y in blk.y0..blk.y0 + blk.h {
                                    for x in blk.x0..blk.x0 + blk.w {
                                        let p = blk.lane(x, y);
                                        blk.z.slot_mut(depth - 1)[p] = g.get(x, y, kp);
                                    }
                                }
                            }
                            PipelineFeed::StagedCentre => {
                                for y in blk.y0..blk.y0 + blk.h {
                                    for x in blk.x0..blk.x0 + blk.w {
                                        let centre = read(blk, x as isize, y as isize, &mut errors);
                                        let p = blk.lane(x, y);
                                        blk.z.slot_mut(depth - 1)[p] = centre;
                                    }
                                }
                            }
                        }
                    }
                    PipelineKind::OutQueue => {
                        assert_eq!(feed, PipelineFeed::None, "out-queue rotation takes no feed");
                        blk.q.rotate_back();
                    }
                }
            }
            PlanOp::WriteBack { plane, slot } => {
                let blk = block.as_ref().expect("WriteBack outside a block");
                let (x0, y0, w, h) = (blk.x0, blk.y0, blk.w, blk.h);
                // Copy the lane vector first: the output buffer may be
                // the block's input in a degenerate plan, and the
                // borrow rules want one side at a time anyway.
                let vals: Vec<T> = blk.q.slot(slot).to_vec();
                let g = slots[blk.output].grid_mut();
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        g.set(x, y, plane, vals[(y - y0) * w + (x - x0)]);
                        stats.global_writes += 1;
                    }
                }
            }
            PlanOp::ApplyBoundary {
                input: in_buf,
                output: out_buf,
                boundary,
            } => {
                let src = slots[in_buf].grid().clone();
                boundary.apply(&src, slots[out_buf].grid_mut(), r);
            }
            PlanOp::SwapBufs { a, b } => {
                assert!(
                    matches!(slots[a], BufSlot::Owned(_)) && matches!(slots[b], BufSlot::Owned(_)),
                    "SwapBufs needs two owned working buffers"
                );
                slots.swap(a, b);
            }
            PlanOp::HaloExchange {
                device: _,
                src,
                dst,
                src_plane,
                dst_plane,
            } => {
                let s = slots[src].grid();
                let (nx, ny, _) = s.dims();
                let mut tmp = Vec::with_capacity(nx * ny);
                for y in 0..ny {
                    for x in 0..nx {
                        tmp.push(s.get(x, y, src_plane));
                    }
                }
                let d = slots[dst].grid_mut();
                for y in 0..ny {
                    for x in 0..nx {
                        d.set(x, y, dst_plane, tmp[y * nx + x]);
                    }
                }
                stats.halo_planes_exchanged += 1;
                stats.halo_cells_exchanged += (nx * ny) as u64;
            }
        }
    }

    // Hand the final output buffer back to the caller.
    match &slots[OUTPUT_BUF] {
        BufSlot::Owned(g) => out.clone_from(g),
        BufSlot::Input(_) => unreachable!("output slot is always owned"),
    }
    (stats, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LaunchConfig;
    use crate::method::Method;
    use crate::plan::lower_step;
    use stencil_grid::FillPattern;

    /// Regression for the empty-plan edge: a checked run over a plan
    /// whose census reports zero compute points must return a coded
    /// [`StageError`], not silently succeed.
    #[test]
    fn checked_interpreter_rejects_empty_plans() {
        let s: StarStencil<f32> = StarStencil::from_order(2);
        let input: Grid3<f32> = FillPattern::HashNoise.build(8, 8, 8);
        let mut out = Grid3::new(8, 8, 8);

        let empty = StagePlan {
            method: Method::ForwardPlane,
            radius: 1,
            dims: (8, 8, 8),
            ops: Vec::new(),
        };
        assert_eq!(empty.census().computes, 0);
        let (stats, errors) = interpret_plan_checked(&empty, &s, &input, &mut out);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].code, StageError::EMPTY_PLAN);
        assert!(errors[0].to_string().contains("zero points"));
        assert_eq!(stats.points_computed, 0);

        // A real lowered plan stays error-free in checked mode.
        let plan = lower_step(
            Method::ForwardPlane,
            &LaunchConfig::new(4, 4, 1, 1),
            1,
            (8, 8, 8),
        );
        let (_, errors) = interpret_plan_checked(&plan, &s, &input, &mut out);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
