//! Functional emulation of the in-plane method — the 6-step procedure of
//! §III-C:
//!
//! 1. at `z = k`, load the plane `in[·,·,k]` into the shared buffer
//!    (the variant controls which halo cells get staged — full-slice
//!    also stages the corners, the others do not);
//! 2. compute the partial stencil output of Eqn (3) from the buffer and
//!    the trailing z-values held in registers;
//! 3. update the `r` previous outputs queued in registers with the
//!    current plane's centre value (Eqn (5));
//! 4. shift out and write `out[·,·,k−r]` to global memory;
//! 5. shift the current partial into the queue;
//! 6. repeat until the z-axis is traversed.
//!
//! The floating-point order matches
//! [`stencil_grid::apply_reference_inplane_order`] exactly, so SP results
//! are bit-identical to that reference (and agree with the forward
//! reference to rounding).

use super::buffer::SharedBuffer;
use super::{tiles, ExecStats};
use crate::config::LaunchConfig;
use crate::method::Variant;
use stencil_grid::{Grid3, Real, StarStencil};

/// Run one Jacobi step with the in-plane method (any loading variant).
/// Interior only; the caller applies the boundary policy.
pub fn execute_inplane<T: Real>(
    variant: Variant,
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> ExecStats {
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    let mut stats = ExecStats::default();

    for (x0, y0, w, h) in tiles(nx, ny, r, config) {
        stats.blocks += 1;
        let idx = |x: usize, y: usize| (y - y0) * w + (x - x0);

        // Trailing z-values per thread-point: zhist[p][d] = in(p, k-r+d),
        // d = 0..r-1 (the r planes behind the staged one).
        let mut zhist: Vec<Vec<T>> = vec![vec![T::ZERO; r]; w * h];
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                for (d, slot) in zhist[idx(x, y)].iter_mut().enumerate() {
                    *slot = input.get(x, y, d); // planes 0..r-1 for k = r
                }
            }
        }
        // Output pipeline: queue[s][p] = partial for plane (k - 1 - s)
        // at the top of the loop body; depth r + 1 with rotation, exactly
        // like the in-plane CPU reference.
        let mut queue: Vec<Vec<T>> = vec![vec![T::ZERO; w * h]; r + 1];

        let mut buf: SharedBuffer<T> = SharedBuffer::for_tile(x0, y0, w, h, r);

        for k in r..nz {
            stats.planes_staged += 1;
            buf.clear();
            buf.set_plane(k);
            stats.cells_staged += stage_plane(variant, &mut buf, input, x0, y0, w, h, r, k);

            // Step 2: new partials (Eqn 3) for plane k, if it is an
            // output plane.
            if k < nz - r {
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        let p = idx(x, y);
                        let (xi, yi) = (x as isize, y as isize);
                        let mut acc = stencil.c0() * buf.read(xi, yi);
                        for m in 1..=r {
                            let d = m as isize;
                            let five = buf.read(xi - d, yi)
                                + buf.read(xi + d, yi)
                                + buf.read(xi, yi - d)
                                + buf.read(xi, yi + d)
                                + zhist[p][r - m];
                            acc += stencil.c(m) * five;
                        }
                        queue[0][p] = acc;
                    }
                }
            }
            // Step 3 (Eqn 5): fold c_d · in[·,·,k] into the partial for
            // plane k − d.
            #[allow(clippy::needless_range_loop)]
            // d is the Eqn-(5) pipeline depth, not just an index
            for d in 1..=r {
                let in_range = matches!(k.checked_sub(d), Some(kd) if kd >= r && kd < nz - r);
                if !in_range {
                    continue;
                }
                let c = stencil.c(d);
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        let p = idx(x, y);
                        let centre = buf.read(x as isize, y as isize);
                        queue[d][p] += c * centre;
                    }
                }
            }
            // Step 4: plane k − r is complete; write it out.
            if let Some(done_k) = k.checked_sub(r) {
                if done_k >= r && done_k < nz - r {
                    for y in y0..y0 + h {
                        for x in x0..x0 + w {
                            out.set(x, y, done_k, queue[r][idx(x, y)]);
                            stats.global_writes += 1;
                        }
                    }
                }
            }
            // Step 5: rotate the pipeline and advance the z-history.
            queue.rotate_right(1);
            for y in y0..y0 + h {
                for x in x0..x0 + w {
                    let p = idx(x, y);
                    if r > 0 {
                        zhist[p].rotate_left(1);
                        let centre = buf.read(x as isize, y as isize);
                        zhist[p][r - 1] = centre;
                    }
                }
            }
        }
    }
    stats
}

/// Stage plane `k` into the buffer per the variant's loading pattern.
/// Returns the number of cells staged. All variants stage the interior
/// and the four halo arms; full-slice additionally stages the `4r²`
/// corner cells it redundantly loads (Fig 6d).
#[allow(clippy::too_many_arguments)]
fn stage_plane<T: Real>(
    variant: Variant,
    buf: &mut SharedBuffer<T>,
    input: &Grid3<T>,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    r: usize,
    k: usize,
) -> u64 {
    let (nx, ny, _) = input.dims();
    let mut staged = 0u64;
    let mut stage = |buf: &mut SharedBuffer<T>, x: isize, y: isize| {
        // Clip to the allocation: edge tiles have their halo arms
        // entirely inside the grid by construction (tiles cover the
        // interior), but full-slice corners can poke outside on edge
        // tiles; the real kernel reads the padded allocation there and
        // never uses the values, so skipping the stage is equivalent.
        if x >= 0 && (x as usize) < nx && y >= 0 && (y as usize) < ny {
            buf.stage(x, y, input.get(x as usize, y as usize, k));
            staged += 1;
        }
    };

    let (ix0, ix1) = (x0 as isize, (x0 + w) as isize);
    let (iy0, iy1) = (y0 as isize, (y0 + h) as isize);
    let ri = r as isize;

    match variant {
        Variant::Classical | Variant::Vertical | Variant::Horizontal => {
            // Interior + four arms (order differs between these variants
            // on the real device; the staged contents are identical).
            for y in iy0 - ri..iy1 + ri {
                for x in ix0..ix1 {
                    stage(buf, x, y);
                }
            }
            for y in iy0..iy1 {
                for x in ix0 - ri..ix0 {
                    stage(buf, x, y);
                }
                for x in ix1..ix1 + ri {
                    stage(buf, x, y);
                }
            }
        }
        Variant::FullSlice => {
            // The whole halo-framed slab, corners included.
            for y in iy0 - ri..iy1 + ri {
                for x in ix0 - ri..ix1 + ri {
                    stage(buf, x, y);
                }
            }
        }
    }
    staged
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern};

    #[test]
    fn full_slice_matches_inplane_reference_exactly() {
        let s: StarStencil<f32> = StarStencil::from_order(6);
        let input: Grid3<f32> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 5,
        }
        .build(14, 14, 14);
        let mut golden = Grid3::new(14, 14, 14);
        apply_reference_inplane_order(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(14, 14, 14);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(4, 4, 1, 1),
            &input,
            &mut got,
        );
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn variants_stage_different_cell_counts() {
        let s: StarStencil<f64> = StarStencil::from_order(4);
        let input: Grid3<f64> = FillPattern::HashNoise.build(16, 16, 8);
        let run = |variant| {
            let mut out = Grid3::new(16, 16, 8);
            execute_inplane(
                variant,
                &s,
                &LaunchConfig::new(12, 12, 1, 1),
                &input,
                &mut out,
            )
        };
        let fs = run(Variant::FullSlice);
        let hz = run(Variant::Horizontal);
        let vt = run(Variant::Vertical);
        // Full-slice stages 4r² more cells per interior plane than the
        // corner-free variants.
        assert!(fs.cells_staged > hz.cells_staged);
        assert_eq!(hz.cells_staged, vt.cells_staged);
        // All variants compute the same values.
        let mut a = Grid3::new(16, 16, 8);
        let mut b = Grid3::new(16, 16, 8);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(12, 12, 1, 1),
            &input,
            &mut a,
        );
        execute_inplane(
            Variant::Vertical,
            &s,
            &LaunchConfig::new(12, 12, 1, 1),
            &input,
            &mut b,
        );
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn corner_cells_never_read_by_corner_free_variants() {
        // If a corner-free variant ever needed a corner, SharedBuffer
        // would panic on the un-staged read; a clean pass is the proof.
        let s: StarStencil<f64> = StarStencil::from_order(8);
        let input: Grid3<f64> = FillPattern::HashNoise.build(14, 14, 12);
        let mut out = Grid3::new(14, 14, 12);
        execute_inplane(
            Variant::Horizontal,
            &s,
            &LaunchConfig::new(2, 2, 1, 1),
            &input,
            &mut out,
        );
    }

    #[test]
    fn minimal_grid_one_output_plane() {
        // nz = 2r + 1: exactly one output plane, pipeline fills and
        // drains in the same sweep.
        let s: StarStencil<f64> = StarStencil::from_order(4);
        let input: Grid3<f64> = FillPattern::HashNoise.build(7, 7, 5);
        let mut golden = Grid3::new(7, 7, 5);
        apply_reference_inplane_order(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(7, 7, 5);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(8, 8, 1, 1),
            &input,
            &mut got,
        );
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }
}
