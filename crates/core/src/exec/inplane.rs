//! Functional emulation of the in-plane method — the 6-step procedure of
//! §III-C:
//!
//! 1. at `z = k`, load the plane `in[·,·,k]` into the shared buffer
//!    (the variant controls which halo cells get staged — full-slice
//!    also stages the corners, the others do not);
//! 2. compute the partial stencil output of Eqn (3) from the buffer and
//!    the trailing z-values held in registers;
//! 3. update the `r` previous outputs queued in registers with the
//!    current plane's centre value (Eqn (5));
//! 4. shift out and write `out[·,·,k−r]` to global memory;
//! 5. shift the current partial into the queue;
//! 6. repeat until the z-axis is traversed.
//!
//! Since the StagePlan refactor this is a thin shim: the schedule above
//! is produced by [`crate::plan::lower_inplane`] and run by the single
//! plan interpreter, whose floating-point order matches
//! [`stencil_grid::apply_reference_inplane_order`] exactly, so SP
//! results are bit-identical to that reference (and agree with the
//! forward reference to rounding).

use super::interp::interpret_plan;
use super::ExecStats;
use crate::config::LaunchConfig;
use crate::method::Variant;
use crate::plan::lower_inplane;
use stencil_grid::{Grid3, Real, StarStencil};

/// Run one Jacobi step with the in-plane method (any loading variant).
/// Interior only; the caller applies the boundary policy.
pub fn execute_inplane<T: Real>(
    variant: Variant,
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
) -> ExecStats {
    let plan = lower_inplane(variant, config, stencil.radius(), input.dims());
    interpret_plan(&plan, stencil, input, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Zone;
    use stencil_grid::{apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern};

    #[test]
    fn full_slice_matches_inplane_reference_exactly() {
        let s: StarStencil<f32> = StarStencil::from_order(6);
        let input: Grid3<f32> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 5,
        }
        .build(14, 14, 14);
        let mut golden = Grid3::new(14, 14, 14);
        apply_reference_inplane_order(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(14, 14, 14);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(4, 4, 1, 1),
            &input,
            &mut got,
        );
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }

    #[test]
    fn variants_stage_different_cell_counts() {
        let s: StarStencil<f64> = StarStencil::from_order(4);
        let input: Grid3<f64> = FillPattern::HashNoise.build(16, 16, 8);
        let run = |variant| {
            let mut out = Grid3::new(16, 16, 8);
            execute_inplane(
                variant,
                &s,
                &LaunchConfig::new(12, 12, 1, 1),
                &input,
                &mut out,
            )
        };
        let fs = run(Variant::FullSlice);
        let hz = run(Variant::Horizontal);
        let vt = run(Variant::Vertical);
        // Full-slice stages 4r² more cells per interior plane than the
        // corner-free variants.
        assert!(fs.cells_staged > hz.cells_staged);
        assert_eq!(hz.cells_staged, vt.cells_staged);
        // The difference is exactly the corner-zone traffic.
        assert_eq!(
            fs.cells_staged - hz.cells_staged,
            fs.staged_cells_by_zone[Zone::Corner.index()]
        );
        assert_eq!(hz.staged_cells_by_zone[Zone::Corner.index()], 0);
        // All variants compute the same values.
        let mut a = Grid3::new(16, 16, 8);
        let mut b = Grid3::new(16, 16, 8);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(12, 12, 1, 1),
            &input,
            &mut a,
        );
        execute_inplane(
            Variant::Vertical,
            &s,
            &LaunchConfig::new(12, 12, 1, 1),
            &input,
            &mut b,
        );
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn corner_cells_never_read_by_corner_free_variants() {
        // If a corner-free variant ever needed a corner, SharedBuffer
        // would panic on the un-staged read; a clean pass is the proof.
        let s: StarStencil<f64> = StarStencil::from_order(8);
        let input: Grid3<f64> = FillPattern::HashNoise.build(14, 14, 12);
        let mut out = Grid3::new(14, 14, 12);
        execute_inplane(
            Variant::Horizontal,
            &s,
            &LaunchConfig::new(2, 2, 1, 1),
            &input,
            &mut out,
        );
    }

    #[test]
    fn minimal_grid_one_output_plane() {
        // nz = 2r + 1: exactly one output plane, pipeline fills and
        // drains in the same sweep.
        let s: StarStencil<f64> = StarStencil::from_order(4);
        let input: Grid3<f64> = FillPattern::HashNoise.build(7, 7, 5);
        let mut golden = Grid3::new(7, 7, 5);
        apply_reference_inplane_order(&s, &input, &mut golden, Boundary::LeaveOutput);
        let mut got = Grid3::new(7, 7, 5);
        execute_inplane(
            Variant::FullSlice,
            &s,
            &LaunchConfig::new(8, 8, 1, 1),
            &input,
            &mut got,
        );
        assert_eq!(max_abs_diff(&got, &golden), 0.0);
    }
}
