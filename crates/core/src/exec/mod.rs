//! Functional (numerical) emulation of the GPU kernels.
//!
//! The paper verifies every CUDA kernel "to be consistent with the result
//! from the CPU-computed stencil output"; this module is the other side
//! of that check. Each method is emulated at block level with the same
//! structure the CUDA kernels have:
//!
//! * an explicit [`SharedBuffer`] standing in for the shared-memory
//!   staging tile — every xy-neighbour read *must* come from it (reading
//!   an un-staged cell panics, catching any kernel that silently reads
//!   global memory where the real kernel could not);
//! * per-thread register pipelines: the forward-plane method's `2r + 1`
//!   z-values, and the in-plane method's `r` queued partial outputs plus
//!   `r` trailing z-values (the 6-step procedure of §III-C);
//! * the identical floating-point summation order as the matching CPU
//!   reference, so verification is bit-exact per precision.

mod buffer;
mod forward;
mod inplane;
mod interp;

pub use buffer::{SharedBuffer, StageError};
pub use forward::execute_forward_plane;
pub use inplane::execute_inplane;
pub use interp::{interpret_plan, interpret_plan_checked};

use crate::config::LaunchConfig;
use crate::method::Method;
use stencil_grid::{Boundary, Grid3, Real, StarStencil};

/// Counters from a functional execution, filled in by the plan
/// interpreter as it runs the lowered [`crate::plan::StagePlan`]. The
/// structural counters double as sanity checks; the traffic counters
/// feed the temporal/multi-GPU cost accounting and surface in the
/// auto-tuner's `TuneReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Thread blocks emulated.
    pub blocks: usize,
    /// Planes staged into the shared buffer across all blocks.
    pub planes_staged: usize,
    /// Cells staged into shared buffers (global→shared loads).
    pub cells_staged: u64,
    /// Values written back to the output grid.
    pub global_writes: u64,
    /// `__syncthreads()` barriers executed across all blocks.
    pub barriers: u64,
    /// Register-pipeline rotations (z-pipeline shifts and out-queue
    /// rotations) across all blocks.
    pub pipeline_rotations: u64,
    /// Staged cells split by staging zone, indexed by
    /// [`crate::plan::Zone::index`]: interior, top, bottom, left,
    /// right, corner.
    pub staged_cells_by_zone: [u64; 6],
    /// Full stencil-point evaluations (forward evaluations plus
    /// in-plane Eqn-(3) partials; Eqn-(5) folds are not separate
    /// points).
    pub points_computed: u64,
    /// Whole xy-planes moved between device shards.
    pub halo_planes_exchanged: u64,
    /// Cells moved between device shards.
    pub halo_cells_exchanged: u64,
    /// Cells gathered from working buffers into the caller's output
    /// (non-zero only for transformed plans: temporal tiles, shards).
    pub cells_copied_out: u64,
}

impl ExecStats {
    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.blocks += other.blocks;
        self.planes_staged += other.planes_staged;
        self.cells_staged += other.cells_staged;
        self.global_writes += other.global_writes;
        self.barriers += other.barriers;
        self.pipeline_rotations += other.pipeline_rotations;
        for (z, o) in self
            .staged_cells_by_zone
            .iter_mut()
            .zip(other.staged_cells_by_zone)
        {
            *z += o;
        }
        self.points_computed += other.points_computed;
        self.halo_planes_exchanged += other.halo_planes_exchanged;
        self.halo_cells_exchanged += other.halo_cells_exchanged;
        self.cells_copied_out += other.cells_copied_out;
    }

    /// Output cells that actually reached the caller's grid: the
    /// gathered cells for transformed plans, otherwise the direct
    /// global writes.
    pub fn useful_writes(&self) -> u64 {
        if self.cells_copied_out > 0 {
            self.cells_copied_out
        } else {
            self.global_writes
        }
    }

    /// Stencil evaluations per useful output cell — 1.0 for a plain
    /// step, above 1.0 when a transform recomputes halo points.
    /// Defined (1.0) for runs that produced no output at all, so
    /// degenerate configurations never divide by zero.
    pub fn redundancy(&self) -> f64 {
        let useful = self.useful_writes();
        if useful == 0 || self.points_computed == 0 {
            return 1.0;
        }
        self.points_computed as f64 / useful as f64
    }
}

/// Execute one Jacobi step of `stencil` over `input` with the given
/// method and launch configuration, emulating the GPU block
/// decomposition. Boundary ring (width `r`) follows `boundary`.
///
/// ```
/// use inplane_core::{execute_step, LaunchConfig, Method, Variant};
/// use stencil_grid::{apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern, Grid3, StarStencil};
///
/// let stencil = StarStencil::<f32>::from_order(2);
/// let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 12);
/// let mut emulated = Grid3::new(12, 12, 12);
/// execute_step(
///     Method::InPlane(Variant::FullSlice),
///     &stencil,
///     &LaunchConfig::new(4, 4, 1, 1),
///     &input,
///     &mut emulated,
///     Boundary::CopyInput,
/// );
/// // Bit-exact against the CPU golden model — the paper's verification.
/// let mut golden = Grid3::new(12, 12, 12);
/// apply_reference_inplane_order(&stencil, &input, &mut golden, Boundary::CopyInput);
/// assert_eq!(max_abs_diff(&emulated, &golden), 0.0);
/// ```
pub fn execute_step<T: Real>(
    method: Method,
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    boundary: Boundary,
) -> ExecStats {
    assert_eq!(input.dims(), out.dims(), "grids must have matching dims");
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid {nx}x{ny}x{nz} too small for radius {r}"
    );
    // Routine-agnostic: lower through the registry, run the single
    // interpreter (the per-method executors are shims over the same
    // path).
    let plan = crate::plan::lower_step(method, config, r, input.dims());
    let stats = interpret_plan(&plan, stencil, input, out);
    boundary.apply(input, out, r);
    stats
}

/// Iterate over the tile rectangles covering the interior
/// `[r, nx-r) × [r, ny-r)`, clipped at the far edges.
pub(crate) fn tiles(
    nx: usize,
    ny: usize,
    r: usize,
    config: &LaunchConfig,
) -> Vec<(usize, usize, usize, usize)> {
    let (wx, wy) = (config.tile_x(), config.tile_y());
    let (ix_end, iy_end) = (nx - r, ny - r);
    let mut out = Vec::new();
    let mut y0 = r;
    while y0 < iy_end {
        let h = wy.min(iy_end - y0);
        let mut x0 = r;
        while x0 < ix_end {
            let w = wx.min(ix_end - x0);
            out.push((x0, y0, w, h));
            x0 += wx;
        }
        y0 += wy;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Variant;
    use stencil_grid::{apply_reference, apply_reference_inplane_order, max_abs_diff, FillPattern};

    fn random_grid<T: Real>(n: usize, seed: u64) -> Grid3<T> {
        FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed,
        }
        .build(n, n, n)
    }

    #[test]
    fn tiles_cover_interior_exactly_once() {
        for (nx, ny, r, cfg) in [
            (20usize, 20usize, 2usize, LaunchConfig::new(4, 4, 1, 1)),
            (19, 23, 1, LaunchConfig::new(8, 2, 1, 3)),
            (9, 9, 3, LaunchConfig::new(16, 16, 1, 1)),
        ] {
            let mut seen = vec![false; nx * ny];
            for (x0, y0, w, h) in tiles(nx, ny, r, &cfg) {
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        assert!(!seen[y * nx + x], "({x},{y}) covered twice");
                        seen[y * nx + x] = true;
                    }
                }
            }
            for y in 0..ny {
                for x in 0..nx {
                    let interior = x >= r && x < nx - r && y >= r && y < ny - r;
                    assert_eq!(seen[y * nx + x], interior, "({x},{y})");
                }
            }
        }
    }

    #[test]
    fn forward_plane_is_bit_exact_vs_reference_f32() {
        for order in [2usize, 4, 6] {
            let s: StarStencil<f32> = StarStencil::from_order(order);
            let n = 3 * order + 5;
            let input = random_grid::<f32>(n, order as u64);
            let mut golden = Grid3::new(n, n, n);
            apply_reference(&s, &input, &mut golden, Boundary::CopyInput);
            let mut got = Grid3::new(n, n, n);
            execute_step(
                Method::ForwardPlane,
                &s,
                &LaunchConfig::new(8, 4, 1, 1),
                &input,
                &mut got,
                Boundary::CopyInput,
            );
            assert_eq!(
                max_abs_diff(&got, &golden),
                0.0,
                "order {order}: forward-plane must be bit-exact"
            );
        }
    }

    #[test]
    fn all_inplane_variants_are_bit_exact_vs_inplane_reference_f32() {
        for variant in Variant::all() {
            for order in [2usize, 4] {
                let s: StarStencil<f32> = StarStencil::from_order(order);
                let n = 3 * order + 7;
                let input = random_grid::<f32>(n, 7 + order as u64);
                let mut golden = Grid3::new(n, n, n);
                apply_reference_inplane_order(&s, &input, &mut golden, Boundary::CopyInput);
                let mut got = Grid3::new(n, n, n);
                execute_step(
                    Method::InPlane(variant),
                    &s,
                    &LaunchConfig::new(4, 4, 2, 1),
                    &input,
                    &mut got,
                    Boundary::CopyInput,
                );
                assert_eq!(
                    max_abs_diff(&got, &golden),
                    0.0,
                    "{variant}: order {order} must be bit-exact vs in-plane reference"
                );
            }
        }
    }

    #[test]
    fn inplane_matches_forward_within_tolerance_f64() {
        let s: StarStencil<f64> = StarStencil::from_order(8);
        let n = 17;
        let input = random_grid::<f64>(n, 99);
        let mut fwd = Grid3::new(n, n, n);
        let mut inp = Grid3::new(n, n, n);
        execute_step(
            Method::ForwardPlane,
            &s,
            &LaunchConfig::new(8, 8, 1, 1),
            &input,
            &mut fwd,
            Boundary::CopyInput,
        );
        execute_step(
            Method::InPlane(Variant::FullSlice),
            &s,
            &LaunchConfig::new(8, 8, 1, 1),
            &input,
            &mut inp,
            Boundary::CopyInput,
        );
        assert!(max_abs_diff(&fwd, &inp) < 1e-13);
    }

    #[test]
    fn odd_sizes_and_clipped_tiles_still_verify() {
        let s: StarStencil<f64> = StarStencil::from_order(4);
        let input = random_grid::<f64>(13, 5);
        let mut golden = Grid3::new(13, 13, 13);
        apply_reference(&s, &input, &mut golden, Boundary::CopyInput);
        // Tile 8×6 does not divide the 9-wide interior: clipping exercised.
        let mut got = Grid3::new(13, 13, 13);
        execute_step(
            Method::ForwardPlane,
            &s,
            &LaunchConfig::new(8, 2, 1, 3),
            &input,
            &mut got,
            Boundary::CopyInput,
        );
        assert!(max_abs_diff(&got, &golden) < 1e-13);
    }

    #[test]
    fn stats_count_blocks_and_writes() {
        let s: StarStencil<f32> = StarStencil::from_order(2);
        let input = random_grid::<f32>(10, 3);
        let mut out = Grid3::new(10, 10, 10);
        let stats = execute_step(
            Method::InPlane(Variant::FullSlice),
            &s,
            &LaunchConfig::new(4, 4, 1, 1),
            &input,
            &mut out,
            Boundary::CopyInput,
        );
        assert_eq!(stats.blocks, 4); // 8×8 interior, 4×4 tiles
        assert_eq!(stats.global_writes, 8 * 8 * 8); // interior points
        assert!(stats.cells_staged > 0);
    }
}
