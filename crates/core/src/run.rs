//! The high-level one-stop API: configure a stencil run, get both faces
//! (functional result + simulated GPU performance) from one call.
//!
//! ```
//! use inplane_core::{StencilRun, Variant};
//! use stencil_grid::{FillPattern, StarStencil};
//! use gpu_sim::DeviceSpec;
//!
//! let outcome = StencilRun::new(StarStencil::<f32>::from_order(4))
//!     .method(inplane_core::Method::InPlane(Variant::FullSlice))
//!     .device(DeviceSpec::gtx580())
//!     .grid(48, 48, 24)
//!     .fill(FillPattern::GaussianPulse { amplitude: 1.0, sigma: 0.1 })
//!     .steps(3)
//!     .run();
//! assert!(outcome.verification.passed());
//! assert!(outcome.projected.mpoints_per_s() > 0.0);
//! ```

use crate::config::LaunchConfig;
use crate::exec::execute_step;
use crate::kernel::KernelSpec;
use crate::method::{Method, Variant};
use crate::simulate::simulate_kernel;
use gpu_sim::plan::GridDims;
use gpu_sim::{DeviceSpec, SimOptions, SimReport};
use stencil_grid::{
    apply_reference, apply_reference_inplane_order, default_tolerance, iterate_stencil_loop,
    verify_close, Boundary, FillPattern, Grid3, Real, StarStencil, VerifyReport,
};

/// Builder for a complete stencil run.
#[derive(Clone, Debug)]
pub struct StencilRun<T: Real> {
    stencil: StarStencil<T>,
    method: Method,
    device: DeviceSpec,
    config: Option<LaunchConfig>,
    dims: (usize, usize, usize),
    fill: FillPattern,
    steps: usize,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct RunOutcome<T: Real> {
    /// The final grid after `steps` emulated Jacobi iterations.
    pub result: Grid3<T>,
    /// Verification of the emulated result against the CPU reference.
    pub verification: VerifyReport,
    /// Simulated GPU performance of one sweep at the chosen (or default)
    /// launch configuration on the chosen device.
    pub projected: SimReport,
    /// The launch configuration that was used.
    pub config: LaunchConfig,
}

impl<T: Real> StencilRun<T> {
    /// Start a run description for `stencil` with sensible defaults:
    /// in-plane full-slice on the GTX580, a 32³ grid of hash noise,
    /// one step, launch config `(32, 4, 1, 2)`.
    pub fn new(stencil: StarStencil<T>) -> Self {
        StencilRun {
            stencil,
            method: Method::InPlane(Variant::FullSlice),
            device: DeviceSpec::gtx580(),
            config: None,
            dims: (32, 32, 32),
            fill: FillPattern::HashNoise,
            steps: 1,
        }
    }

    /// Choose the computation method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Choose the simulated device.
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Pin the launch configuration (otherwise a default is used).
    pub fn config(mut self, config: LaunchConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Set the grid dimensions.
    pub fn grid(mut self, nx: usize, ny: usize, nz: usize) -> Self {
        self.dims = (nx, ny, nz);
        self
    }

    /// Set the initial-condition fill pattern.
    pub fn fill(mut self, fill: FillPattern) -> Self {
        self.fill = fill;
        self
    }

    /// Number of Jacobi steps to run.
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self
    }

    /// Execute: emulate the kernel for `steps` iterations, verify against
    /// the matching CPU reference, and price one sweep on the device.
    pub fn run(self) -> RunOutcome<T> {
        let (nx, ny, nz) = self.dims;
        let config = self
            .config
            .unwrap_or_else(|| LaunchConfig::new(32, 4, 1, 2));
        let initial: Grid3<T> = {
            let mut g = Grid3::new(nx, ny, nz);
            self.fill.fill(&mut g);
            g
        };
        let r = self.stencil.radius();

        let (result, _) = iterate_stencil_loop(initial.clone(), r, self.steps, |inp, out| {
            execute_step(
                self.method,
                &self.stencil,
                &config,
                inp,
                out,
                Boundary::CopyInput,
            );
        });

        let inplane_order = self.method.routine().inplane_reference_order();
        let (golden, _) = iterate_stencil_loop(initial, r, self.steps, |inp, out| {
            if inplane_order {
                apply_reference_inplane_order(&self.stencil, inp, out, Boundary::CopyInput)
            } else {
                apply_reference(&self.stencil, inp, out, Boundary::CopyInput)
            }
        });
        let verification = verify_close(
            &result,
            &golden,
            default_tolerance(T::PRECISION, self.steps),
        );

        let spec = KernelSpec::star(self.method, &self.stencil);
        let projected = simulate_kernel(
            &self.device,
            &spec,
            &config,
            GridDims::new(nx, ny, nz),
            &SimOptions::default(),
        );

        RunOutcome {
            result,
            verification,
            projected,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_run_and_verify() {
        let out = StencilRun::new(StarStencil::<f64>::from_order(2)).run();
        assert!(out.verification.passed());
        assert!(out.projected.feasible());
        assert_eq!(out.config, LaunchConfig::new(32, 4, 1, 2));
    }

    #[test]
    fn builder_options_are_honoured() {
        let out = StencilRun::new(StarStencil::<f32>::from_order(4))
            .method(Method::ForwardPlane)
            .device(DeviceSpec::gtx680())
            .config(LaunchConfig::new(16, 8, 1, 1))
            .grid(24, 24, 20)
            .fill(FillPattern::Constant(2.0))
            .steps(3)
            .run();
        assert!(out.verification.passed());
        assert_eq!(out.result.dims(), (24, 24, 20));
        // A constant field is a fixed point of the diffusion stencil.
        assert!((out.result.get(10, 10, 10) - 2.0).abs() < 1e-6);
        assert_eq!(out.config, LaunchConfig::new(16, 8, 1, 1));
    }

    #[test]
    fn zero_steps_clamps_to_one() {
        let out = StencilRun::new(StarStencil::<f32>::from_order(2))
            .steps(0)
            .run();
        assert!(out.verification.passed());
    }

    #[test]
    fn infeasible_config_is_reported_not_hidden() {
        // Way over the register budget on the device: the functional run
        // still verifies, the projection reports infeasibility.
        let out = StencilRun::new(StarStencil::<f64>::from_order(12))
            .config(LaunchConfig::new(32, 32, 4, 8))
            .grid(30, 30, 30)
            .run();
        assert!(out.verification.passed());
        assert!(!out.projected.feasible());
    }
}
