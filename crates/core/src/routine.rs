//! The open routine registry: every execution strategy as a drop-in
//! [`Routine`] trait object instead of an arm of a closed enum.
//!
//! A routine owns three things:
//!
//! * **legality** — [`Routine::supports`] judges a [`ProblemSpec`] and
//!   returns a coded [`RoutineDiag`] (surfaced by `stencil-lint` as an
//!   `LNT-R*` diagnostic) instead of panicking;
//! * **shape** — a typed [`Blueprint`] carrying the tile extent, the
//!   pipeline word count and the per-plane [`ScheduleSkeleton`] that
//!   every downstream layer (lowering, dataflow proof, schedule proof,
//!   codegen, resource model) reads instead of matching on
//!   [`Method`];
//! * **lowering** — [`Routine::lower`] produces the [`StagePlan`] the
//!   single instrumented interpreter runs. The default implementation,
//!   [`lower_blueprint`], is entirely skeleton-driven: a new routine
//!   that can describe itself as a skeleton gets lowering, the
//!   differential suite, the dataflow proof, the traffic oracle and the
//!   tamper property *for free*.
//!
//! Routine identities are stable `u64` codes ([`Routine::id`]) that
//! feed `PlanKey` and `TuneKey` hashing: ids 0–4 reproduce the legacy
//! `method_code` values exactly, so tunes stored before this registry
//! existed still warm-start. [`Method`] remains as a thin compat shim
//! whose [`Method::routine`] is the one sanctioned enum match in the
//! workspace.
//!
//! The registry ships six routines: the five paper methods plus
//! [`Variant::DoubleBuffered`] — two shared-memory staging buffers
//! rotated per plane (the `sync_buffer_cyclic` shape) so the next
//! plane's stage overlaps the current plane's compute, which drops the
//! per-plane reuse barrier.

use crate::config::LaunchConfig;
use crate::method::{Method, Variant};
use crate::plan::{
    halo_arms, ComputeKind, PipelineFeed, PipelineKind, PlanOp, PlanRect, StagePlan, StageSource,
    Zone, INPUT_BUF, OUTPUT_BUF,
};

/// How a routine produces output values each staged plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeShape {
    /// One full stencil evaluation and an immediate write-back (the
    /// forward-plane §III-B shape).
    Direct,
    /// The in-plane pipeline: an Eqn-(3) partial, Eqn-(5) folds into
    /// the queued planes in range, and a write-back of the plane that
    /// just completed (§III-C).
    Pipelined,
}

/// What advances the z-value pipeline after each plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZFeed {
    /// Prefetch plane `k + lead` from global memory while plane `k` is
    /// being computed (forward-plane; `lead = r + 1`).
    PrefetchLead {
        /// Planes ahead of the compute plane the prefetch runs.
        lead: usize,
    },
    /// Take the staged centre value of the current plane (the in-plane
    /// z-history advance — no extra global traffic).
    StagedCentre,
}

/// The global→shared loading pattern of a routine, at the granularity
/// the codegen and the per-plane workload model care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadPattern {
    /// Five scalar regions, interior then each halo arm (Figs 4, 6a).
    ScalarRegions,
    /// A vectorised slab merging top/bottom halos, plus per-column side
    /// walks (Fig 6b).
    VerticalSlab,
    /// Vectorised full-width rows plus top/bottom halo rows (Fig 6c).
    HorizontalRows,
    /// One uniform warp-packed sweep over the whole halo-framed slab,
    /// corners included (Fig 6d; also the double-buffered stage).
    FullSliceSweep,
}

/// The per-plane schedule skeleton of a routine at radius `r`: the
/// complete structural contract the generic lowering emits and the
/// static analyzers verify. Two routines with equal skeletons lower to
/// op-for-op identical plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleSkeleton {
    /// z-value pipeline depth in slots.
    pub z_depth: usize,
    /// Output-queue depth in slots.
    pub out_depth: usize,
    /// Planes at the top of the sweep that are *not* staged: the sweep
    /// runs `k = r .. nz − sweep_tail` (forward stops `r` short; the
    /// in-plane drain runs to the last plane).
    pub sweep_tail: usize,
    /// Barriers per staged plane: 2 for stage + reuse, 1 when a second
    /// staging buffer makes the reuse barrier unnecessary.
    pub barriers_per_plane: usize,
    /// Output production shape.
    pub compute: ComputeShape,
    /// z-pipeline advance policy.
    pub z_feed: ZFeed,
    /// Out-queue rotations per plane (0 direct, 1 pipelined).
    pub q_rotations: usize,
    /// Where the staged interior comes from: a global load, or the
    /// pipeline-centre publish.
    pub interior_source: StageSource,
    /// Whether the `4r²` corner cells are staged too.
    pub stages_corners: bool,
}

impl ScheduleSkeleton {
    /// Pipeline *state* words per point: `z_depth + out_depth − 1` (the
    /// slot being staged is the accumulator, not pipeline state).
    pub fn pipeline_words(&self) -> usize {
        self.z_depth + self.out_depth - 1
    }
}

/// Everything [`Routine::supports`] judges: the problem a caller wants
/// the routine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemSpec {
    /// Stencil radius `r`.
    pub radius: usize,
    /// Element width in bytes (4 = SP, 8 = DP).
    pub elem_bytes: usize,
    /// The launch configuration `(TX, TY, RX, RY)`.
    pub config: LaunchConfig,
    /// Problem-grid dimensions.
    pub dims: (usize, usize, usize),
    /// Shared memory available per SM, when the target device is known
    /// (`None` skips capacity checks — pure-lowering callers).
    pub smem_limit: Option<usize>,
}

/// A coded rejection from [`Routine::supports`]. The code matches an
/// `LNT-R*` entry in `stencil-lint`'s catalog so the sweep surfaces it
/// as a first-class diagnostic; keeping the type here (not in the lint
/// crate) lets `core` stay dependency-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineDiag {
    /// Stable diagnostic code (`LNT-R007`, `LNT-R008`, ...).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A routine's typed execution shape for one problem: everything the
/// lowering, the analyzers and the codegen need, resolved once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blueprint {
    /// [`Routine::id`] of the owning routine.
    pub routine_id: u64,
    /// The compat-shim method tag (carried into the lowered plan).
    pub method: Method,
    /// Stencil radius `r`.
    pub radius: usize,
    /// The launch configuration.
    pub config: LaunchConfig,
    /// Problem-grid dimensions.
    pub dims: (usize, usize, usize),
    /// Tile extent `(TX·RX, TY·RY)`.
    pub tile: (usize, usize),
    /// Pipeline state words per point.
    pub pipeline_words: usize,
    /// The per-plane schedule skeleton.
    pub skeleton: ScheduleSkeleton,
}

/// One execution strategy: legality, shape and lowering in one object.
/// See the module docs for the contract; implementors normally only
/// override the identity methods and [`Routine::skeleton`] — the
/// default [`Routine::lower`] is fully skeleton-driven.
pub trait Routine: Sync {
    /// Stable registry id. Ids 0–4 are pinned to the legacy
    /// `method_code` values (they feed `PlanKey`/`TuneKey` hashing);
    /// new routines append.
    fn id(&self) -> u64;

    /// The compat-shim [`Method`] tag this routine lowers as.
    fn method(&self) -> Method;

    /// Display label (`"nvstencil"`, `"in-plane/full-slice"`, ...).
    fn label(&self) -> String {
        self.method().label()
    }

    /// The generated CUDA kernel's function name.
    fn kernel_fn_name(&self) -> &'static str;

    /// The per-plane schedule skeleton at radius `r`.
    fn skeleton(&self, r: usize) -> ScheduleSkeleton;

    /// Extra flops per point relative to the forward-plane count
    /// (Table II: the in-plane pipeline pays `r` extra adds).
    fn flops_overhead(&self, r: usize) -> usize;

    /// Flops per point for the radius-`r` star stencil: `7r + 1` plus
    /// the routine's overhead.
    fn star_flops_per_point(&self, r: usize) -> usize {
        7 * r + 1 + self.flops_overhead(r)
    }

    /// Register-pipeline state words per point.
    fn pipeline_words(&self, r: usize) -> usize {
        self.skeleton(r).pipeline_words()
    }

    /// Shared-memory staging buffers the routine allocates per streamed
    /// input (1 single-buffered, 2 double-buffered).
    fn staging_buffers(&self) -> usize {
        1
    }

    /// Whether the routine issues vector loads (`float4`/`double2`).
    fn vectorised(&self) -> bool;

    /// Whether the routine runs on the raw unpadded allocation (the
    /// stock SDK baseline's misaligned layout, §III-C2).
    fn unaligned_layout(&self) -> bool {
        false
    }

    /// Whether the CPU golden model is the in-plane summation order.
    fn inplane_reference_order(&self) -> bool;

    /// The global→shared loading pattern.
    fn load_pattern(&self) -> LoadPattern;

    /// Whether the OpenCL backend can emit this routine.
    fn opencl_supported(&self) -> bool {
        false
    }

    /// The generated OpenCL kernel's function name, when supported.
    fn opencl_kernel_name(&self) -> Option<&'static str> {
        None
    }

    /// Judge whether the routine can legally run `problem`. The default
    /// demands the grid strictly contain the radius-`r` halo shell in
    /// every axis (`LNT-R007`); routines with extra constraints chain
    /// onto it.
    fn supports(&self, problem: &ProblemSpec) -> Result<(), RoutineDiag> {
        let (nx, ny, nz) = problem.dims;
        let r = problem.radius;
        if nx <= 2 * r || ny <= 2 * r || nz <= 2 * r {
            return Err(RoutineDiag {
                code: "LNT-R007",
                message: format!(
                    "{}: grid {nx}x{ny}x{nz} too small for radius {r} \
                     (every axis must exceed 2r)",
                    self.label()
                ),
            });
        }
        Ok(())
    }

    /// Resolve the routine's typed shape for one problem.
    fn blueprint(&self, config: &LaunchConfig, r: usize, dims: (usize, usize, usize)) -> Blueprint {
        let skeleton = self.skeleton(r);
        Blueprint {
            routine_id: self.id(),
            method: self.method(),
            radius: r,
            config: *config,
            dims,
            tile: (config.tile_x(), config.tile_y()),
            pipeline_words: skeleton.pipeline_words(),
            skeleton,
        }
    }

    /// Lower the blueprint to the typed [`StagePlan`] IR. The default
    /// is the generic skeleton-driven lowering.
    fn lower(&self, blueprint: &Blueprint) -> StagePlan {
        lower_blueprint(blueprint)
    }
}

/// The generic skeleton-driven lowering: one interior Jacobi step over
/// `INPUT_BUF` → `OUTPUT_BUF`, reproducing the per-plane schedule the
/// CUDA kernels of §III execute. Pure function of the blueprint.
pub fn lower_blueprint(bp: &Blueprint) -> StagePlan {
    let (nx, ny, nz) = bp.dims;
    let r = bp.radius;
    let sk = &bp.skeleton;
    let mut ops = Vec::new();
    for (x0, y0, w, h) in crate::exec::tiles(nx, ny, r, &bp.config) {
        ops.push(PlanOp::BeginBlock {
            device: 0,
            input: INPUT_BUF,
            output: OUTPUT_BUF,
            x0,
            y0,
            w,
            h,
            z_depth: sk.z_depth,
            out_depth: sk.out_depth,
        });
        let (ix0, ix1) = (x0 as isize, (x0 + w) as isize);
        let (iy0, iy1) = (y0 as isize, (y0 + h) as isize);
        let ri = r as isize;
        for k in r..nz - sk.sweep_tail {
            // Stage plane k: interior per the skeleton's source, the
            // four halo arms from global, plus the corners when the
            // loading pattern sweeps them.
            ops.push(PlanOp::StageRegion {
                zone: Zone::Interior,
                rect: PlanRect::new(ix0, ix1, iy0, iy1),
                plane: k,
                source: sk.interior_source,
            });
            for (zone, rect) in halo_arms(ix0, ix1, iy0, iy1, ri) {
                ops.push(PlanOp::StageRegion {
                    zone,
                    rect,
                    plane: k,
                    source: StageSource::Global,
                });
            }
            if sk.stages_corners {
                for rect in [
                    PlanRect::new(ix0 - ri, ix0, iy0 - ri, iy0),
                    PlanRect::new(ix1, ix1 + ri, iy0 - ri, iy0),
                    PlanRect::new(ix0 - ri, ix0, iy1, iy1 + ri),
                    PlanRect::new(ix1, ix1 + ri, iy1, iy1 + ri),
                ] {
                    ops.push(PlanOp::StageRegion {
                        zone: Zone::Corner,
                        rect,
                        plane: k,
                        source: StageSource::Global,
                    });
                }
            }
            ops.push(PlanOp::Barrier);
            match sk.compute {
                ComputeShape::Direct => {
                    ops.push(PlanOp::ComputePoint {
                        plane: k,
                        slot: 0,
                        kind: ComputeKind::ForwardFull,
                    });
                    ops.push(PlanOp::WriteBack { plane: k, slot: 0 });
                }
                ComputeShape::Pipelined => {
                    // Eqn-(3) partial if k is an output plane.
                    if k < nz - r {
                        ops.push(PlanOp::ComputePoint {
                            plane: k,
                            slot: 0,
                            kind: ComputeKind::InplanePartial,
                        });
                    }
                    // Eqn-(5) folds into the queued planes in range.
                    for d in 1..=r {
                        let in_range =
                            matches!(k.checked_sub(d), Some(kd) if kd >= r && kd < nz - r);
                        if in_range {
                            ops.push(PlanOp::ComputePoint {
                                plane: k,
                                slot: d,
                                kind: ComputeKind::FoldCentre { depth: d },
                            });
                        }
                    }
                    // Plane k − r is complete.
                    if let Some(done_k) = k.checked_sub(r) {
                        if done_k >= r && done_k < nz - r {
                            ops.push(PlanOp::WriteBack {
                                plane: done_k,
                                slot: r,
                            });
                        }
                    }
                }
            }
            // The reuse barrier: only single-buffered schedules need it
            // (a second staging buffer lets the next stage overlap).
            if sk.barriers_per_plane == 2 {
                ops.push(PlanOp::Barrier);
            }
            for _ in 0..sk.q_rotations {
                ops.push(PlanOp::RotatePipeline {
                    pipeline: PipelineKind::OutQueue,
                    feed: PipelineFeed::None,
                });
            }
            match sk.z_feed {
                ZFeed::PrefetchLead { lead } => {
                    if k + 1 < nz - sk.sweep_tail {
                        ops.push(PlanOp::RotatePipeline {
                            pipeline: PipelineKind::ZValues,
                            feed: PipelineFeed::GlobalPlane(k + lead),
                        });
                    }
                }
                ZFeed::StagedCentre => {
                    ops.push(PlanOp::RotatePipeline {
                        pipeline: PipelineKind::ZValues,
                        feed: PipelineFeed::StagedCentre,
                    });
                }
            }
        }
    }
    StagePlan {
        method: bp.method,
        radius: r,
        dims: bp.dims,
        ops,
    }
}

/// The forward-plane (*nvstencil*) routine: registry id 0.
pub struct ForwardPlaneRoutine;

impl Routine for ForwardPlaneRoutine {
    fn id(&self) -> u64 {
        0
    }

    fn method(&self) -> Method {
        Method::ForwardPlane
    }

    fn kernel_fn_name(&self) -> &'static str {
        "stencil_forward_plane"
    }

    fn skeleton(&self, r: usize) -> ScheduleSkeleton {
        ScheduleSkeleton {
            z_depth: 2 * r + 1,
            out_depth: 1,
            sweep_tail: r,
            barriers_per_plane: 2,
            compute: ComputeShape::Direct,
            z_feed: ZFeed::PrefetchLead { lead: r + 1 },
            q_rotations: 0,
            interior_source: StageSource::PipelineCentre,
            stages_corners: false,
        }
    }

    fn flops_overhead(&self, _r: usize) -> usize {
        0
    }

    fn vectorised(&self) -> bool {
        false
    }

    fn unaligned_layout(&self) -> bool {
        true
    }

    fn inplane_reference_order(&self) -> bool {
        false
    }

    fn load_pattern(&self) -> LoadPattern {
        LoadPattern::ScalarRegions
    }

    fn opencl_supported(&self) -> bool {
        true
    }

    fn opencl_kernel_name(&self) -> Option<&'static str> {
        Some("stencil_forward_plane")
    }
}

/// A single-buffered in-plane routine: ids 1–4 cover the four loading
/// variants of Fig 6; the schedule skeleton is shared, only the loading
/// pattern and corner behaviour differ.
pub struct InPlaneRoutine {
    variant: Variant,
}

/// The shared in-plane schedule skeleton (Eqns (3)–(5), §III-C).
fn inplane_skeleton(r: usize, barriers_per_plane: usize, stages_corners: bool) -> ScheduleSkeleton {
    ScheduleSkeleton {
        z_depth: r,
        out_depth: r + 1,
        sweep_tail: 0,
        barriers_per_plane,
        compute: ComputeShape::Pipelined,
        z_feed: ZFeed::StagedCentre,
        q_rotations: 1,
        interior_source: StageSource::Global,
        stages_corners,
    }
}

impl Routine for InPlaneRoutine {
    fn id(&self) -> u64 {
        1 + self.variant as u64
    }

    fn method(&self) -> Method {
        Method::InPlane(self.variant)
    }

    fn kernel_fn_name(&self) -> &'static str {
        match self.variant {
            Variant::Classical => "stencil_inplane_classical",
            Variant::Vertical => "stencil_inplane_vertical",
            Variant::Horizontal => "stencil_inplane_horizontal",
            Variant::FullSlice => "stencil_inplane_fullslice",
            Variant::DoubleBuffered => "stencil_inplane_dblbuf",
        }
    }

    fn skeleton(&self, r: usize) -> ScheduleSkeleton {
        inplane_skeleton(r, 2, self.variant == Variant::FullSlice)
    }

    fn flops_overhead(&self, r: usize) -> usize {
        r
    }

    fn vectorised(&self) -> bool {
        self.variant != Variant::Classical
    }

    fn inplane_reference_order(&self) -> bool {
        true
    }

    fn load_pattern(&self) -> LoadPattern {
        match self.variant {
            Variant::Classical => LoadPattern::ScalarRegions,
            Variant::Vertical => LoadPattern::VerticalSlab,
            Variant::Horizontal => LoadPattern::HorizontalRows,
            Variant::FullSlice | Variant::DoubleBuffered => LoadPattern::FullSliceSweep,
        }
    }

    fn opencl_supported(&self) -> bool {
        self.variant == Variant::FullSlice
    }

    fn opencl_kernel_name(&self) -> Option<&'static str> {
        (self.variant == Variant::FullSlice).then_some("stencil_inplane_fullslice")
    }
}

/// The double-buffered plane-staging routine: registry id 5. Two
/// shared-memory staging buffers rotated per plane (the
/// `sync_buffer_cyclic` shape): while the block computes out of buffer
/// `k mod 2`, the next plane stages into the other buffer, so the
/// per-plane *reuse* barrier disappears — one `__syncthreads()` per
/// plane instead of two — at the cost of doubling the staging
/// footprint. Loading is the full-slice sweep (Fig 6d) per buffer.
pub struct DoubleBufferedRoutine;

impl Routine for DoubleBufferedRoutine {
    fn id(&self) -> u64 {
        5
    }

    fn method(&self) -> Method {
        Method::InPlane(Variant::DoubleBuffered)
    }

    fn kernel_fn_name(&self) -> &'static str {
        "stencil_inplane_dblbuf"
    }

    fn skeleton(&self, r: usize) -> ScheduleSkeleton {
        inplane_skeleton(r, 1, true)
    }

    fn flops_overhead(&self, r: usize) -> usize {
        r
    }

    fn staging_buffers(&self) -> usize {
        2
    }

    fn vectorised(&self) -> bool {
        true
    }

    fn inplane_reference_order(&self) -> bool {
        true
    }

    fn load_pattern(&self) -> LoadPattern {
        LoadPattern::FullSliceSweep
    }

    fn supports(&self, problem: &ProblemSpec) -> Result<(), RoutineDiag> {
        // The generic grid check first.
        let r = problem.radius;
        let (nx, ny, nz) = problem.dims;
        if nx <= 2 * r || ny <= 2 * r || nz <= 2 * r {
            return Err(RoutineDiag {
                code: "LNT-R007",
                message: format!(
                    "{}: grid {nx}x{ny}x{nz} too small for radius {r} \
                     (every axis must exceed 2r)",
                    self.label()
                ),
            });
        }
        // The staging *pair* must fit the device's shared memory.
        if let Some(limit) = problem.smem_limit {
            let slab = (problem.config.tile_x() + 2 * r) * (problem.config.tile_y() + 2 * r);
            let pair = slab * problem.elem_bytes * self.staging_buffers();
            if pair > limit {
                return Err(RoutineDiag {
                    code: "LNT-R008",
                    message: format!(
                        "{}: double-buffered staging pair needs {pair} B \
                         shared memory, device provides {limit} B",
                        self.label()
                    ),
                });
            }
        }
        Ok(())
    }
}

static FORWARD_PLANE: ForwardPlaneRoutine = ForwardPlaneRoutine;
static INPLANE_CLASSICAL: InPlaneRoutine = InPlaneRoutine {
    variant: Variant::Classical,
};
static INPLANE_VERTICAL: InPlaneRoutine = InPlaneRoutine {
    variant: Variant::Vertical,
};
static INPLANE_HORIZONTAL: InPlaneRoutine = InPlaneRoutine {
    variant: Variant::Horizontal,
};
static INPLANE_FULLSLICE: InPlaneRoutine = InPlaneRoutine {
    variant: Variant::FullSlice,
};
static DOUBLE_BUFFERED: DoubleBufferedRoutine = DoubleBufferedRoutine;

/// The registered routines, in stable-id order.
pub fn registry() -> &'static [&'static dyn Routine] {
    static REGISTRY: [&dyn Routine; 6] = [
        &FORWARD_PLANE,
        &INPLANE_CLASSICAL,
        &INPLANE_VERTICAL,
        &INPLANE_HORIZONTAL,
        &INPLANE_FULLSLICE,
        &DOUBLE_BUFFERED,
    ];
    &REGISTRY
}

/// Look a routine up by its stable id.
pub fn routine_by_id(id: u64) -> Option<&'static dyn Routine> {
    registry().iter().copied().find(|rt| rt.id() == id)
}

/// Look a routine up by its display label.
pub fn routine_by_label(label: &str) -> Option<&'static dyn Routine> {
    registry().iter().copied().find(|rt| rt.label() == label)
}

pub(crate) fn routine_for(method: Method) -> &'static dyn Routine {
    routine_by_id(crate::method::method_code(method))
        .expect("every Method maps onto a registered routine")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_stable_and_dense() {
        let reg = registry();
        assert_eq!(reg.len(), 6);
        for (i, rt) in reg.iter().enumerate() {
            assert_eq!(rt.id(), i as u64, "{}", rt.label());
            assert_eq!(routine_by_id(rt.id()).unwrap().label(), rt.label());
            assert_eq!(routine_by_label(&rt.label()).unwrap().id(), rt.id());
        }
        assert!(routine_by_id(99).is_none());
        assert!(routine_by_label("no-such-routine").is_none());
    }

    #[test]
    fn legacy_ids_match_the_method_codes() {
        // Ids 0–4 are pinned to the pre-registry method_code values —
        // this is what keeps stored TuneKey hashes valid.
        assert_eq!(Method::ForwardPlane.routine().id(), 0);
        assert_eq!(Method::InPlane(Variant::Classical).routine().id(), 1);
        assert_eq!(Method::InPlane(Variant::Vertical).routine().id(), 2);
        assert_eq!(Method::InPlane(Variant::Horizontal).routine().id(), 3);
        assert_eq!(Method::InPlane(Variant::FullSlice).routine().id(), 4);
        assert_eq!(Method::InPlane(Variant::DoubleBuffered).routine().id(), 5);
    }

    #[test]
    fn skeleton_pipeline_words_match_the_method_table() {
        for r in 1..=6 {
            for rt in registry() {
                assert_eq!(
                    rt.pipeline_words(r),
                    rt.method().pipeline_words(r),
                    "{} r={r}",
                    rt.label()
                );
                assert_eq!(
                    rt.star_flops_per_point(r),
                    rt.method().star_flops_per_point(r),
                    "{} r={r}",
                    rt.label()
                );
            }
        }
    }

    #[test]
    fn double_buffered_drops_the_reuse_barrier_and_doubles_staging() {
        let db = &DOUBLE_BUFFERED;
        let fs = Method::InPlane(Variant::FullSlice).routine();
        let (a, b) = (db.skeleton(2), fs.skeleton(2));
        assert_eq!(a.barriers_per_plane, 1);
        assert_eq!(b.barriers_per_plane, 2);
        assert_eq!(db.staging_buffers(), 2);
        assert_eq!(fs.staging_buffers(), 1);
        // Everything else agrees: the op stream differs only in the
        // reuse barrier.
        assert_eq!(a.z_depth, b.z_depth);
        assert_eq!(a.out_depth, b.out_depth);
        assert_eq!(a.sweep_tail, b.sweep_tail);
        assert_eq!(a.compute, b.compute);
        assert_eq!(a.z_feed, b.z_feed);
        assert_eq!(a.stages_corners, b.stages_corners);
    }

    #[test]
    fn supports_rejects_undersized_grids_with_a_coded_diag() {
        let p = ProblemSpec {
            radius: 3,
            elem_bytes: 4,
            config: LaunchConfig::new(8, 8, 1, 1),
            dims: (6, 20, 20),
            smem_limit: None,
        };
        for rt in registry() {
            let err = rt.supports(&p).unwrap_err();
            assert_eq!(err.code, "LNT-R007", "{}", rt.label());
        }
    }

    #[test]
    fn double_buffered_rejects_oversized_staging_pairs() {
        let p = ProblemSpec {
            radius: 2,
            elem_bytes: 8,
            config: LaunchConfig::new(64, 8, 1, 4),
            dims: (96, 96, 32),
            smem_limit: Some(32 * 1024),
        };
        // Single-buffered full-slice fits: (64+4)·(32+4)·8 = 19584 B
        // (the lint resource checks handle its capacity separately)...
        assert!(Method::InPlane(Variant::FullSlice)
            .routine()
            .supports(&p)
            .is_ok());
        // ...but the double-buffered pair (39168 B) does not.
        let err = DOUBLE_BUFFERED.supports(&p).unwrap_err();
        assert_eq!(err.code, "LNT-R008");
        assert!(err.message.contains("39168"), "{}", err.message);
    }

    #[test]
    fn blueprints_resolve_tile_and_words() {
        let cfg = LaunchConfig::new(16, 4, 2, 2);
        for rt in registry() {
            let bp = rt.blueprint(&cfg, 3, (40, 40, 20));
            assert_eq!(bp.routine_id, rt.id());
            assert_eq!(bp.tile, (32, 8));
            assert_eq!(bp.pipeline_words, rt.pipeline_words(3));
            assert_eq!(bp.method, rt.method());
        }
    }
}
