//! Device-memory layout of the grid and the tile a block works on.
//!
//! Addresses are what the coalescing model consumes, so this module is
//! the single source of truth for where element `(x, y)` of the current
//! z-plane lives. The grid allocation mirrors what a tuned CUDA stencil
//! does: base pointer segment-aligned, rows padded to a whole number of
//! segments (the array-padding optimisation of §I/§III-C2), planes
//! therefore segment-aligned too — which is why the per-plane load plan
//! of one interior block is identical on every plane and for every block
//! at the same x-offset class.

use crate::config::LaunchConfig;

/// Geometry of the tile one representative interior block loads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGeometry {
    /// Tile origin (x) in grid elements.
    pub x0: usize,
    /// Tile origin (y).
    pub y0: usize,
    /// Tile width, `TX·RX`.
    pub wx: usize,
    /// Tile height, `TY·RY`.
    pub wy: usize,
    /// Stencil radius.
    pub r: usize,
    /// Element width in bytes (4 = SP, 8 = DP).
    pub elem_bytes: u64,
    /// Padded row stride of the grid, in elements.
    pub row_stride: usize,
    /// Physical x-shift of the whole layout, in elements.
    ///
    /// The in-plane implementation pads the allocation so that tile
    /// origins land on segment boundaries (§III-C2's alignment
    /// precondition for vector loads): shift 0. The stock SDK baseline
    /// (*nvstencil*) allocates the raw `LX×LY×LZ` volume, so the interior
    /// (and with it every tile origin) is offset by the boundary ring
    /// width `r` — each row's loads and stores straddle one extra segment
    /// and the separately-issued halo loads re-fetch segments the
    /// interior load already touched. This is the array-padding
    /// optimisation of §I that the baseline lacks.
    pub x_shift: usize,
}

impl TileGeometry {
    /// Geometry for a representative *interior* block: the block at tile
    /// index (1, 1), so halos on every side stay inside the allocation.
    ///
    /// `lx` is only used to compute the padded row stride; rows are
    /// padded up to a whole number of `segment_bytes` segments.
    pub fn interior(
        config: &LaunchConfig,
        r: usize,
        elem_bytes: u64,
        lx: usize,
        segment_bytes: u64,
    ) -> Self {
        let elems_per_segment = (segment_bytes / elem_bytes) as usize;
        let row_stride = lx.div_ceil(elems_per_segment) * elems_per_segment;
        TileGeometry {
            x0: config.tile_x(),
            y0: config.tile_y(),
            wx: config.tile_x(),
            wy: config.tile_y(),
            r,
            elem_bytes,
            row_stride,
            x_shift: 0,
        }
    }

    /// The same geometry in the *unpadded* baseline layout: everything
    /// shifted right by the boundary-ring width `r` (see [`Self::x_shift`]).
    pub fn unaligned_baseline(mut self) -> Self {
        self.x_shift = self.r;
        self
    }

    /// Byte address of element `(x, y)` on the current plane. `x`/`y` are
    /// absolute grid coordinates (signed so halo offsets just work); the
    /// base offset keeps everything comfortably positive and
    /// segment-aligned.
    #[inline]
    pub fn addr(&self, x: isize, y: isize) -> u64 {
        const BASE: i64 = 1 << 24; // segment-aligned, larger than any halo reach
        let lin = y as i64 * self.row_stride as i64 + x as i64 + self.x_shift as i64;
        (BASE + lin * self.elem_bytes as i64) as u64
    }

    /// x-range of the tile's interior columns `[x0, x0 + wx)`.
    pub fn interior_x(&self) -> (isize, isize) {
        (self.x0 as isize, (self.x0 + self.wx) as isize)
    }

    /// y-range of the tile's interior rows `[y0, y0 + wy)`.
    pub fn interior_y(&self) -> (isize, isize) {
        (self.y0 as isize, (self.y0 + self.wy) as isize)
    }

    /// x-range including halos `[x0 - r, x0 + wx + r)`.
    pub fn slab_x(&self) -> (isize, isize) {
        (
            self.x0 as isize - self.r as isize,
            (self.x0 + self.wx + self.r) as isize,
        )
    }

    /// y-range including halos `[y0 - r, y0 + wy + r)`.
    pub fn slab_y(&self) -> (isize, isize) {
        (
            self.y0 as isize - self.r as isize,
            (self.y0 + self.wy + self.r) as isize,
        )
    }

    /// Elements the in-plane slab covers including corners (full-slice).
    pub fn full_slab_elems(&self) -> usize {
        (self.wx + 2 * self.r) * (self.wy + 2 * self.r)
    }

    /// Redundant corner elements the full-slice pattern loads: `4r²`
    /// (§III-C1 — independent of the block size).
    pub fn corner_elems(&self) -> usize {
        4 * self.r * self.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> TileGeometry {
        TileGeometry::interior(&LaunchConfig::new(32, 4, 1, 4), 2, 4, 512, 128)
    }

    #[test]
    fn interior_tile_is_offset_by_one_tile() {
        let g = geom();
        assert_eq!((g.x0, g.y0), (32, 16));
        assert_eq!((g.wx, g.wy), (32, 16));
    }

    #[test]
    fn row_stride_padded_to_segments() {
        let g = TileGeometry::interior(&LaunchConfig::new(8, 8, 1, 1), 1, 4, 100, 128);
        // 128-byte segments hold 32 SP elements; 100 pads to 128.
        assert_eq!(g.row_stride, 128);
        let g2 = TileGeometry::interior(&LaunchConfig::new(8, 8, 1, 1), 1, 8, 100, 128);
        // 16 DP elements per segment; 100 pads to 112.
        assert_eq!(g2.row_stride, 112);
    }

    #[test]
    fn addresses_are_row_major() {
        let g = geom();
        let a = g.addr(10, 5);
        assert_eq!(g.addr(11, 5), a + 4);
        assert_eq!(g.addr(10, 6), a + 512 * 4);
    }

    #[test]
    fn base_is_segment_aligned() {
        let g = geom();
        assert_eq!(g.addr(0, 0) % 128, 0);
    }

    #[test]
    fn halo_addresses_stay_positive() {
        let g = geom();
        let (xs, _) = g.slab_x();
        let (ys, _) = g.slab_y();
        assert!(xs >= 0 - 512); // reach is tiny vs the base offset
        let _ = g.addr(xs - 10, ys - 10); // must not underflow u64
    }

    #[test]
    fn ranges() {
        let g = geom();
        assert_eq!(g.interior_x(), (32, 64));
        assert_eq!(g.slab_x(), (30, 66));
        assert_eq!(g.interior_y(), (16, 32));
        assert_eq!(g.slab_y(), (14, 34));
    }

    #[test]
    fn corner_count_is_4r_squared() {
        let g = geom();
        assert_eq!(g.corner_elems(), 16);
        assert_eq!(g.full_slab_elems(), 36 * 20);
    }
}
