//! Kernel resource estimation: registers per thread and shared memory
//! per block (`K_R` and `K_S` in the paper's model).
//!
//! The estimates mirror what the CUDA compiler allocates for these
//! kernels:
//!
//! * a fixed overhead for addressing, loop counters and predicates;
//! * the per-point register *pipelines*: the forward-plane method keeps
//!   `2r + 1` z-values per computed point in flight; the in-plane method
//!   keeps `r` queued partial outputs plus `r` trailing z-values
//!   (Eqns (3)–(5)) — `2r` words per point;
//! * register tiling multiplies the pipelines by `RX × RY` points per
//!   thread, and DP words take two 32-bit registers each — this is the
//!   "more registers, lower occupancy" trade-off of §IV-C;
//! * vector loads need a staging temporary of `v` words.
//!
//! Shared memory is the staging buffer for the current plane:
//! `(TX·RX + 2r) × (TY·RY + 2r)` elements for every method (corners are
//! allocated even by the variants that never fill them).

use crate::config::LaunchConfig;
use crate::kernel::KernelSpec;
use gpu_sim::occupancy::BlockResources;
use stencil_grid::Precision;

/// Fixed per-thread register overhead (addressing, indices, predicates).
pub const BASE_REGS: usize = 14;

/// Registers per thread for `kernel` at `config`.
pub fn regs_per_thread(kernel: &KernelSpec, config: &LaunchConfig) -> usize {
    let r = kernel.radius;
    // The routine's pipeline state: 2r+1 plane values resident per
    // point forward (§III-B); r queued partial outputs + r trailing
    // z-values in-plane (§III-C).
    let words_per_point = kernel.method.routine().pipeline_words(r);
    let regs_per_word = kernel.elem_bytes / 4;
    let pipeline = words_per_point * config.points_per_thread() * regs_per_word;
    // Scalar stencil coefficients (c0..cr) are declared in constant
    // memory, as in the SDK sample, but the unrolled multiply-accumulate
    // sequence keeps the innermost few live in registers; beyond that the
    // compiler re-fetches from the constant bank. Cap at 6 live words so
    // very high orders (the paper runs up to 32nd order on the C2070)
    // stay compilable.
    let coeffs = if kernel.coeff_inputs == 0 {
        (r + 1).min(6) * regs_per_word
    } else {
        0
    };
    // Vector-load staging: two words — the remaining lanes of a 16-byte
    // load land directly in pipeline registers.
    let vector_tmp = if vector_width(kernel) > 1 {
        2 * regs_per_word
    } else {
        regs_per_word
    };
    BASE_REGS + pipeline + coeffs + vector_tmp
}

/// Shared-memory bytes per block: the staged plane with its halo frame,
/// one buffer per streamed input grid — times the routine's staging
/// buffer count (the double-buffered routine rotates a pair).
pub fn smem_bytes(kernel: &KernelSpec, config: &LaunchConfig) -> usize {
    let r = kernel.radius;
    let slab = (config.tile_x() + 2 * r) * (config.tile_y() + 2 * r);
    slab * kernel.elem_bytes
        * kernel.streamed_inputs.max(1)
        * kernel.method.routine().staging_buffers()
}

/// Hardware vector-load width (elements per lane) this kernel uses:
/// 4-wide `float4` / 2-wide `double2` for the routines that vectorise
/// (§III-C2); the SDK baseline and the classical variant load scalar.
pub fn vector_width(kernel: &KernelSpec) -> usize {
    if kernel.method.routine().vectorised() {
        match kernel.precision() {
            Precision::Single => 4,
            Precision::Double => 2,
        }
    } else {
        1
    }
}

/// Bundle the block resources for the occupancy calculator.
pub fn block_resources(kernel: &KernelSpec, config: &LaunchConfig) -> BlockResources {
    BlockResources {
        threads: config.threads(),
        regs_per_thread: regs_per_thread(kernel, config),
        smem_bytes: smem_bytes(kernel, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{Method, Variant};
    use stencil_grid::StarStencil;

    fn star(method: Method, order: usize) -> KernelSpec {
        let s: StarStencil<f32> = StarStencil::from_order(order);
        KernelSpec::star(method, &s)
    }

    #[test]
    fn inplane_uses_fewer_pipeline_regs_than_forward() {
        let c = LaunchConfig::new(32, 4, 1, 4);
        for order in [2, 4, 8, 12] {
            let f = regs_per_thread(&star(Method::ForwardPlane, order), &c);
            let i = regs_per_thread(&star(Method::InPlane(Variant::FullSlice), order), &c);
            // 2r vs 2r+1 words per point, minus the vector temp difference.
            assert!(i <= f + 4, "order {order}: in-plane {i} vs forward {f}");
        }
    }

    #[test]
    fn register_blocking_multiplies_pipeline() {
        let k = star(Method::InPlane(Variant::FullSlice), 4);
        let r1 = regs_per_thread(&k, &LaunchConfig::new(32, 4, 1, 1));
        let r4 = regs_per_thread(&k, &LaunchConfig::new(32, 4, 1, 4));
        // Pipeline words: 2r=4 per point; 3 extra points → +12 registers.
        assert_eq!(r4 - r1, 12);
    }

    #[test]
    fn dp_doubles_data_registers() {
        let sp = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Single);
        let dp = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 8, Precision::Double);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let rs = regs_per_thread(&sp, &c);
        let rd = regs_per_thread(&dp, &c);
        assert!(rd > rs, "DP must use more registers");
        // Every data register class (pipeline, coefficients, vector
        // staging) doubles; only the fixed base does not.
        assert_eq!(rd - BASE_REGS, 2 * (rs - BASE_REGS));
    }

    #[test]
    fn order12_dp_with_big_tiles_exceeds_register_file_practicality() {
        // The paper's optimal order-12 DP configs collapse to RX=RY=1
        // (Table IV); bigger register blocks must blow past the 63-reg
        // hardware cap and become infeasible.
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        let big = regs_per_thread(&k, &LaunchConfig::new(16, 8, 2, 2));
        assert!(big > 63, "got {big}");
        let small = regs_per_thread(&k, &LaunchConfig::new(16, 8, 1, 1));
        assert!(small <= 63, "got {small}");
    }

    #[test]
    fn smem_is_the_halo_framed_slab() {
        let k = star(Method::InPlane(Variant::FullSlice), 4);
        let c = LaunchConfig::new(32, 4, 1, 4);
        // (32+4) × (16+4) × 4 B.
        assert_eq!(smem_bytes(&k, &c), 36 * 20 * 4);
    }

    #[test]
    fn smem_scales_with_streamed_inputs() {
        let mut k = star(Method::InPlane(Variant::FullSlice), 2);
        k.streamed_inputs = 3;
        let c = LaunchConfig::new(32, 4, 1, 1);
        assert_eq!(smem_bytes(&k, &c), 3 * 34 * 6 * 4);
    }

    #[test]
    fn vector_widths() {
        assert_eq!(vector_width(&star(Method::ForwardPlane, 4)), 1);
        assert_eq!(
            vector_width(&star(Method::InPlane(Variant::FullSlice), 4)),
            4
        );
        assert_eq!(
            vector_width(&star(Method::InPlane(Variant::Classical), 4)),
            1
        );
        let dp = KernelSpec::star_order(Method::InPlane(Variant::Horizontal), 4, Precision::Double);
        assert_eq!(vector_width(&dp), 2);
    }

    #[test]
    fn block_resources_bundle() {
        let k = star(Method::InPlane(Variant::FullSlice), 2);
        let c = LaunchConfig::new(64, 4, 1, 2);
        let res = block_resources(&k, &c);
        assert_eq!(res.threads, 256);
        assert_eq!(res.regs_per_thread, regs_per_thread(&k, &c));
        assert_eq!(res.smem_bytes, smem_bytes(&k, &c));
    }
}
