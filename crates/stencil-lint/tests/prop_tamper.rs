//! Tamper property: the dataflow engine is a *semantic* checker, not a
//! syntax diff. For a randomly mutated lowered plan (one op dropped,
//! duplicated in place, or swapped with its neighbour) one of two things
//! must hold:
//!
//! * the whole-plan dataflow pass emits at least one **error**-severity
//!   diagnostic — the tamper broke the schedule and the static proof
//!   caught it (the tampered plan is then *not* interpreted: a broken
//!   schedule may legitimately abort the interpreter); or
//! * the tampered plan is semantically harmless — interpreting it under
//!   the checked interpreter raises no staging violation and produces
//!   **bit-identical** output to the untampered plan.
//!
//! A tamper that silently changes the answer is exactly the kind of
//! lowering bug the engine exists to refuse.

use proptest::prelude::*;
use stencil_lint::analyze_plan;

use inplane_core::{
    interpret_plan_checked, lower_step, LaunchConfig, Method, PlanOp, StagePlan, Variant,
};
use stencil_grid::{FillPattern, Grid3, StarStencil};

const METHODS: [Method; 6] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
    Method::InPlane(Variant::DoubleBuffered),
];

#[derive(Clone, Copy, Debug)]
enum Tamper {
    Drop,
    Duplicate,
    SwapWithNext,
}

fn tampered(plan: &StagePlan, kind: Tamper, at: usize) -> Option<StagePlan> {
    let mut ops: Vec<PlanOp> = plan.ops.clone();
    match kind {
        Tamper::Drop => {
            ops.remove(at);
        }
        Tamper::Duplicate => {
            let op = ops[at];
            ops.insert(at, op);
        }
        Tamper::SwapWithNext => {
            if at + 1 >= ops.len() {
                return None;
            }
            ops.swap(at, at + 1);
        }
    }
    let mut out = plan.clone();
    out.ops = ops;
    Some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tampered_plans_are_flagged_or_harmless(
        method_idx in 0usize..6,
        radius in 1usize..3,
        tx in prop::sample::select(vec![4usize, 8]),
        ty in 2usize..5,
        kind_idx in 0usize..3,
        at_seed in 0usize..10_000,
    ) {
        let method = METHODS[method_idx];
        let config = LaunchConfig::new(tx, ty, 1, 1);
        let dims = (
            2 * radius + 2 * config.tile_x(),
            2 * radius + 2 * config.tile_y(),
            4 * radius + 2,
        );
        let plan = lower_step(method, &config, radius, dims);
        prop_assert!(!plan.ops.is_empty());
        let at = at_seed % plan.ops.len();
        let kind = [Tamper::Drop, Tamper::Duplicate, Tamper::SwapWithNext][kind_idx];
        let Some(bad) = tampered(&plan, kind, at) else {
            return Ok(());
        };

        let report = analyze_plan(&bad);
        if report.errors() > 0 {
            // Flagged statically; a broken schedule need not interpret.
            return Ok(());
        }

        // No static error: the tamper must be observably harmless.
        let stencil: StarStencil<f64> = StarStencil::diffusion(radius);
        let input: Grid3<f64> = FillPattern::HashNoise.build(dims.0, dims.1, dims.2);
        let mut good_out: Grid3<f64> = Grid3::new(dims.0, dims.1, dims.2);
        let mut bad_out: Grid3<f64> = Grid3::new(dims.0, dims.1, dims.2);
        let (_, good_errs) = interpret_plan_checked(&plan, &stencil, &input, &mut good_out);
        let (_, bad_errs) = interpret_plan_checked(&bad, &stencil, &input, &mut bad_out);
        prop_assert!(good_errs.is_empty(), "untampered plan must be valid");
        prop_assert!(
            bad_errs.is_empty(),
            "{kind:?} of op {at} ({:?}) raised staging violations the \
             dataflow pass missed: {:?}",
            plan.ops[at],
            bad_errs
        );
        prop_assert!(
            good_out.raw() == bad_out.raw(),
            "{kind:?} of op {at} ({:?}) silently changed the output with \
             no dataflow error; diagnostics: {:?}",
            plan.ops[at],
            report.diagnostics
        );
    }
}
