//! Differential suite: the static traffic oracle must reproduce the
//! instrumented interpreter's `ExecStats` **exactly** — zero tolerance —
//! over every lowering the workspace produces: the five single-step
//! methods across precisions and launch shapes, the temporal-tiling
//! transform and the multi-device transform. The same plans must also
//! pass the whole-plan dataflow proof with zero error-severity
//! diagnostics; the only findings allowed on legitimate plans are the
//! documented warnings/notes (drain-phase dead arms, box-granular
//! transport, final-step exchanges, full-slice corner staging).

use inplane_core::{interpret_plan, lower_step, LaunchConfig, Method, Variant};
use stencil_grid::{FillPattern, Grid3, Precision, Real, StarStencil};
use stencil_lint::{analyze_plan, predict_stats, predict_traffic};
use stencil_multigpu::multi_gpu_stage_plan;
use stencil_temporal::temporal_stage_plan;

const METHODS: [Method; 6] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
    Method::InPlane(Variant::DoubleBuffered),
];

fn grid<T: Real>(dims: (usize, usize, usize)) -> Grid3<T> {
    FillPattern::HashNoise.build(dims.0, dims.1, dims.2)
}

/// Interpret `plan` over a noise grid and demand the static prediction
/// matches the dynamic counters field for field.
fn assert_static_matches_dynamic<T: Real>(plan: &inplane_core::StagePlan, r: usize, label: &str) {
    let stencil: StarStencil<T> = StarStencil::diffusion(r);
    let input: Grid3<T> = grid(plan.dims);
    let mut out: Grid3<T> = Grid3::new(plan.dims.0, plan.dims.1, plan.dims.2);
    let dynamic = interpret_plan(plan, &stencil, &input, &mut out);
    let predicted = predict_stats(plan);
    assert_eq!(predicted, dynamic, "oracle drifted on {label}");
}

#[test]
fn single_step_matrix_matches_exactly_both_precisions() {
    let configs = [
        LaunchConfig::new(4, 4, 1, 1),
        LaunchConfig::new(8, 2, 1, 3),
        LaunchConfig::new(16, 2, 2, 1),
    ];
    let grids = [(12, 12, 12), (17, 13, 11)];
    for method in METHODS {
        for config in &configs {
            for dims in grids {
                let r = 2;
                let plan = lower_step(method, config, r, dims);
                let label = format!("{method:?} {config:?} {dims:?}");
                assert_static_matches_dynamic::<f32>(&plan, r, &label);
                assert_static_matches_dynamic::<f64>(&plan, r, &label);

                let report = analyze_plan(&plan);
                assert_eq!(report.errors(), 0, "{label}:\n{:?}", report.diagnostics);
                if method == Method::ForwardPlane {
                    assert!(report.is_clean(), "{label}:\n{:?}", report.diagnostics);
                }
            }
        }
    }
}

#[test]
fn byte_figures_track_precision_on_every_method() {
    let config = LaunchConfig::new(8, 2, 1, 3);
    for method in METHODS {
        let plan = lower_step(method, &config, 2, (12, 12, 12));
        let sp = predict_traffic(&plan, Precision::Single);
        let dp = predict_traffic(&plan, Precision::Double);
        assert_eq!(sp.stats, dp.stats, "counters are word-width independent");
        assert_eq!(sp.word_bytes, 4);
        assert_eq!(dp.word_bytes, 8);
        assert_eq!(2 * sp.staged_bytes, dp.staged_bytes);
        assert_eq!(2 * sp.store_bytes, dp.store_bytes);
        assert_eq!(2 * sp.gather_bytes, dp.gather_bytes);
        assert!(dp.load_transactions >= sp.load_transactions);
    }
}

#[test]
fn full_slice_corner_staging_is_the_documented_note() {
    let plan = lower_step(
        Method::InPlane(Variant::FullSlice),
        &LaunchConfig::new(8, 2, 1, 3),
        2,
        (17, 13, 11),
    );
    let report = analyze_plan(&plan);
    assert_eq!(report.errors(), 0, "{:?}", report.diagnostics);
    assert!(report.dead_corner_cells > 0);
    assert!(
        report.diagnostics.iter().any(|d| d.code == "LNT-D901"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn temporal_transform_matches_and_redundancy_agrees() {
    for (r, t_steps, dims) in [(1usize, 3usize, (14, 14, 10)), (2, 2, (16, 13, 11))] {
        let plan = temporal_stage_plan(r, dims, 4, 4, t_steps);
        let label = format!("temporal r={r} T={t_steps} {dims:?}");
        assert_static_matches_dynamic::<f64>(&plan, r, &label);

        let predicted = predict_stats(&plan);
        let stencil: StarStencil<f64> = StarStencil::diffusion(r);
        let input: Grid3<f64> = grid(dims);
        let mut out: Grid3<f64> = Grid3::new(dims.0, dims.1, dims.2);
        let dynamic = interpret_plan(&plan, &stencil, &input, &mut out);
        assert_eq!(predicted.redundancy(), dynamic.redundancy(), "{label}");
        assert!(predicted.redundancy() > 1.0, "{label} overlaps tiles");

        let report = analyze_plan(&plan);
        assert_eq!(report.errors(), 0, "{label}:\n{:?}", report.diagnostics);
    }
}

#[test]
fn multi_gpu_transform_matches_and_pins_final_step_exchanges() {
    for (devices, steps) in [(2usize, 2usize), (3, 3)] {
        let r = 2;
        let dims = (12, 12, 18);
        let plan = multi_gpu_stage_plan(
            Method::ForwardPlane,
            &LaunchConfig::new(4, 4, 1, 1),
            r,
            dims,
            devices,
            steps,
        );
        let label = format!("multigpu d={devices} s={steps}");
        assert_static_matches_dynamic::<f32>(&plan, r, &label);

        let report = analyze_plan(&plan);
        assert_eq!(report.errors(), 0, "{label}:\n{:?}", report.diagnostics);
        // The last step's halo exchanges feed no further sweep: exactly
        // 2·(devices−1)·r planes cross the interconnect for nothing.
        assert_eq!(
            report.dead_exchange_planes,
            (2 * (devices - 1) * r) as u64,
            "{label}:\n{:?}",
            report.diagnostics
        );
    }
}
