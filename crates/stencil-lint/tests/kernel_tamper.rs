//! Tamper property for the kernel verifier: the abstract interpreter
//! is a *semantic* prover over the emitted text, not a golden-file
//! diff. For a randomly mutated kernel source — one `#define` numeral
//! bumped, one numeral inside a memory subscript bumped, or one
//! barrier dropped or duplicated — the verifier must emit at least one
//! **error**-severity `LNT-K…` diagnostic, unless the mutation left
//! the source byte-identical.
//!
//! The mutation universe deliberately excludes two regions:
//!
//! * comment text — the lexer skips it, so a mutation there is
//!   invisible to the verifier *and* to a compiler;
//! * coefficient subscripts (`coeff` / `c_coeff`) and other pure
//!   compute operands — changing which coefficient multiplies which
//!   neighbour alters the arithmetic without touching bounds, races,
//!   barriers or traffic, which is the documented boundary of the
//!   verified subset (numerical equivalence is the emulator's job).

use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use proptest::prelude::*;
use stencil_codegen::{generate_kernel, generate_opencl_kernel_full};
use stencil_grid::Precision;
use stencil_lint::{verify_kernel_source, Severity};

const METHODS: [Method; 6] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
    Method::InPlane(Variant::DoubleBuffered),
];

const CUDA_BARRIER_STMT: &str = "__syncthreads();";
const OPENCL_BARRIER_STMT: &str = "barrier(CLK_LOCAL_MEM_FENCE);";

/// One candidate mutation.
#[derive(Clone, Copy, Debug)]
enum Site {
    /// Bump the decimal numeral in `source[start..end]` by one.
    Digit { start: usize, end: usize },
    /// Delete the `idx`-th barrier statement.
    BarrierDrop { idx: usize },
    /// Duplicate the `idx`-th barrier statement.
    BarrierDup { idx: usize },
}

/// Byte mask of positions inside `//` or `/* */` comments.
fn comment_mask(src: &str) -> Vec<bool> {
    let b = src.as_bytes();
    let mut mask = vec![false; b.len()];
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                mask[i] = true;
                i += 1;
            }
        } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            mask[i] = true;
            mask[i + 1] = true;
            i += 2;
            while i < b.len() && !(b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/') {
                mask[i] = true;
                i += 1;
            }
            if i + 1 < b.len() {
                mask[i] = true;
                mask[i + 1] = true;
                i += 2;
            }
        } else {
            i += 1;
        }
    }
    mask
}

fn is_word(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Standalone decimal runs in `src[span]` (not part of an identifier or
/// float literal, not commented), pushed as absolute byte ranges.
fn digit_runs(src: &str, span: std::ops::Range<usize>, mask: &[bool], out: &mut Vec<Site>) {
    let b = src.as_bytes();
    let mut i = span.start;
    while i < span.end {
        if b[i].is_ascii_digit() && !mask[i] {
            let start = i;
            while i < span.end && b[i].is_ascii_digit() {
                i += 1;
            }
            let before_ok = start == 0 || (!is_word(b[start - 1]) && b[start - 1] != b'.');
            let after_ok = i >= b.len() || (!is_word(b[i]) && b[i] != b'.');
            if before_ok && after_ok {
                out.push(Site::Digit { start, end: i });
            }
        } else {
            i += 1;
        }
    }
}

/// Every mutation site in one kernel source.
fn collect_sites(src: &str, barrier_stmt: &str) -> Vec<Site> {
    let mask = comment_mask(src);
    let b = src.as_bytes();
    let mut sites = Vec::new();

    // `#define` lines: any standalone numeral.
    let mut line_start = 0;
    for (i, ch) in src.bytes().enumerate().chain([(src.len(), b'\n')]) {
        if ch == b'\n' {
            let line = &src[line_start..i];
            if line.trim_start().starts_with("#define") && !mask[line_start] {
                digit_runs(src, line_start..i, &mask, &mut sites);
            }
            line_start = i + 1;
        }
    }

    // Numerals inside subscript chains of the memory bases the verifier
    // reasons about.
    for base in ["in", "out", "tile", "tile_pair", "dst"] {
        for (at, _) in src.match_indices(base) {
            if mask[at]
                || (at > 0 && is_word(b[at - 1]))
                || at + base.len() >= b.len()
                || is_word(b[at + base.len()])
            {
                continue;
            }
            // Walk the whole [..][..]… chain that follows.
            let mut i = at + base.len();
            loop {
                while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
                    i += 1;
                }
                if i >= b.len() || b[i] != b'[' {
                    break;
                }
                let open = i;
                let mut depth = 0usize;
                while i < b.len() {
                    match b[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                digit_runs(src, open..i, &mask, &mut sites);
                i += 1;
            }
        }
    }

    // Barriers: each occurrence can be dropped or duplicated.
    let barriers = src.match_indices(barrier_stmt).count();
    for idx in 0..barriers {
        sites.push(Site::BarrierDrop { idx });
        sites.push(Site::BarrierDup { idx });
    }
    sites
}

/// Apply one mutation; `None` if it would leave the source unchanged.
fn apply(src: &str, site: Site, barrier_stmt: &str) -> Option<String> {
    match site {
        Site::Digit { start, end } => {
            let n: u64 = src[start..end].parse().ok()?;
            let mutated = format!("{}{}{}", &src[..start], n + 1, &src[end..]);
            (mutated != src).then_some(mutated)
        }
        Site::BarrierDrop { idx } | Site::BarrierDup { idx } => {
            let at = src.match_indices(barrier_stmt).nth(idx)?.0;
            let replacement = if matches!(site, Site::BarrierDrop { .. }) {
                String::new()
            } else {
                format!("{barrier_stmt} {barrier_stmt}")
            };
            Some(format!(
                "{}{}{}",
                &src[..at],
                replacement,
                &src[at + barrier_stmt.len()..]
            ))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_kernels_are_flagged(
        method_idx in 0usize..6,
        order in prop::sample::select(vec![2usize, 4]),
        shape_idx in 0usize..2,
        use_opencl in any::<bool>(),
        site_seed in 0usize..10_000,
    ) {
        let method = METHODS[method_idx];
        let spec = KernelSpec::star_order(method, order, Precision::Single);
        let config = [LaunchConfig::new(8, 2, 1, 2), LaunchConfig::new(16, 2, 1, 1)][shape_idx];
        let r = spec.radius;
        let dims = (2 * r + config.tile_x(), 2 * r + config.tile_y(), 2 * r + 2);

        let opencl = use_opencl && method.routine().opencl_supported();
        let (source, name, anchors, barrier_stmt) = if opencl {
            let k = generate_opencl_kernel_full(&spec, &config);
            (k.source, k.name, k.anchors, OPENCL_BARRIER_STMT)
        } else {
            let k = generate_kernel(&spec, &config);
            (k.source, k.name, k.anchors, CUDA_BARRIER_STMT)
        };

        // The pristine kernel proves clean — the property below is
        // about the mutation, not a pre-existing finding.
        let clean = verify_kernel_source(&source, &name, &anchors, &spec, &config, dims);
        prop_assert!(clean.is_empty(), "pristine kernel not clean: {clean:?}");

        let sites = collect_sites(&source, barrier_stmt);
        prop_assert!(!sites.is_empty(), "no mutation sites in {name}");
        let site = sites[site_seed % sites.len()];
        let Some(mutated) = apply(&source, site, barrier_stmt) else {
            return Ok(()); // byte-identical: nothing to detect
        };

        let diags = verify_kernel_source(&mutated, &name, &anchors, &spec, &config, dims);
        prop_assert!(
            diags.iter().any(|d| d.severity == Severity::Error && d.code.starts_with("LNT-K")),
            "{method:?} {config} {site:?} ({}): mutation survived the verifier: {diags:?}",
            if opencl { "OpenCL" } else { "CUDA" },
        );
    }
}
