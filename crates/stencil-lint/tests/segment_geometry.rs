//! Segment-geometry property suite: the traffic oracle must stay an
//! exact mirror of the instrumented interpreter on a wave64 device
//! fingerprint, and coarsening the coalescing segment can only merge
//! transactions, never split them.
//!
//! For every registered routine × SP/DP:
//!
//! * the 64-byte-segment transaction count is **≥** the 128-byte
//!   count, for the plan oracle and the kernel-side oracle alike (a
//!   finer granule can only split runs);
//! * both geometries predict the interpreter's `ExecStats` **exactly**
//!   (counters and byte volumes are segment-independent by
//!   construction — only transaction figures may differ);
//! * the wave64 device entry point agrees with the explicit 64-byte
//!   figure, and the legacy entry point with the explicit 128-byte one.

use gpu_sim::DeviceSpec;
use inplane_core::{interpret_plan, lower_step, KernelSpec, LaunchConfig};
use stencil_grid::{FillPattern, Grid3, Precision, StarStencil};
use stencil_lint::traffic::{
    predict_kernel_traffic, predict_kernel_traffic_for, predict_kernel_traffic_on, predict_traffic,
    predict_traffic_on,
};

/// Wavefront-aligned configs: TX multiples of the hd7970 half-wavefront
/// (32), so the same shapes are enumerable on both vendors.
fn configs() -> Vec<LaunchConfig> {
    vec![
        LaunchConfig::new(32, 2, 1, 2),
        LaunchConfig::new(64, 2, 1, 1),
        LaunchConfig::new(32, 4, 2, 1),
    ]
}

fn dims_for(r: usize, config: &LaunchConfig) -> (usize, usize, usize) {
    (
        2 * r + 2 * config.tile_x(),
        2 * r + 2 * config.tile_y(),
        4 * r + 2,
    )
}

#[test]
fn finer_segments_never_reduce_transactions_and_stats_stay_exact() {
    let hd7970 = DeviceSpec::hd7970();
    assert_eq!(hd7970.coalesce_segment_bytes, 64);
    for routine in inplane_core::registry() {
        let method = routine.method();
        for precision in [Precision::Single, Precision::Double] {
            for config in configs() {
                let spec = KernelSpec::star_order(method, 4, precision);
                let r = spec.radius;
                let dims = dims_for(r, &config);
                let plan = lower_step(method, &config, r, dims);
                let label = format!("{method} {precision:?} {config:?}");

                // Plan oracle under both geometries.
                let seg128 = predict_traffic(&plan, precision);
                let seg64 = predict_traffic_on(&plan, precision, &hd7970);
                assert_eq!(seg128.segment_bytes, 128, "{label}");
                assert_eq!(seg64.segment_bytes, 64, "{label}");
                assert!(
                    seg64.load_transactions >= seg128.load_transactions,
                    "{label}: 64 B {} < 128 B {}",
                    seg64.load_transactions,
                    seg128.load_transactions
                );

                // Counters and byte volumes are segment-independent and
                // both exact against the instrumented interpreter.
                assert_eq!(seg64.stats, seg128.stats, "{label}");
                assert_eq!(seg64.staged_bytes, seg128.staged_bytes, "{label}");
                assert_eq!(seg64.store_bytes, seg128.store_bytes, "{label}");
                assert_eq!(seg64.global_load_cells, seg128.global_load_cells, "{label}");
                let stencil: StarStencil<f32> = StarStencil::diffusion(r);
                let input: Grid3<f32> = FillPattern::HashNoise.build(dims.0, dims.1, dims.2);
                let mut out: Grid3<f32> = Grid3::new(dims.0, dims.1, dims.2);
                let dynamic = interpret_plan(&plan, &stencil, &input, &mut out);
                assert_eq!(seg64.stats, dynamic, "{label}: oracle vs interpreter");

                // Kernel-side oracle: same monotonicity, same cells.
                let kt128 = predict_kernel_traffic(&plan, &spec);
                let kt64 = predict_kernel_traffic_on(&plan, &spec, &hd7970);
                assert_eq!(
                    kt64,
                    predict_kernel_traffic_for(&plan, &spec, 64),
                    "{label}"
                );
                assert_eq!(kt64.total_load_cells(), kt128.total_load_cells(), "{label}");
                assert_eq!(
                    kt64.total_store_cells(),
                    kt128.total_store_cells(),
                    "{label}"
                );
                assert!(
                    kt64.total_load_transactions() >= kt128.total_load_transactions(),
                    "{label}: kernel oracle 64 B {} < 128 B {}",
                    kt64.total_load_transactions(),
                    kt128.total_load_transactions()
                );
            }
        }
    }
}

#[test]
fn wave64_entry_points_agree_with_explicit_segment_figures() {
    // The device-taking wrappers must be pure plumbing: hd7970 ==
    // explicit 64, rtx3090 == legacy 128, on a representative plan.
    let hd7970 = DeviceSpec::hd7970();
    let rtx3090 = DeviceSpec::rtx3090();
    let method = inplane_core::Method::InPlane(inplane_core::Variant::FullSlice);
    let config = LaunchConfig::new(32, 2, 1, 2);
    let spec = KernelSpec::star_order(method, 4, Precision::Single);
    let dims = dims_for(spec.radius, &config);
    let plan = lower_step(method, &config, spec.radius, dims);

    let amd = predict_traffic_on(&plan, Precision::Single, &hd7970);
    let nv = predict_traffic_on(&plan, Precision::Single, &rtx3090);
    assert_eq!(nv, predict_traffic(&plan, Precision::Single));
    assert_eq!(amd.segment_bytes, 64);
    assert_eq!(
        predict_kernel_traffic_on(&plan, &spec, &rtx3090),
        predict_kernel_traffic(&plan, &spec)
    );
}
