//! Dynamic cross-check of the static schedule proof: replay the abstract
//! per-plane schedule into the emulator's `SharedBuffer` and confirm the
//! runtime staging discipline reaches the same verdict as the static
//! analyzer — clean schedules read every cell successfully, and a
//! schedule the analyzer flags with `LNT-S001` fails `try_read` on
//! exactly as many cells as the diagnostic counts.

use inplane_core::layout::TileGeometry;
use inplane_core::{KernelSpec, LaunchConfig, Method, SharedBuffer, StageError, Variant};
use stencil_grid::Precision;
use stencil_lint::rect::Rect;
use stencil_lint::schedule::{build_schedule, read_footprint, verify_ops, Op};
use stencil_lint::Severity;

fn geom(c: &LaunchConfig, r: usize) -> TileGeometry {
    TileGeometry::interior(c, r, 4, 512, 128)
}

/// Replay `ops` into a `SharedBuffer` covering the slab: stage every
/// `Op::Stage` rect (barriers are visibility no-ops for the
/// single-threaded emulator), then `try_read` every cell of every
/// `Op::Read` rect. Returns the staging failures.
fn replay(ops: &[Op], g: &TileGeometry, plane: usize) -> Vec<StageError> {
    let (sx_s, sx_e) = g.slab_x();
    let (sy_s, sy_e) = g.slab_y();
    let mut buf: SharedBuffer<f32> =
        SharedBuffer::new(sx_s, sy_s, (sx_e - sx_s) as usize, (sy_e - sy_s) as usize);
    buf.set_plane(plane);
    let mut errors = Vec::new();
    for op in ops {
        match op {
            Op::Stage(r) => {
                for y in r.y0..r.y1 {
                    for x in r.x0..r.x1 {
                        buf.stage(x, y, 1.0);
                    }
                }
            }
            Op::Barrier => {}
            Op::Read(r) => {
                for y in r.y0..r.y1 {
                    for x in r.x0..r.x1 {
                        if let Err(e) = buf.try_read(x, y) {
                            errors.push(e);
                        }
                    }
                }
            }
        }
    }
    errors
}

#[test]
fn clean_schedules_replay_without_stage_errors() {
    for method in [
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
    ] {
        for order in [2usize, 4, 8] {
            let c = LaunchConfig::new(32, 8, 1, 1);
            let g = geom(&c, order / 2);
            let k = KernelSpec::star_order(method, order, Precision::Single);
            let ops = build_schedule(&k, &g);
            assert!(
                verify_ops(&ops).is_empty(),
                "{method:?} order {order}: static proof not clean"
            );
            let errors = replay(&ops, &g, 7);
            assert!(
                errors.is_empty(),
                "{method:?} order {order}: dynamic replay failed at {:?}",
                errors.first()
            );
        }
    }
}

#[test]
fn static_s001_matches_dynamic_stage_errors_cell_for_cell() {
    // Drop one staged region: the static gap count and the dynamic
    // try_read failures must name the same number of cells.
    let c = LaunchConfig::new(32, 8, 1, 1);
    let g = geom(&c, 2);
    let k = KernelSpec::star_order(Method::InPlane(Variant::Horizontal), 4, Precision::Single);
    let mut ops = build_schedule(&k, &g);
    let first_stage = ops.iter().position(|o| matches!(o, Op::Stage(_))).unwrap();
    ops.remove(first_stage);

    let diags = verify_ops(&ops);
    let static_cells: u64 = diags
        .iter()
        .filter(|d| d.code == "LNT-S001")
        .map(|d| {
            d.context
                .iter()
                .find(|(key, _)| *key == "cells")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .expect("S001 carries a cell count")
        })
        .sum();
    assert!(
        static_cells > 0,
        "tampered schedule must be flagged: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Error));

    let errors = replay(&ops, &g, 3);
    assert_eq!(
        errors.len() as u64,
        static_cells,
        "static proof and emulator disagree on the unstaged cell count"
    );
    // The StageError carries the context the lint proves things about:
    // the plane and a named staging zone.
    let e = &errors[0];
    assert_eq!(e.plane, Some(3));
    assert!(
        e.to_string()
            .starts_with("read of un-staged shared-buffer cell"),
        "{e}"
    );
}

#[test]
fn read_footprint_cells_are_exactly_the_staged_reads() {
    // The read footprint never touches the corners, so a full-slice
    // stage of the whole slab over-stages exactly the 4r^2 corner cells.
    let c = LaunchConfig::new(32, 4, 1, 2);
    let g = geom(&c, 3);
    let (sx_s, sx_e) = g.slab_x();
    let (sy_s, sy_e) = g.slab_y();
    let slab_cells = ((sx_e - sx_s) * (sy_e - sy_s)) as u64;
    let fp = read_footprint(&g);
    let read_cells: u64 = fp.iter().map(Rect::area).sum();
    assert_eq!(slab_cells - read_cells, 4 * 9, "4r^2 corners for r = 3");
}
