//! Dynamic cross-check of the static schedule proof on the *shared* IR:
//! the analyzer and the runtime now both consume the same lowered
//! [`StagePlan`], so a tampered plan can be judged twice — statically by
//! `verify_ops` over the extracted per-plane schedule, and dynamically
//! by replaying the very same plan through the instrumented interpreter
//! (`interpret_plan_checked`). A clean plan must be clean both ways; a
//! plan missing one staged region must fail `try_read` on *exactly* the
//! cells the `LNT-S001` diagnostic counts, cell for cell; a plan missing
//! a barrier is a cross-warp race (`LNT-S002`) the single-threaded
//! interpreter cannot observe — static-only, zero runtime errors.

use inplane_core::layout::TileGeometry;
use inplane_core::plan::{PlanOp, Zone};
use inplane_core::{
    interpret_plan_checked, lower_step, KernelSpec, LaunchConfig, Method, StagePlan, Variant,
};
use stencil_grid::{FillPattern, Grid3, Precision, StarStencil};
use stencil_lint::rect::Rect;
use stencil_lint::schedule::{plan_plane_ops, read_footprint, verify_ops};
use stencil_lint::Severity;

const METHODS: [Method; 5] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
];

/// A single-block lowered plan on a 12³ grid: radius 2, one 8×8 tile
/// covering the whole interior, so the block origin is `(r, r)`.
fn single_block_plan(method: Method) -> StagePlan {
    lower_step(method, &LaunchConfig::new(8, 8, 1, 1), 2, (12, 12, 12))
}

/// Replay `plan` through the checked interpreter and return the
/// deduplicated staging failures.
fn replay(plan: &StagePlan) -> Vec<inplane_core::StageError> {
    let s: StarStencil<f32> = StarStencil::from_order(4);
    let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 12);
    let mut out = Grid3::new(12, 12, 12);
    let (_stats, errors) = interpret_plan_checked(plan, &s, &input, &mut out);
    errors
}

/// Sum the cell counts of every `LNT-S001` diagnostic over `ops`.
fn s001_cells(ops: &[stencil_lint::schedule::Op]) -> u64 {
    verify_ops(ops)
        .iter()
        .filter(|d| d.code == "LNT-S001")
        .map(|d| {
            d.context
                .iter()
                .find(|(key, _)| *key == "cells")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .expect("S001 carries a cell count")
        })
        .sum()
}

#[test]
fn clean_plans_are_clean_both_statically_and_dynamically() {
    for method in METHODS {
        let plan = single_block_plan(method);
        // Static: every staged plane of the block proves clean.
        for plane in 2..12 {
            let ops = plan_plane_ops(&plan, (2, 2), plane);
            if ops.is_empty() {
                continue; // forward-plane stops staging at nz - r
            }
            assert!(
                verify_ops(&ops).is_empty(),
                "{method:?} plane {plane}: static proof not clean"
            );
        }
        // Dynamic: the interpreter replays the same plan without a
        // single staging failure.
        let errors = replay(&plan);
        assert!(
            errors.is_empty(),
            "{method:?}: dynamic replay failed at {:?}",
            errors.first()
        );
    }
}

#[test]
fn tampered_stage_matches_dynamic_stage_errors_cell_for_cell() {
    // Drop the top-halo staged region of plane 5 from the real lowered
    // plan: the static gap count and the interpreter's try_read
    // failures must name the same cells.
    let mut plan = single_block_plan(Method::InPlane(Variant::Horizontal));
    let victim = plan
        .ops
        .iter()
        .position(|op| {
            matches!(
                op,
                PlanOp::StageRegion {
                    zone: Zone::Top,
                    plane: 5,
                    ..
                }
            )
        })
        .expect("plane 5 stages a top-halo arm");
    plan.ops.remove(victim);

    let ops = plan_plane_ops(&plan, (2, 2), 5);
    let diags = verify_ops(&ops);
    let static_cells = s001_cells(&ops);
    // The whole 8×2 top arm is un-staged: 16 cells.
    assert_eq!(static_cells, 8 * 2, "tampered plan must be flagged");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));

    let errors = replay(&plan);
    assert_eq!(
        errors.len() as u64,
        static_cells,
        "static proof and interpreter disagree on the unstaged cell count"
    );
    // The StageError carries the context the lint proves things about:
    // the plane and the very zone whose stage was dropped.
    for e in &errors {
        assert_eq!(e.plane, Some(5));
        assert_eq!(e.zone, Zone::Top.label());
        assert!(
            e.to_string()
                .starts_with("read of un-staged shared-buffer cell"),
            "{e}"
        );
    }
}

#[test]
fn tampered_barrier_is_a_race_only_the_static_proof_sees() {
    // Drop the stage barrier of plane 5: statically a cross-warp race
    // (LNT-S002, not S001 — everything is staged); dynamically
    // invisible, because the interpreter is single-threaded and
    // sequentially consistent.
    let mut plan = single_block_plan(Method::InPlane(Variant::Vertical));
    let compute_at_5 = plan
        .ops
        .iter()
        .position(|op| matches!(op, PlanOp::ComputePoint { plane: 5, .. }))
        .expect("plane 5 computes a partial");
    assert!(
        matches!(plan.ops[compute_at_5 - 1], PlanOp::Barrier),
        "lowering always fences the compute phase"
    );
    plan.ops.remove(compute_at_5 - 1);

    let ops = plan_plane_ops(&plan, (2, 2), 5);
    let diags = verify_ops(&ops);
    assert!(diags.iter().any(|d| d.code == "LNT-S002"), "{diags:?}");
    assert!(!diags.iter().any(|d| d.code == "LNT-S001"), "{diags:?}");

    let errors = replay(&plan);
    assert!(
        errors.is_empty(),
        "a barrier race cannot fail the sequential replay: {:?}",
        errors.first()
    );
}

#[test]
fn read_footprint_cells_are_exactly_the_staged_reads() {
    // The read footprint never touches the corners, so a full-slice
    // stage of the whole slab over-stages exactly the 4r^2 corner cells.
    let c = LaunchConfig::new(32, 4, 1, 2);
    let g = TileGeometry::interior(&c, 3, 4, 512, 128);
    let (sx_s, sx_e) = g.slab_x();
    let (sy_s, sy_e) = g.slab_y();
    let slab_cells = ((sx_e - sx_s) * (sy_e - sy_s)) as u64;
    let fp = read_footprint(&g);
    let read_cells: u64 = fp.iter().map(Rect::area).sum();
    assert_eq!(slab_cells - read_cells, 4 * 9, "4r^2 corners for r = 3");
}

#[test]
fn extracted_schedule_stages_exactly_the_lowered_regions() {
    // The extraction is a projection of the lowered IR, not a
    // re-derivation: the staged rect areas at one plane must equal the
    // full slab the full-slice variant stages.
    let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
    let plan = single_block_plan(k.method);
    let ops = plan_plane_ops(&plan, (2, 2), 5);
    let staged: u64 = ops
        .iter()
        .filter_map(|o| match o {
            stencil_lint::schedule::Op::Stage(r) => Some(r.area()),
            _ => None,
        })
        .sum();
    // Full slab: (8 + 2r)² with r = 2.
    assert_eq!(staged, 12 * 12);
}
