//! Diagnostic-registry integrity: the [`stencil_lint::CATALOG`] is the
//! single source of truth for every coded finding, and three invariants
//! keep it honest:
//!
//! * codes are unique and follow the `LNT-<family><nnn>` grammar with
//!   contiguous severity bands — `001–099` error, `101–199` warning,
//!   `901+` info — so a code's severity is recoverable from its number;
//! * every code the analyzers (and the core interpreter's coded
//!   [`StageError`]s) actually emit exists in the catalog;
//! * every catalog code is documented in the README's diagnostic table.
//!
//! [`StageError`]: inplane_core::StageError

use std::collections::BTreeSet;
use stencil_lint::{Severity, CATALOG};

/// Severity band implied by a code's numeric suffix.
fn band(code: &str) -> Option<Severity> {
    let digits: String = code
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    let n: u32 = digits.chars().rev().collect::<String>().parse().ok()?;
    match n {
        1..=99 => Some(Severity::Error),
        101..=199 => Some(Severity::Warning),
        901.. => Some(Severity::Info),
        _ => None,
    }
}

#[test]
fn codes_are_unique_and_well_formed() {
    let mut seen = BTreeSet::new();
    for (code, severity, summary) in CATALOG {
        assert!(seen.insert(*code), "duplicate catalog code {code}");
        assert!(
            code.starts_with("LNT-"),
            "{code} does not use the LNT- prefix"
        );
        let family = code.as_bytes()[4] as char;
        assert!(
            matches!(family, 'R' | 'S' | 'C' | 'D' | 'M' | 'T' | 'K'),
            "{code} uses unknown family {family}"
        );
        assert!(
            code[5..].chars().all(|c| c.is_ascii_digit()) && code[5..].len() == 3,
            "{code} suffix is not three digits"
        );
        assert!(!summary.is_empty(), "{code} has no summary");
        assert_eq!(
            band(code),
            Some(*severity),
            "{code} severity {severity:?} violates the numeric banding"
        );
    }
}

#[test]
fn every_emitted_code_is_registered() {
    // Scan every source file that constructs diagnostics (the lint
    // crate's analyzers plus the core interpreter's coded StageErrors)
    // for LNT- literals and demand each is a catalog entry.
    let sources = [
        include_str!("../src/coalescing.rs"),
        include_str!("../src/codegen_text.rs"),
        include_str!("../src/coverage.rs"),
        include_str!("../src/dataflow.rs"),
        include_str!("../src/diag.rs"),
        include_str!("../src/feasibility.rs"),
        include_str!("../src/schedule.rs"),
        include_str!("../src/sweep.rs"),
        include_str!("../src/traffic.rs"),
        include_str!("../src/verify.rs"),
        include_str!("../src/kernelir/mod.rs"),
        include_str!("../src/kernelir/ast.rs"),
        include_str!("../src/kernelir/lexer.rs"),
        include_str!("../src/kernelir/parser.rs"),
        include_str!("../src/kernelir/interp.rs"),
        include_str!("../../core/src/exec/buffer.rs"),
        include_str!("../../core/src/exec/interp.rs"),
    ];
    let registered: BTreeSet<&str> = CATALOG.iter().map(|(c, _, _)| *c).collect();
    let mut used = BTreeSet::new();
    for src in sources {
        for (i, _) in src.match_indices("LNT-") {
            let code: String = src[i..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            // Skip prose ("LNT-R…" ellipses) and deliberately bogus
            // codes in negative tests ("LNT-XXXX"): a real code is a
            // family letter followed by exactly three digits.
            let well_formed = code.len() == 8
                && matches!(
                    code.as_bytes()[4],
                    b'R' | b'S' | b'C' | b'D' | b'M' | b'T' | b'K'
                )
                && code[5..].chars().all(|c| c.is_ascii_digit());
            if well_formed {
                used.insert(code);
            }
        }
    }
    for code in &used {
        assert!(
            registered.contains(code.as_str()),
            "source emits {code} but the catalog does not define it"
        );
    }
    // The scan itself must be seeing real emissions, not nothing.
    assert!(used.len() >= 25, "source scan only found {used:?}");
}

#[test]
fn readme_documents_every_catalog_code() {
    let readme = include_str!("../../../README.md");
    for (code, severity, _) in CATALOG {
        let row = readme
            .lines()
            .find(|l| l.starts_with('|') && l.contains(&format!("`{code}`")))
            .unwrap_or_else(|| panic!("README table is missing {code}"));
        let want = match severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        assert!(
            row.contains(want),
            "README row for {code} does not say {want}: {row}"
        );
    }
}
