//! Differential suite for the kernel verifier: the traffic oracle is
//! proven **three ways** over the whole routine registry.
//!
//! 1. the plan-level oracle [`stencil_lint::predict_traffic`] predicts
//!    the interpreter's counters from the op stream (pinned elsewhere);
//! 2. the AST-level oracle [`stencil_lint::predict_kernel_traffic`]
//!    re-derives per-plane cell figures from the same plan under the
//!    emitters' layout rules, and must agree with (1) on cells and
//!    stores for vector-aligned configurations;
//! 3. the abstract interpreter executes the *emitted text* and the
//!    per-plane traffic it observes must equal (2) exactly — that is
//!    the `LNT-K005` check inside [`stencil_lint::verify_cuda_kernel`].
//!
//! Any drift between the emitters, the lowered plan and the oracles
//! breaks one of the equalities below.

use inplane_core::{registry, KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;
use stencil_lint::{
    predict_kernel_traffic, predict_traffic, verify_cuda_kernel, verify_opencl_kernel,
};

/// Smallest grid that exercises prologue, steady state and the store
/// path for a `gx × gy` block grid.
fn dims_for(
    spec: &KernelSpec,
    config: &LaunchConfig,
    gx: usize,
    gy: usize,
) -> (usize, usize, usize) {
    let r = spec.radius;
    (
        2 * r + gx * config.tile_x(),
        2 * r + gy * config.tile_y(),
        2 * r + 2,
    )
}

/// Three launch shapes per routine: a flat block, a tall rectangular
/// tile, and a 2×2 block grid (cross-block run-merging is where the
/// derived transaction figures are easiest to get wrong).
type Shape = ((usize, usize, usize, usize), (usize, usize));
const SHAPES: [Shape; 3] = [
    ((8, 2, 1, 2), (1, 1)),
    ((16, 2, 1, 1), (1, 2)),
    ((8, 4, 2, 1), (2, 2)),
];

#[test]
fn every_routine_verifies_clean_on_both_precisions() {
    for routine in registry() {
        let method = routine.method();
        for precision in [Precision::Single, Precision::Double] {
            let spec = KernelSpec::star_order(method, 4, precision);
            for ((tx, ty, rx, ry), (gx, gy)) in SHAPES {
                let config = LaunchConfig::new(tx, ty, rx, ry);
                let dims = dims_for(&spec, &config, gx, gy);
                let d = verify_cuda_kernel(&spec, &config, dims);
                assert!(
                    d.is_empty(),
                    "{method:?} {precision:?} {config} CUDA: {:?}",
                    d.iter().map(|x| x.render()).collect::<Vec<_>>()
                );
                if routine.opencl_supported() {
                    let d = verify_opencl_kernel(&spec, &config, dims);
                    assert!(
                        d.is_empty(),
                        "{method:?} {precision:?} {config} OpenCL: {:?}",
                        d.iter().map(|x| x.render()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}

#[test]
fn high_order_kernels_verify_clean() {
    // Order 8 (radius 4) exercises the deep register pipelines and the
    // aligned-extension special case (R % VW == 0 for the vectorised
    // variants in both precisions).
    for method in [
        Method::ForwardPlane,
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
        Method::InPlane(Variant::DoubleBuffered),
    ] {
        for precision in [Precision::Single, Precision::Double] {
            let spec = KernelSpec::star_order(method, 8, precision);
            let config = LaunchConfig::new(8, 2, 1, 2);
            let dims = dims_for(&spec, &config, 1, 1);
            let d = verify_cuda_kernel(&spec, &config, dims);
            assert!(
                d.is_empty(),
                "{method:?} {precision:?}: {:?}",
                d.iter().map(|x| x.render()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn kernel_oracle_agrees_with_plan_oracle_on_cells_and_stores() {
    // Leg (2) of the three-way proof, for every routine, precision and
    // shape: store totals always agree; load-cell totals agree exactly
    // whenever `R % VW == 0` (the emitters then stage the exact slab).
    // When the radius is not vector-aligned the emitted kernel stages
    // the vector-extended slab, so the AST-level figure is a superset
    // of the plan-level one — never smaller.
    for routine in registry() {
        let method = routine.method();
        for precision in [Precision::Single, Precision::Double] {
            for order in [2usize, 4, 8] {
                let spec = KernelSpec::star_order(method, order, precision);
                let vw = inplane_core::resources::vector_width(&spec).max(1);
                for ((tx, ty, rx, ry), (gx, gy)) in SHAPES {
                    let config = LaunchConfig::new(tx, ty, rx, ry);
                    let dims = dims_for(&spec, &config, gx, gy);
                    let plan = inplane_core::lower_step(method, &config, spec.radius, dims);
                    let kt = predict_kernel_traffic(&plan, &spec);
                    let po = predict_traffic(&plan, precision);
                    if spec.radius.is_multiple_of(vw) {
                        assert_eq!(
                            kt.total_load_cells(),
                            po.global_load_cells,
                            "{method:?} {precision:?} order {order} {config}: load cells"
                        );
                    } else {
                        assert!(
                            kt.total_load_cells() >= po.global_load_cells,
                            "{method:?} {precision:?} order {order} {config}: \
                             extended staging can never load fewer cells \
                             ({} < {})",
                            kt.total_load_cells(),
                            po.global_load_cells
                        );
                    }
                    assert_eq!(
                        kt.total_store_cells(),
                        po.stats.global_writes,
                        "{method:?} {precision:?} order {order} {config}: store cells"
                    );
                    assert_eq!(kt.word_bytes as usize, spec.elem_bytes);
                }
            }
        }
    }
}
