//! Property-based exact-cover proof: for random `(radius, TX, TY, RX,
//! RY, variant)` the variant's load regions partition its staging domain
//! exactly — every cell of the halo-framed slab is covered once, except
//! the four `r × r` corners, which are covered zero times by the
//! corner-free variants and exactly once by full-slice.
//!
//! This is the per-cell counting cross-check of the rect-algebra proof
//! in `stencil_lint::coverage` — deliberately the dumbest possible
//! implementation, so the two can only agree if both are right.

use proptest::prelude::*;
use stencil_lint::{check_coverage, has_errors};

use inplane_core::layout::TileGeometry;
use inplane_core::loadplan::load_regions;
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use stencil_grid::Precision;

const METHODS: [Method; 6] = [
    Method::ForwardPlane,
    Method::InPlane(Variant::Classical),
    Method::InPlane(Variant::Vertical),
    Method::InPlane(Variant::Horizontal),
    Method::InPlane(Variant::FullSlice),
    Method::InPlane(Variant::DoubleBuffered),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No cell covered zero times, no cell covered twice.
    #[test]
    fn load_regions_partition_the_slab_exactly(
        radius in 1usize..7,
        tx_halfwarps in 1usize..5,
        ty in 1usize..7,
        rx in 1usize..5,
        ry in 1usize..5,
        method_idx in 0usize..6,
        vw in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let method = METHODS[method_idx];
        let c = LaunchConfig::new(16 * tx_halfwarps, ty, rx, ry);
        let geom = TileGeometry::interior(&c, radius, 4, 512, 128);
        let regions = load_regions(method, &geom, vw);

        let (sx_s, sx_e) = geom.slab_x();
        let (sy_s, sy_e) = geom.slab_y();
        let (ix_s, ix_e) = geom.interior_x();
        let (iy_s, iy_e) = geom.interior_y();
        let stages_corners = method.routine().skeleton(radius).stages_corners;

        for y in sy_s..sy_e {
            for x in sx_s..sx_e {
                let count = regions
                    .iter()
                    .filter(|r| {
                        x >= r.x.0 && x < r.x.1 && y >= r.y.0 && y < r.y.1
                    })
                    .count();
                let in_corner = (x < ix_s || x >= ix_e) && (y < iy_s || y >= iy_e);
                let expected = if in_corner && !stages_corners { 0 } else { 1 };
                prop_assert_eq!(
                    count, expected,
                    "{:?} r={} {}: cell ({},{}) covered {} times, expected {}",
                    method, radius, c, x, y, count, expected
                );
            }
        }
    }

    /// The rect-algebra checker agrees: no error diagnostics on any
    /// planner-produced region set.
    #[test]
    fn coverage_checker_is_clean_on_planned_regions(
        radius in 1usize..7,
        tx_halfwarps in 1usize..5,
        ty in 1usize..7,
        rx in 1usize..5,
        ry in 1usize..5,
        method_idx in 0usize..6,
    ) {
        let method = METHODS[method_idx];
        let order = 2 * radius;
        let kernel = KernelSpec::star_order(method, order, Precision::Single);
        let c = LaunchConfig::new(16 * tx_halfwarps, ty, rx, ry);
        let geom = TileGeometry::interior(&c, radius, 4, 512, 128);
        let diags = check_coverage(&kernel, &geom);
        prop_assert!(
            !has_errors(&diags),
            "{:?} r={} {}: {:?}",
            method, radius, c, diags
        );
    }
}
