//! The static traffic oracle: interpreter counters predicted from the
//! plan alone.
//!
//! [`predict_stats`] walks a lowered [`StagePlan`]'s op stream with no
//! grid data at all — just the buffer-dims table and the block tile
//! geometry — and reproduces every [`ExecStats`] counter the
//! instrumented interpreter would report, cell for cell: staging is
//! clipped with [`inplane_core::plan::PlanRect::clipped_area`] exactly where the
//! interpreter skips out-of-grid cells, `planes_staged` follows the
//! same per-block restage trigger, halo volumes use the source
//! buffer's *current* dims (swaps replayed). The
//! `static_dynamic_traffic` differential suite asserts exact equality
//! over the full method × precision × config matrix, which turns the
//! IR into a verified performance-model artifact: the paper's traffic
//! terms (Eqns 6–14) can be evaluated on the plan without running it.
//!
//! [`predict_traffic`] adds the byte- and transaction-level figures a
//! word width implies: global-load cells split from register-publish
//! staging, per-row coalesced transaction counts over
//! [`COALESCE_SEGMENT_BYTES`] segments, and byte volumes for stores,
//! halo moves and gathers.

use inplane_core::plan::{PipelineFeed, PipelineKind, PlanOp, StagePlan, StageSource, OUTPUT_BUF};
use inplane_core::ExecStats;
use stencil_grid::Precision;

/// Memory-segment size assumed by the coalesced-transaction count: the
/// 128-byte global-memory transaction of the paper's target devices.
pub const COALESCE_SEGMENT_BYTES: u64 = 128;

/// Byte/transaction figures derived from the predicted counters for
/// one word width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficOracle {
    /// The predicted interpreter counters (see [`predict_stats`]).
    pub stats: ExecStats,
    /// Word width the byte figures use.
    pub word_bytes: u64,
    /// Cells loaded from global memory by blocks: `Global`-source
    /// staging plus pipeline preloads and `GlobalPlane` rotation feeds
    /// (register publishes excluded — they cost no global traffic).
    pub global_load_cells: u64,
    /// Coalesced transactions those loads take, row by row, against
    /// [`COALESCE_SEGMENT_BYTES`] segments of the row-major layout.
    pub load_transactions: u64,
    /// All staged cells (both sources) in bytes.
    pub staged_bytes: u64,
    /// Write-back traffic in bytes.
    pub store_bytes: u64,
    /// Interconnect halo traffic in bytes.
    pub halo_bytes: u64,
    /// Gather (copy-out) traffic in bytes.
    pub gather_bytes: u64,
}

impl TrafficOracle {
    /// Redundant-work factor implied by the predicted counters
    /// (identical to [`ExecStats::redundancy`] on the dynamic side).
    pub fn redundancy(&self) -> f64 {
        self.stats.redundancy()
    }

    /// JSON object rendering (hand-rolled; the workspace is std-only).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let zones: Vec<String> = s
            .staged_cells_by_zone
            .iter()
            .map(|n| n.to_string())
            .collect();
        format!(
            "{{\"word_bytes\":{},\"blocks\":{},\"planes_staged\":{},\"cells_staged\":{},\
             \"staged_cells_by_zone\":[{}],\"global_writes\":{},\"barriers\":{},\
             \"pipeline_rotations\":{},\"points_computed\":{},\"halo_planes_exchanged\":{},\
             \"halo_cells_exchanged\":{},\"cells_copied_out\":{},\"global_load_cells\":{},\
             \"load_transactions\":{},\"staged_bytes\":{},\"store_bytes\":{},\
             \"halo_bytes\":{},\"gather_bytes\":{},\"redundancy\":{}}}",
            self.word_bytes,
            s.blocks,
            s.planes_staged,
            s.cells_staged,
            zones.join(","),
            s.global_writes,
            s.barriers,
            s.pipeline_rotations,
            s.points_computed,
            s.halo_planes_exchanged,
            s.halo_cells_exchanged,
            s.cells_copied_out,
            self.global_load_cells,
            self.load_transactions,
            self.staged_bytes,
            self.store_bytes,
            self.halo_bytes,
            self.gather_bytes,
            self.redundancy(),
        )
    }
}

/// Per-block geometry the walk needs.
struct BlockGeom {
    input: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    cur_plane: Option<usize>,
}

/// Transactions one row of `len` cells takes, starting at linear cell
/// index `base` of a row-major buffer, with `b`-byte words.
fn row_transactions(base: u64, len: u64, b: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let lo = base * b;
    let hi = (base + len - 1) * b + (b - 1);
    hi / COALESCE_SEGMENT_BYTES - lo / COALESCE_SEGMENT_BYTES + 1
}

/// One pass over the op stream computing both the counter mirror and
/// the byte/transaction extras.
fn simulate(plan: &StagePlan, word_bytes: u64) -> TrafficOracle {
    let mut dims: Vec<(usize, usize, usize)> = vec![plan.dims, plan.dims];
    let mut stats = ExecStats::default();
    let mut block: Option<BlockGeom> = None;
    let mut global_load_cells = 0u64;
    let mut load_transactions = 0u64;

    // A rectangular load of `rect` rows on `plane` of buffer `buf`.
    let load_rect = |dims: &[(usize, usize, usize)],
                     buf: usize,
                     plane: usize,
                     x0: u64,
                     x1: u64,
                     y0: u64,
                     y1: u64,
                     cells: &mut u64,
                     txns: &mut u64| {
        let (nx, ny, _) = dims[buf];
        for y in y0..y1 {
            let base = (plane as u64 * ny as u64 + y) * nx as u64 + x0;
            let len = x1 - x0;
            *cells += len;
            *txns += row_transactions(base, len, word_bytes);
        }
    };

    for op in &plan.ops {
        match *op {
            PlanOp::Alloc { dims: d, .. } => dims.push(d),
            PlanOp::CopyBox { dst, extent, .. } => {
                if dst == OUTPUT_BUF {
                    stats.cells_copied_out += (extent.0 * extent.1 * extent.2) as u64;
                }
            }
            PlanOp::BeginBlock {
                input,
                x0,
                y0,
                w,
                h,
                z_depth,
                ..
            } => {
                stats.blocks += 1;
                for p in 0..z_depth {
                    load_rect(
                        &dims,
                        input,
                        p,
                        x0 as u64,
                        (x0 + w) as u64,
                        y0 as u64,
                        (y0 + h) as u64,
                        &mut global_load_cells,
                        &mut load_transactions,
                    );
                }
                block = Some(BlockGeom {
                    input,
                    x0,
                    y0,
                    w,
                    h,
                    cur_plane: None,
                });
            }
            PlanOp::StageRegion {
                zone,
                rect,
                plane,
                source,
            } => {
                let blk = block.as_mut().expect("StageRegion outside a block");
                if blk.cur_plane != Some(plane) {
                    blk.cur_plane = Some(plane);
                    stats.planes_staged += 1;
                }
                let (nx, ny, _) = dims[blk.input];
                let cells = rect.clipped_area(nx, ny);
                stats.cells_staged += cells;
                stats.staged_cells_by_zone[zone.index()] += cells;
                if source == StageSource::Global {
                    let c = rect.clipped(nx, ny);
                    if c.area() > 0 {
                        load_rect(
                            &dims,
                            blk.input,
                            plane,
                            c.x0 as u64,
                            c.x1 as u64,
                            c.y0 as u64,
                            c.y1 as u64,
                            &mut global_load_cells,
                            &mut load_transactions,
                        );
                    }
                }
            }
            PlanOp::Barrier => stats.barriers += 1,
            PlanOp::ComputePoint { kind, .. } => {
                let blk = block.as_ref().expect("ComputePoint outside a block");
                if !matches!(kind, inplane_core::plan::ComputeKind::FoldCentre { .. }) {
                    stats.points_computed += (blk.w * blk.h) as u64;
                }
            }
            PlanOp::RotatePipeline { pipeline, feed } => {
                stats.pipeline_rotations += 1;
                if let (PipelineKind::ZValues, PipelineFeed::GlobalPlane(kp)) = (pipeline, feed) {
                    let blk = block.as_ref().expect("RotatePipeline outside a block");
                    load_rect(
                        &dims,
                        blk.input,
                        kp,
                        blk.x0 as u64,
                        (blk.x0 + blk.w) as u64,
                        blk.y0 as u64,
                        (blk.y0 + blk.h) as u64,
                        &mut global_load_cells,
                        &mut load_transactions,
                    );
                }
            }
            PlanOp::WriteBack { .. } => {
                let blk = block.as_ref().expect("WriteBack outside a block");
                stats.global_writes += (blk.w * blk.h) as u64;
            }
            PlanOp::ApplyBoundary { .. } => {}
            PlanOp::SwapBufs { a, b } => dims.swap(a, b),
            PlanOp::HaloExchange { src, .. } => {
                let (nx, ny, _) = dims[src];
                stats.halo_planes_exchanged += 1;
                stats.halo_cells_exchanged += (nx * ny) as u64;
            }
        }
    }

    TrafficOracle {
        word_bytes,
        global_load_cells,
        load_transactions,
        staged_bytes: stats.cells_staged * word_bytes,
        store_bytes: stats.global_writes * word_bytes,
        halo_bytes: stats.halo_cells_exchanged * word_bytes,
        gather_bytes: stats.cells_copied_out * word_bytes,
        stats,
    }
}

/// Predict the instrumented interpreter's [`ExecStats`] for `plan`
/// without running it. The `static_dynamic_traffic` suite asserts
/// exact equality (zero tolerance) against [`inplane_core`]'s
/// interpreter across every method, precision and configuration.
pub fn predict_stats(plan: &StagePlan) -> ExecStats {
    simulate(plan, Precision::Single.bytes() as u64).stats
}

/// Predict the full traffic picture — counters plus bytes and
/// coalesced transactions — for `plan` at `precision`.
pub fn predict_traffic(plan: &StagePlan, precision: Precision) -> TrafficOracle {
    simulate(plan, precision.bytes() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::plan::lower_step;
    use inplane_core::{interpret_plan, LaunchConfig, Method, Variant};
    use stencil_grid::{FillPattern, Grid3, StarStencil};

    #[test]
    fn row_transactions_count_touched_segments() {
        // 32 f32 words aligned on a segment: one transaction.
        assert_eq!(row_transactions(0, 32, 4), 1);
        // Misaligned by one word: spills into a second segment.
        assert_eq!(row_transactions(1, 32, 4), 2);
        // f64 halves the words per segment.
        assert_eq!(row_transactions(0, 32, 8), 2);
        assert_eq!(row_transactions(0, 0, 4), 0);
        // Single cell: always one transaction.
        assert_eq!(row_transactions(1023, 1, 8), 1);
    }

    #[test]
    fn oracle_matches_the_interpreter_on_a_single_step() {
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::FullSlice),
            Method::InPlane(Variant::Horizontal),
        ] {
            let plan = lower_step(method, &LaunchConfig::new(4, 4, 1, 1), 2, (12, 12, 10));
            let s: StarStencil<f32> = StarStencil::from_order(4);
            let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 10);
            let mut out = Grid3::new(12, 12, 10);
            let dynamic = interpret_plan(&plan, &s, &input, &mut out);
            assert_eq!(predict_stats(&plan), dynamic, "{method}");
        }
    }

    #[test]
    fn byte_figures_scale_with_precision() {
        let plan = lower_step(
            Method::InPlane(Variant::Vertical),
            &LaunchConfig::new(4, 4, 1, 1),
            1,
            (10, 10, 8),
        );
        let sp = predict_traffic(&plan, Precision::Single);
        let dp = predict_traffic(&plan, Precision::Double);
        assert_eq!(sp.stats, dp.stats, "counters are word-width independent");
        assert_eq!(dp.staged_bytes, 2 * sp.staged_bytes);
        assert_eq!(dp.store_bytes, 2 * sp.store_bytes);
        assert!(dp.load_transactions >= sp.load_transactions);
        assert!(sp.global_load_cells > 0);
        assert!(sp.load_transactions > 0);
        let j = dp.to_json();
        assert!(j.contains("\"word_bytes\":8"));
        assert!(j.contains("\"load_transactions\":"));
    }
}
